"""Head-to-head: the approximation algorithm vs quantum trajectories.

Reproduces the spirit of the paper's Table III / Fig. 5 comparison as a
runnable example: for a QAOA circuit with weak depolarizing noise, measure

* the level-1 approximation's error and runtime (a deterministic method), and
* how many trajectory samples the Monte-Carlo method needs to reach the same
  accuracy, and what that costs in runtime,

then print the analytic sample-count comparison for a range of noise counts.

Run:  python examples/trajectories_vs_approximation.py
"""

import time

from repro.analysis import compare_sample_counts, format_series, format_table
from repro.circuits.library import qaoa_circuit
from repro.core import ApproximateNoisySimulator
from repro.noise import NoiseModel, depolarizing_channel
from repro.simulators import DensityMatrixSimulator, TrajectorySimulator
from repro.utils import zero_state


def empirical_comparison() -> None:
    p, num_noises = 0.001, 10
    ideal = qaoa_circuit(6, seed=2, native_gates=False)
    noisy = NoiseModel(depolarizing_channel(p), seed=2).insert_random(ideal, num_noises)
    exact = DensityMatrixSimulator().fidelity(noisy, zero_state(6))

    start = time.perf_counter()
    ours = ApproximateNoisySimulator(level=1).fidelity(noisy)
    ours_time = time.perf_counter() - start
    ours_error = abs(ours.value - exact)

    trajectories = TrajectorySimulator("statevector")
    samples = trajectories.samples_for_precision(
        noisy, max(ours_error, 1e-7), pilot_samples=64, rng=1, max_samples=20_000
    )
    start = time.perf_counter()
    traj = trajectories.estimate_fidelity(noisy, samples, rng=1)
    traj_time = time.perf_counter() - start

    print(
        format_table(
            ["Method", "Estimate", "|error|", "Runtime (s)", "Samples / contractions"],
            [
                ["Ours (level 1)", ours.value, ours_error, ours_time, ours.num_contractions],
                ["Trajectories", traj.estimate, abs(traj.estimate - exact), traj_time, samples],
            ],
            title=f"QAOA_6, {num_noises} depolarizing noises at p={p}: matched-accuracy comparison",
        )
    )


def analytic_comparison() -> None:
    noise_counts = list(range(10, 41, 5))
    for p in (1e-3, 1e-4):
        rows = compare_sample_counts(noise_counts, p)
        print()
        print(
            format_series(
                "#Noises",
                noise_counts,
                {
                    "Trajectories": [row.trajectories for row in rows],
                    "Ours (level 1)": [row.ours for row in rows],
                },
                title=f"Samples needed for the same error bound (p = {p:g})",
            )
        )


def main() -> None:
    empirical_comparison()
    analytic_comparison()


if __name__ == "__main__":
    main()
