"""Head-to-head: the approximation algorithm vs quantum trajectories.

Reproduces the spirit of the paper's Table III / Fig. 5 comparison as a
runnable example.  The empirical half is a declarative sweep spec
(``examples/specs/trajectories_vs_approximation.yaml``): one noisy QAOA-6
instance scored by the exact density-matrix backend (the reference), the
level-1 approximation and the batched trajectories engine — every cell
dispatched through the unified session layer (:class:`repro.api.Session`) —
with precision reported as the total-variation distance to the reference.  The analytic half
prints the paper's sample-count comparison for a range of noise counts.

The same spec runs from the CLI (``python -m repro.cli sweep run
examples/specs/trajectories_vs_approximation.yaml``); a re-run resumes from
the JSONL records instead of recomputing.

Run:  python examples/trajectories_vs_approximation.py
"""

from pathlib import Path

from repro.analysis import compare_sample_counts, format_series
from repro.sweeps import pivot_table, run_sweep, summary_table

SPEC_PATH = (
    Path(__file__).resolve().parent / "specs" / "trajectories_vs_approximation.yaml"
)


def empirical_comparison() -> None:
    result = run_sweep(SPEC_PATH, progress=print)
    reference = result.spec.reference
    print()
    print(
        summary_table(
            result.records,
            reference=reference,
            title="QAOA_6, 10 depolarizing noises at p=0.001: methods compared",
        )
    )
    print()
    print(
        pivot_table(
            result.records,
            metric="precision",
            reference=reference,
            title=f"Precision (TVD vs {reference})",
        )
    )
    print(f"records: {result.path}")


def analytic_comparison() -> None:
    noise_counts = list(range(10, 41, 5))
    for p in (1e-3, 1e-4):
        rows = compare_sample_counts(noise_counts, p)
        print()
        print(
            format_series(
                "#Noises",
                noise_counts,
                {
                    "Trajectories": [row.trajectories for row in rows],
                    "Ours (level 1)": [row.ours for row in rows],
                },
                title=f"Samples needed for the same error bound (p = {p:g})",
            )
        )


def main() -> None:
    empirical_comparison()
    analytic_comparison()


if __name__ == "__main__":
    main()
