"""Choosing an approximation level: the accuracy/cost trade-off of Algorithm 1.

A runnable version of the paper's Table IV analysis on a laptop-scale circuit:
sweep the approximation level, report value, measured error, the a-priori
Theorem-1 bound and the contraction count, and show how the a-priori bound can
be used to pick a level *before* spending any compute.

Run:  python examples/approximation_levels.py
"""

import numpy as np

from repro.analysis import format_table
from repro.circuits.library import qaoa_circuit
from repro.core import ApproximateNoisySimulator, contraction_count, theorem1_error_bound
from repro.noise import NoiseModel, depolarizing_channel, noise_rate
from repro.simulators import DensityMatrixSimulator, StatevectorSimulator


def main() -> None:
    p, num_noises = 0.01, 6
    ideal = qaoa_circuit(9, seed=11, native_gates=False)
    noisy = NoiseModel(depolarizing_channel(p), seed=17).insert_random(ideal, num_noises)
    v = StatevectorSimulator().run(ideal)
    exact = float(np.real(np.vdot(v, DensityMatrixSimulator().run(noisy) @ v)))
    rate = noise_rate(depolarizing_channel(p))
    print(f"Workload: {noisy.summary()}  (noise rate {rate:.3e}, exact fidelity {exact:.8f})\n")

    # A-priori planning: bounds and costs known before running anything.
    planning_rows = [
        [level, theorem1_error_bound(num_noises, rate, level), contraction_count(num_noises, level)]
        for level in range(num_noises + 1)
    ]
    print(
        format_table(
            ["Level", "Theorem-1 bound", "Contractions"],
            planning_rows,
            title="A-priori planning table (no simulation needed)",
        )
    )

    # A-posteriori: run levels 0-3 and compare with the exact value.
    rows = []
    for level in range(4):
        result = ApproximateNoisySimulator(level=level).fidelity(noisy, output_state=v)
        rows.append(
            [level, result.elapsed_seconds, result.value, abs(result.value - exact), result.num_contractions]
        )
    print()
    print(
        format_table(
            ["Level", "Time (s)", "Result", "Error", "Contractions"],
            rows,
            title="Measured accuracy/cost per level (Table IV at reproduction scale)",
        )
    )
    print(
        "\nLevel 1 is the recommended operating point: its error is orders of magnitude below "
        "level 0 while its cost is only 2(1+3N) contractions."
    )


if __name__ == "__main__":
    main()
