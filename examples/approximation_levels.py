"""Choosing an approximation level: the accuracy/cost trade-off of Algorithm 1.

A runnable version of the paper's Table IV analysis on a laptop-scale circuit:
sweep the approximation level, report value, measured error, the a-priori
Theorem-1 bound and the contraction count, and show how the a-priori bound can
be used to pick a level *before* spending any compute.  All simulations run
through one :class:`repro.api.Session`; the exact reference is the
density-matrix backend scored against the circuit's ideal output state.

Run:  python examples/approximation_levels.py
"""

from repro.analysis import format_table
from repro.api import Session, apply_noise
from repro.circuits.library import qaoa_circuit
from repro.core import contraction_count, theorem1_error_bound
from repro.noise import depolarizing_channel, noise_rate


def main() -> None:
    p, num_noises = 0.01, 6
    ideal = qaoa_circuit(9, seed=11, native_gates=False)
    noisy = apply_noise(
        ideal, {"channel": "depolarizing", "parameter": p, "count": num_noises, "seed": 17}
    )
    rate = noise_rate(depolarizing_channel(p))

    # max_parallel=1: the Time column below reports per-level cost, so each
    # level must run alone rather than contend with its batch-mates.
    with Session(max_parallel=1) as session:
        exact = session.run(noisy, backend="density_matrix", output_state="ideal").value
        print(f"Workload: {noisy.summary()}  (noise rate {rate:.3e}, "
              f"exact fidelity {exact:.8f})\n")

        # A-priori planning: bounds and costs known before running anything.
        planning_rows = [
            [level, theorem1_error_bound(num_noises, rate, level),
             contraction_count(num_noises, level)]
            for level in range(num_noises + 1)
        ]
        print(
            format_table(
                ["Level", "Theorem-1 bound", "Contractions"],
                planning_rows,
                title="A-priori planning table (no simulation needed)",
            )
        )

        # A-posteriori: batch-submit levels 0-3 and compare with the exact value.
        futures = [
            session.submit(noisy, backend="approximation", level=level,
                           output_state="ideal")
            for level in range(4)
        ]
        rows = []
        for level, future in enumerate(futures):
            result = future.result()
            rows.append(
                [level, result.elapsed_seconds, result.value,
                 abs(result.value - exact), result.num_contractions]
            )
    print()
    print(
        format_table(
            ["Level", "Time (s)", "Result", "Error", "Contractions"],
            rows,
            title="Measured accuracy/cost per level (Table IV at reproduction scale)",
        )
    )
    print(
        "\nLevel 1 is the recommended operating point: its error is orders of magnitude below "
        "level 0 while its cost is only 2(1+3N) contractions."
    )


if __name__ == "__main__":
    main()
