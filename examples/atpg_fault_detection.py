"""ATPG-style fault detection driven by the approximation algorithm.

The paper's conclusion proposes the approximation algorithm as the simulation
engine inside ATPG (automatic test pattern generation) flows: to detect
manufacturing defects of a quantum circuit one needs many noisy-simulation
calls (one per fault × pattern), so they must be cheap.

This example:

1. takes a QAOA circuit that already carries the device's background
   decoherence noise,
2. enumerates single-gate faults (missing gates, over-rotations) plus a
   "stuck-noise" defect,
3. evaluates a candidate pattern set with the level-1 approximation algorithm,
4. reports fault coverage and the greedily selected compact test set.

Run:  python examples/atpg_fault_detection.py
"""

from repro.analysis import format_table
from repro.atpg import (
    FaultDetector,
    StuckNoiseFault,
    enumerate_single_gate_faults,
    ideal_output_pattern,
    random_patterns,
)
from repro.circuits.library import qaoa_circuit
from repro.core import ApproximateNoisySimulator
from repro.noise import NoiseModel, SYCAMORE_LIKE_SPEC, amplitude_damping_channel


def main() -> None:
    # Circuit under test: QAOA workload with the device's background noise.
    ideal = qaoa_circuit(6, seed=13, native_gates=False)
    background = NoiseModel(
        lambda arity, rng: SYCAMORE_LIKE_SPEC.gate_noise(arity, rng), seed=13
    )
    circuit = background.insert_random(ideal, 4)
    print(f"Circuit under test: {circuit.summary()}\n")

    # Candidate faults: a sample of single-gate faults (missing gates and
    # miscalibrated rotations) plus one defect-like strong decoherence hot spot.
    faults = enumerate_single_gate_faults(circuit, delta=0.6, max_faults=10, rng=1)
    faults.append(StuckNoiseFault(position=2, channel=amplitude_damping_channel(0.5)))

    # Candidate patterns: the ideal-output pattern plus random product patterns.
    patterns = [ideal_output_pattern(circuit)] + random_patterns(circuit.num_qubits, 4, rng=2)

    # Detection engine: level-1 approximation; the threshold is chosen above
    # the Theorem-1 bound of the background noise so the approximation error
    # can never be mistaken for a fault.
    estimator = ApproximateNoisySimulator(level=1)
    detector = FaultDetector(estimator, threshold=1e-2)
    result = detector.run(circuit, faults, patterns)

    rows = []
    for index, fault in enumerate(faults):
        best = result.best_pattern_for(index)
        deviation = result.detectability.get((index, best), 0.0) if best else 0.0
        rows.append(
            [
                index,
                fault.describe(),
                "yes" if index in result.detected_faults else "NO",
                best or "-",
                deviation,
            ]
        )
    print(
        format_table(
            ["#", "Fault", "Detected", "Best pattern", "Signature deviation"],
            rows,
            title="Fault detection report (level-1 approximation engine)",
        )
    )
    print(
        f"\nCoverage: {100 * result.coverage:.0f}%  |  "
        f"selected test set: {result.selected_patterns}"
    )
    print(
        "Undetected faults (if any) act trivially on the tested patterns — add "
        "patterns exciting the corresponding qubits to close the gap."
    )


if __name__ == "__main__":
    main()
