"""Quickstart: simulate a noisy circuit exactly and with the approximation algorithm.

Builds a small QAOA circuit, injects realistic superconducting decoherence
noise after randomly chosen gates (the paper's fault model), and compares

* the exact TN-based fidelity ``⟨v| E_N(|0…0⟩⟨0…0|) |v⟩``,
* the level-0/1/2 approximations (Algorithm 1) with their Theorem-1 bounds,
* a quantum-trajectories estimate,

all through the one typed entry point the whole library shares:
:func:`repro.api.simulate` / :class:`repro.api.Session`.

Run:  python examples/quickstart.py
"""

from repro.api import Session, apply_noise
from repro.circuits.library import qaoa_circuit
from repro.noise import noise_rate

SUPERCONDUCTING_NOISE = {"channel": "superconducting", "count": 6, "seed": 11}


def main() -> None:
    # 1. An ideal 9-qubit hardware-grid QAOA circuit.
    ideal = qaoa_circuit(9, seed=7)
    print(f"Ideal circuit : {ideal.summary()}")

    # 2. Inject 6 decoherence noises after randomly chosen gates.
    noisy = apply_noise(ideal, SUPERCONDUCTING_NOISE)
    rates = [noise_rate(inst.operation) for inst in noisy.noise_instructions]
    print(f"Noisy circuit : {noisy.summary()}")
    print(f"Noise rates   : min={min(rates):.2e}  max={max(rates):.2e}")

    # One session for the whole study: every method, one dispatch layer.
    # ``output_state="ideal"`` scores against |v> = U|0...0>, the ideal
    # circuit's output, so the fidelity measures how much of the intended
    # computation survives.
    with Session(seed=3) as session:
        # 3. Exact reference from the doubled tensor-network diagram
        #    (Section III).
        exact = session.run(noisy, backend="tn", output_state="ideal").value
        print(f"\nExact fidelity <v|E(|0><0|)|v> = {exact:.8f}   (|v> = ideal output)")

        # 4. The approximation algorithm at levels 0-2 (Section IV /
        #    Algorithm 1), batch-submitted as futures over the session.
        futures = [
            session.submit(noisy, backend="approximation", level=level,
                           output_state="ideal")
            for level in (0, 1, 2)
        ]
        print("\nlevel   A(l)          |A(l)-exact|   Theorem-1 bound   contractions")
        for level, future in enumerate(futures):
            result = future.result()
            print(
                f"  {level}    {result.value:.8f}   {abs(result.value - exact):.2e}"
                f"      {result.error_bound:.2e}          {result.num_contractions}"
            )

        # 5. The quantum-trajectories baseline at a comparable budget.
        trajectories = session.run(
            noisy, backend="trajectories", samples=200, output_state="ideal"
        )
    print(
        f"\nTrajectories (200 samples): {trajectories.value:.8f} "
        f"± {trajectories.standard_error:.2e} "
        f"(|err| = {abs(trajectories.value - exact):.2e})"
    )


if __name__ == "__main__":
    main()
