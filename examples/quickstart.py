"""Quickstart: simulate a noisy circuit exactly and with the approximation algorithm.

Builds a small QAOA circuit, injects realistic superconducting decoherence
noise after randomly chosen gates (the paper's fault model), and compares

* the exact TN-based fidelity ``⟨0…0| E_N(|0…0⟩⟨0…0|) |0…0⟩``,
* the level-0/1/2 approximations (Algorithm 1) with their Theorem-1 bounds,
* a quantum-trajectories estimate.

Run:  python examples/quickstart.py
"""

from repro.circuits.library import qaoa_circuit
from repro.core import ApproximateNoisySimulator
from repro.noise import NoiseModel, SYCAMORE_LIKE_SPEC, noise_rate
from repro.simulators import StatevectorSimulator, TNSimulator, TrajectorySimulator


def main() -> None:
    # 1. An ideal 9-qubit hardware-grid QAOA circuit.
    ideal = qaoa_circuit(9, seed=7)
    print(f"Ideal circuit : {ideal.summary()}")

    # 2. Inject 6 decoherence noises after randomly chosen gates.
    model = NoiseModel(lambda arity, rng: SYCAMORE_LIKE_SPEC.gate_noise(arity, rng), seed=11)
    noisy = model.insert_random(ideal, 6)
    rates = [noise_rate(inst.operation) for inst in noisy.noise_instructions]
    print(f"Noisy circuit : {noisy.summary()}")
    print(f"Noise rates   : min={min(rates):.2e}  max={max(rates):.2e}")

    # 3. Target state |v> = U|0...0>, the ideal circuit's output, so the
    #    fidelity measures how much of the intended computation survives.
    ideal_output = StatevectorSimulator().run(ideal)

    # 4. Exact reference from the doubled tensor-network diagram (Section III).
    exact = TNSimulator().fidelity(noisy, output_state=ideal_output)
    print(f"\nExact fidelity <v|E(|0><0|)|v> = {exact:.8f}   (|v> = ideal output)")

    # 5. The approximation algorithm at levels 0-2 (Section IV / Algorithm 1).
    print("\nlevel   A(l)          |A(l)-exact|   Theorem-1 bound   contractions")
    for level in (0, 1, 2):
        result = ApproximateNoisySimulator(level=level).fidelity(noisy, output_state=ideal_output)
        print(
            f"  {level}    {result.value:.8f}   {abs(result.value - exact):.2e}"
            f"      {result.error_bound:.2e}          {result.num_contractions}"
        )

    # 6. The quantum-trajectories baseline at a comparable budget.
    trajectories = TrajectorySimulator("statevector").estimate_fidelity(
        noisy, 200, output_state=ideal_output, rng=3
    )
    print(
        f"\nTrajectories (200 samples): {trajectories.estimate:.8f} "
        f"± {trajectories.standard_error:.2e} "
        f"(|err| = {abs(trajectories.estimate - exact):.2e})"
    )


if __name__ == "__main__":
    main()
