"""Variational QAOA optimization on the compile-once / bind-per-iteration path.

The parametric-executable workflow end to end: a noisy MaxCut QAOA ansatz
with *symbolic* angles is compiled exactly once — optimizing passes, noise
binding and the contraction-plan search all happen up front — and every
optimizer iteration then costs one ``Executable.bind`` (a plan-cache hit
that swaps tensor values into the recorded plan) plus the executions
themselves.  Gradients come from the exact two-term parameter-shift rule
(``Executable.gradient``), so plain gradient ascent on the noisy cost
expectation converges without any stochastic-gradient tuning.

The loop asserts what the CI smoke relies on: the cost expectation improves
over the run (monotonically-ish: every iteration is a non-trivial ascent
step until convergence), and the plan cache serves >90% of lookups — the
whole optimization triggers exactly one plan search.

Run:  python examples/optimize_qaoa.py
"""

import numpy as np

from repro.analysis import format_table
from repro.api import Session, apply_noise
from repro.circuits.library import grid_graph
from repro.circuits.library.qaoa import QAOAProblem, qaoa_problem_circuit
from repro.circuits.observables import ising_cost_observable

ITERATIONS = 12
LEARNING_RATE = 0.05


def main() -> None:
    # A 2x2 hardware-grid MaxCut instance, one QAOA round, with depolarizing
    # noise injected at seeded positions (the circuit an optimizer actually
    # sees on hardware-adjacent simulations).
    rng = np.random.default_rng(5)
    graph = grid_graph(2, 2, rng=rng)
    edges = tuple(
        (int(u), int(v), float(d["weight"])) for u, v, d in graph.edges(data=True)
    )
    problem = QAOAProblem(4, edges, gammas=(0.1,), betas=(0.1,))
    ansatz = apply_noise(
        qaoa_problem_circuit(problem, native_gates=False, parametric=True),
        {"channel": "depolarizing", "parameter": 0.002, "count": 2, "seed": 7},
    )
    cost = ising_cost_observable(edges)
    params = {"gamma0": 0.1, "beta0": 0.1}

    rows = []
    with Session(seed=3) as session:
        # The one plan search of the whole optimization happens here.
        executable = session.compile(ansatz, backend="tn")
        value = executable.bind(params).expectation(cost)
        rows.append([0, params["gamma0"], params["beta0"], value, None])
        for iteration in range(1, ITERATIONS + 1):
            grad = executable.gradient(params, observable=cost)
            params = {
                name: angle + LEARNING_RATE * grad[name]
                for name, angle in params.items()
            }
            value = executable.bind(params).expectation(cost)
            norm = float(np.hypot(grad["gamma0"], grad["beta0"]))
            rows.append([iteration, params["gamma0"], params["beta0"], value, norm])
        stats = session.cache_stats()

    print(
        format_table(
            ["Iter", "gamma0", "beta0", "Noisy <C>", "|grad|"],
            rows,
            title="QAOA-4 gradient ascent on the noisy cut expectation "
            "(parameter-shift, compile-once/bind-per-iteration)",
        )
    )
    hit_rate = stats["hits"] / (stats["hits"] + stats["misses"])
    print(
        f"\nPlan cache: {stats['misses']} search(es), {stats['hits']} hits "
        f"({hit_rate:.0%} hit rate) for {ITERATIONS} iterations."
    )

    # The CI smoke gate: convergence and plan reuse.
    values = [row[3] for row in rows]
    assert values[-1] > values[0], "optimizer failed to improve the cost"
    assert sum(b >= a for a, b in zip(values, values[1:])) >= ITERATIONS - 1, (
        "ascent steps regressed more than once"
    )
    assert stats["misses"] == 1, "optimization triggered more than one plan search"
    assert hit_rate > 0.9, f"plan-cache hit rate collapsed to {hit_rate:.0%}"
    print("Converged; every iteration reused the one compiled plan.")


if __name__ == "__main__":
    main()
