"""QAOA under decoherence: how noise degrades the probability of the ideal outcome.

This is the scenario the paper's introduction motivates: before running a QAOA
workload on hardware, simulate it with the device's noise model to see how
much signal survives.  The script sweeps the number of injected decoherence
noises and reports

* the fidelity ``⟨v| E_N(|0…0⟩⟨0…0|) |v⟩`` with ``|v⟩ = U|0…0⟩`` (the ideal
  output state), computed with the level-1 approximation algorithm, and
* the a-priori Theorem-1 error bound for each point, so the user knows how far
  to trust each number without running an exact simulation.

Run:  python examples/qaoa_noise_study.py
"""

import numpy as np

from repro.analysis import format_table
from repro.circuits.library import qaoa_circuit
from repro.core import ApproximateNoisySimulator
from repro.noise import NoiseModel, SYCAMORE_LIKE_SPEC, noise_rate
from repro.simulators import StatevectorSimulator


def main() -> None:
    num_qubits = 9
    ideal = qaoa_circuit(num_qubits, seed=21)
    ideal_output = StatevectorSimulator().run(ideal)
    print(f"Workload: {ideal.summary()}")

    spec = SYCAMORE_LIKE_SPEC
    sample_channel = spec.gate_noise(1, rng=0)
    print(f"Device model: T1={spec.t1_ns/1e3:.0f} µs, T2={spec.t2_ns/1e3:.0f} µs, "
          f"typical per-gate noise rate ≈ {noise_rate(sample_channel):.2e}\n")

    simulator = ApproximateNoisySimulator(level=1)
    rows = []
    for num_noises in (0, 2, 4, 6, 8, 10):
        model = NoiseModel(lambda arity, rng: spec.gate_noise(arity, rng), seed=33)
        noisy = model.insert_random(ideal, num_noises)
        result = simulator.fidelity(noisy, output_state=ideal_output)
        rows.append([num_noises, result.value, result.error_bound, result.num_contractions])

    print(
        format_table(
            ["#Noises", "Fidelity to ideal output", "Theorem-1 bound", "Contractions"],
            rows,
            title="QAOA-9 under superconducting decoherence (level-1 approximation)",
        )
    )

    fidelities = [row[1] for row in rows]
    drop = (1.0 - fidelities[-1] / fidelities[0]) * 100.0
    print(f"\nWith {rows[-1][0]} decoherence events the ideal-output probability drops by "
          f"{drop:.2f}% relative to the noiseless run.")


if __name__ == "__main__":
    main()
