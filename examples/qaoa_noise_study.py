"""QAOA under decoherence: how noise degrades the probability of the ideal outcome.

This is the scenario the paper's introduction motivates: before running a QAOA
workload on hardware, simulate it with the device's noise model to see how
much signal survives.  The whole experiment — circuit, device noise model,
noise-count axis, method — is a declarative sweep spec
(``examples/specs/qaoa_noise_study.yaml``); this script runs it through
:mod:`repro.sweeps`, whose runner dispatches every cell through the unified
session layer (:class:`repro.api.Session`), and reports

* the fidelity ``⟨v| E_N(|0…0⟩⟨0…0|) |v⟩`` with ``|v⟩ = U|0…0⟩`` (the ideal
  output state, requested by the spec's ``output_state: ideal``), and
* the a-priori Theorem-1 error bound for each point, so the user knows how far
  to trust each number without running an exact simulation.

The same spec runs from the CLI
(``python -m repro.cli sweep run examples/specs/qaoa_noise_study.yaml``); a
re-run resumes from the JSONL records instead of recomputing.

Run:  python examples/qaoa_noise_study.py
"""

from pathlib import Path

from repro.analysis import format_table
from repro.noise import SYCAMORE_LIKE_SPEC, noise_rate
from repro.sweeps import run_sweep

SPEC_PATH = Path(__file__).resolve().parent / "specs" / "qaoa_noise_study.yaml"


def main() -> None:
    sample_channel = SYCAMORE_LIKE_SPEC.gate_noise(1, rng=0)
    print(f"Device model: T1={SYCAMORE_LIKE_SPEC.t1_ns/1e3:.0f} µs, "
          f"T2={SYCAMORE_LIKE_SPEC.t2_ns/1e3:.0f} µs, "
          f"typical per-gate noise rate ≈ {noise_rate(sample_channel):.2e}\n")

    result = run_sweep(SPEC_PATH, progress=print)

    rows = []
    for record in result.records:
        if record["status"] != "ok":
            rows.append([record["noise"], record["status"].upper(), None, None])
            continue
        metadata = record.get("metadata", {})
        rows.append(
            [
                record["noise"],
                record["value"],
                metadata.get("error_bound"),
                record["num_contractions"],
            ]
        )
    print()
    print(
        format_table(
            ["Noise", "Fidelity to ideal output", "Theorem-1 bound", "Contractions"],
            rows,
            title="QAOA-9 under superconducting decoherence (level-1 approximation)",
        )
    )

    fidelities = [row[1] for row in rows if isinstance(row[1], float)]
    if len(fidelities) >= 2 and fidelities[0] != 0.0:
        drop = (1.0 - fidelities[-1] / fidelities[0]) * 100.0
        print(f"\nWith {result.spec.noises[-1].count} decoherence events the ideal-output "
              f"probability drops by {drop:.2f}% relative to the noiseless run.")
    print(f"records: {result.path}")


if __name__ == "__main__":
    main()
