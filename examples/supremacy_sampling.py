"""Random-circuit (quantum supremacy) amplitudes under noise.

The third benchmark family of the paper: random ``inst_RxC_D`` circuits.  For
these circuits the interesting quantity is how noise washes out the heavy
output probabilities.  The script

1. builds an ``inst_3x3_8`` random circuit,
2. computes a handful of ideal bitstring probabilities with the tensor-network
   amplitude contraction (no full statevector needed),
3. recomputes them for the noisy circuit with the approximation algorithm via
   the matrix-element API, and
4. reports the resulting suppression towards the uniform distribution.

Run:  python examples/supremacy_sampling.py
"""

import numpy as np

from repro.analysis import format_table
from repro.circuits.library import supremacy_circuit
from repro.core import ApproximateNoisySimulator
from repro.noise import NoiseModel, depolarizing_channel
from repro.simulators import TNSimulator
from repro.utils import basis_state


def main() -> None:
    rows_grid, cols_grid, depth = 3, 3, 8
    circuit = supremacy_circuit(rows_grid, cols_grid, depth, seed=5)
    num_qubits = circuit.num_qubits
    uniform = 1.0 / 2**num_qubits
    print(f"Workload: {circuit.summary()}  (uniform probability = {uniform:.2e})")

    noisy = NoiseModel(depolarizing_channel(0.002), seed=5).insert_random(circuit, 8)
    print(f"Noisy   : {noisy.summary()}\n")

    tn = TNSimulator()
    approx = ApproximateNoisySimulator(level=1)

    rng = np.random.default_rng(17)
    bitstrings = ["".join(rng.choice(["0", "1"], size=num_qubits)) for _ in range(6)]

    table_rows = []
    for bits in bitstrings:
        ideal_probability = tn.fidelity(circuit, "0" * num_qubits, bits)
        noisy_probability = approx.fidelity(noisy, output_state=basis_state(bits)).value
        table_rows.append(
            [bits, ideal_probability, noisy_probability, noisy_probability / ideal_probability]
        )

    print(
        format_table(
            ["Bitstring", "Ideal probability", "Noisy probability", "Ratio"],
            table_rows,
            title="Output probabilities before/after noise (level-1 approximation)",
        )
    )

    meaningful = [row[3] for row in table_rows if row[1] > uniform * 1e-3]
    print(
        f"\nAveraged over bitstrings with non-negligible ideal probability, the noise multiplies "
        f"the output probabilities by {np.mean(meaningful):.3f}; values below 1 for heavy outputs "
        "show the noise pushing the distribution towards uniform."
    )


if __name__ == "__main__":
    main()
