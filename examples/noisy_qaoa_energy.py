"""Noisy QAOA cost expectation without density matrices.

Extension of the paper's diagram: closing the doubled tensor network with a
trace boundary and a local observable evaluates ``tr(O · E_N(ρ))`` directly,
so the QAOA cost expectation under noise is available even when the density
matrix itself is far too large to store.

The script sweeps the depolarizing rate and reports how the expected cut value
of a hardware-grid QAOA circuit decays towards the random-guessing value, and
compares the clean expectation against brute force on a small instance.

Run:  python examples/noisy_qaoa_energy.py
"""

import numpy as np

from repro.analysis import format_table
from repro.circuits.library import grid_graph
from repro.circuits.library.qaoa import QAOAProblem, qaoa_problem_circuit
from repro.circuits.observables import ising_cost_observable
from repro.noise import NoiseModel, depolarizing_channel
from repro.simulators import StatevectorSimulator, TNSimulator


def main() -> None:
    # A 3x3 hardware-grid MaxCut instance with one QAOA round.
    rng = np.random.default_rng(5)
    graph = grid_graph(3, 3, rng=rng)
    edges = tuple((int(u), int(v), float(d["weight"])) for u, v, d in graph.edges(data=True))
    problem = QAOAProblem(9, edges, gammas=(0.4,), betas=(0.35,))
    circuit = qaoa_problem_circuit(problem, native_gates=False)
    cost = ising_cost_observable(problem.edges)
    tn = TNSimulator()

    # Sanity check against brute force on the ideal circuit.
    psi = StatevectorSimulator().run(circuit)
    brute_force = float(np.real(np.vdot(psi, cost.matrix(9) @ psi)))
    ideal_value = tn.expectation(circuit, cost)
    print(f"Ideal ⟨C⟩ via tensor network : {ideal_value:+.6f}")
    print(f"Ideal ⟨C⟩ via statevector    : {brute_force:+.6f}\n")

    rows = []
    for p in (0.0, 0.001, 0.005, 0.02, 0.05):
        if p == 0.0:
            noisy = circuit
        else:
            noisy = NoiseModel(depolarizing_channel(p), seed=7).insert_after_every_gate(circuit)
        value = tn.expectation(noisy, cost)
        rows.append([p, noisy.noise_count(), value, value / ideal_value if ideal_value else 1.0])

    print(
        format_table(
            ["Depolarizing p", "#Noises", "⟨C⟩ under noise", "Fraction of ideal signal"],
            rows,
            title="QAOA-9 cost expectation vs noise strength (doubled-network expectation)",
        )
    )
    print(
        "\nAs the noise strength grows the cost expectation decays towards 0 — the value of a "
        "uniformly random assignment — quantifying exactly how much optimization signal the "
        "hardware noise leaves."
    )


if __name__ == "__main__":
    main()
