"""Hartree-Fock VQE under noise: fidelity of the prepared ansatz state.

The second benchmark family of the paper (``hf_N``).  The Givens-rotation
ansatz conserves particle number, so a useful hardware-readiness check is how
much of the output weight stays in the correct particle-number sector once
decoherence is included, and how close the noisy state stays to the ideal
ansatz state.

The script computes, for an ``hf_6`` circuit with increasing noise counts:

* the fidelity to the ideal ansatz state (via the level-1 approximation), and
* the probability of remaining in the half-filling sector (via element-wise
  density-matrix reconstruction on a smaller ``hf_4`` instance).

Run:  python examples/hartree_fock_vqe.py
"""

import numpy as np

from repro.analysis import format_table
from repro.circuits.library import hf_circuit
from repro.core import ApproximateNoisySimulator, estimate_density_matrix
from repro.noise import NoiseModel, SYCAMORE_LIKE_SPEC
from repro.simulators import StatevectorSimulator, TNSimulator


def ansatz_fidelity_sweep() -> None:
    ideal = hf_circuit(6, seed=3)
    print(f"Workload: {ideal.summary()}")
    ideal_state = StatevectorSimulator().run(ideal.without_noise())

    simulator = ApproximateNoisySimulator(level=1)
    rows = []
    for num_noises in (0, 2, 4, 6):
        model = NoiseModel(lambda arity, rng: SYCAMORE_LIKE_SPEC.gate_noise(arity, rng), seed=9)
        noisy = model.insert_random(ideal, num_noises)
        result = simulator.fidelity(noisy, output_state=ideal_state)
        rows.append([num_noises, result.value, result.error_bound])
    print(
        format_table(
            ["#Noises", "Fidelity to ideal ansatz", "Theorem-1 bound"],
            rows,
            title="hf_6 ansatz fidelity under superconducting decoherence",
        )
    )


def particle_number_leakage() -> None:
    ideal = hf_circuit(4, seed=3, native_gates=False)
    noisy = NoiseModel(
        lambda arity, rng: SYCAMORE_LIKE_SPEC.scaled(25.0).gate_noise(arity, rng), seed=9
    ).insert_random(ideal, 4)

    rho = estimate_density_matrix(TNSimulator(), noisy)
    weights = np.array([bin(i).count("1") for i in range(rho.shape[0])])
    in_sector = float(np.real(sum(rho[i, i] for i in range(rho.shape[0]) if weights[i] == 2)))
    print(
        "\nhf_4 with 4 strong decoherence events: probability of staying in the "
        f"half-filling (2-particle) sector = {in_sector:.4f}"
    )
    print("Leakage out of the sector is a direct, physically interpretable error signature "
          "that a noiseless simulation can never show.")


def main() -> None:
    ansatz_fidelity_sweep()
    particle_number_leakage()


if __name__ == "__main__":
    main()
