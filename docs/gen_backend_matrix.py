#!/usr/bin/env python
"""Generate the backend capability matrix in ``docs/backends.md`` from the registry.

The matrix between the ``BEGIN``/``END`` markers in ``docs/backends.md`` is
*generated*, never hand-edited: this script renders it from the live registry
(:mod:`repro.backends`), so the documentation cannot drift from the code.

Usage::

    python docs/gen_backend_matrix.py            # rewrite the matrix in place
    python docs/gen_backend_matrix.py --check    # exit 1 if docs/backends.md is stale

CI runs ``--check``; if it fails, regenerate and commit the result.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

DOC_PATH = ROOT / "docs" / "backends.md"
BEGIN = "<!-- BEGIN GENERATED BACKEND MATRIX (python docs/gen_backend_matrix.py) -->"
END = "<!-- END GENERATED BACKEND MATRIX -->"


def render_matrix() -> str:
    """Render the registry's capability matrix as a GitHub-flavoured table."""
    from repro.backends import backend_aliases, backend_names
    from repro.backends.registry import _REGISTRY

    aliases = backend_aliases()
    headers = [
        "Backend",
        "Aliases",
        "Noisy",
        "Exact",
        "Stochastic",
        "Max qubits",
        "Product states only",
        "Device",
        "Simulator",
    ]
    rows = []
    for name in backend_names():
        cls = _REGISTRY[name]
        caps = cls.capabilities
        doc = (cls.__doc__ or "").strip().splitlines()[0] if cls.__doc__ else ""
        # Pipes inside docstrings (Dirac notation) would break the table cell.
        doc = doc.replace("|", "\\|")
        rows.append(
            [
                f"`{name}`",
                ", ".join(f"`{alias}`" for alias in aliases[name]) or "–",
                "yes" if caps.noisy else "no",
                "yes" if caps.exact else "no",
                "yes" if caps.stochastic else "no",
                str(caps.max_qubits) if caps.max_qubits is not None else "–",
                "yes" if caps.needs_product_state else "no",
                "cpu+device" if caps.supports_device else "cpu",
                doc,
            ]
        )
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    lines += ["| " + " | ".join(row) + " |" for row in rows]
    return "\n".join(lines)


def updated_document(text: str) -> str:
    """Replace the generated section of ``docs/backends.md`` with a fresh matrix."""
    begin = text.find(BEGIN)
    end = text.find(END)
    if begin < 0 or end < 0 or end < begin:
        raise SystemExit(
            f"{DOC_PATH} is missing the generated-matrix markers:\n  {BEGIN}\n  {END}"
        )
    return text[: begin + len(BEGIN)] + "\n" + render_matrix() + "\n" + text[end:]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if docs/backends.md is stale instead of rewriting it",
    )
    args = parser.parse_args(argv)

    current = DOC_PATH.read_text()
    fresh = updated_document(current)
    if args.check:
        if current != fresh:
            print(
                f"{DOC_PATH} is stale relative to the backend registry; "
                "run 'python docs/gen_backend_matrix.py' and commit the result.",
                file=sys.stderr,
            )
            return 1
        print(f"{DOC_PATH}: backend matrix is up to date")
        return 0
    if current != fresh:
        DOC_PATH.write_text(fresh)
        print(f"{DOC_PATH}: backend matrix regenerated")
    else:
        print(f"{DOC_PATH}: backend matrix already up to date")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
