"""Quantum trajectories (Monte-Carlo) noisy simulation.

This is the approximate baseline the paper compares against (their reference
[1], the qsim/Cirq approach): instead of evolving a density matrix, sample a
pure-state *trajectory* by drawing one Kraus operator per noise channel, and
average ``|⟨v|ψ_traj⟩|²`` over many trajectories.

Two backends are provided, matching the paper's Table III:

* ``backend="statevector"`` ("Traj (MM)") — the trajectory state is a dense
  statevector; Kraus operators are drawn with their exact Born probabilities
  ``p_k = ‖E_k|ψ⟩‖²`` and the state renormalised.
* ``backend="tn"`` ("Traj (TN)") — each trajectory is evaluated as a single
  tensor-network amplitude contraction.  Exact per-state Kraus probabilities
  are unavailable without extra contractions, so operators are drawn from the
  state-independent distribution ``q_k = tr(E_k† E_k)/d`` and the estimator is
  importance-weighted accordingly (an unbiased estimator of the same
  quantity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.circuits.circuit import Circuit
from repro.simulators.statevector import apply_matrix
from repro.tensornetwork.circuit_to_tn import StateLike, operator_amplitude_network, resolve_product_state
from repro.utils.states import zero_state
from repro.utils.validation import ValidationError, check_statevector

__all__ = ["TrajectoryResult", "TrajectorySimulator"]


@dataclass(frozen=True)
class TrajectoryResult:
    """Outcome of a trajectory estimation run."""

    estimate: float
    standard_error: float
    num_samples: int
    samples: tuple

    def confidence_interval(self, z: float = 2.576) -> tuple:
        """Return a normal-approximation confidence interval (99% by default)."""
        return (self.estimate - z * self.standard_error, self.estimate + z * self.standard_error)


class TrajectorySimulator:
    """Monte-Carlo sampling of Kraus operators (the quantum-trajectories method)."""

    def __init__(self, backend: str = "statevector", max_intermediate_size: int | None = 2**26) -> None:
        if backend not in ("statevector", "tn"):
            raise ValidationError(f"unknown trajectory backend {backend!r}")
        self.backend = backend
        self.max_intermediate_size = max_intermediate_size

    # ------------------------------------------------------------------
    def estimate_fidelity(
        self,
        circuit: Circuit,
        num_samples: int,
        input_state: StateLike = None,
        output_state: StateLike = None,
        rng: np.random.Generator | int | None = None,
    ) -> TrajectoryResult:
        """Estimate ``⟨v| E_N(|ψ⟩⟨ψ|) |v⟩`` from ``num_samples`` trajectories."""
        if num_samples <= 0:
            raise ValidationError("num_samples must be positive")
        rng = np.random.default_rng(rng)
        n = circuit.num_qubits
        input_state = "0" * n if input_state is None else input_state
        output_state = "0" * n if output_state is None else output_state

        if self.backend == "statevector":
            values = self._run_statevector(circuit, num_samples, input_state, output_state, rng)
        else:
            values = self._run_tn(circuit, num_samples, input_state, output_state, rng)

        values = np.asarray(values, dtype=float)
        estimate = float(values.mean())
        stderr = float(values.std(ddof=1) / np.sqrt(num_samples)) if num_samples > 1 else float("inf")
        return TrajectoryResult(estimate, stderr, num_samples, tuple(values))

    # ------------------------------------------------------------------
    # Statevector (MM) backend: exact Born-rule Kraus sampling.
    # ------------------------------------------------------------------
    def _densify(self, state: StateLike, num_qubits: int) -> np.ndarray:
        resolved = resolve_product_state(state, num_qubits)
        if isinstance(resolved, list):
            dense = np.array([1.0 + 0.0j])
            for factor in resolved:
                dense = np.kron(dense, factor)
            return dense
        return resolved

    def _run_statevector(
        self,
        circuit: Circuit,
        num_samples: int,
        input_state: StateLike,
        output_state: StateLike,
        rng: np.random.Generator,
    ) -> List[float]:
        n = circuit.num_qubits
        if n > 22:
            raise MemoryError("statevector trajectory backend limited to 22 qubits")
        psi0 = self._densify(input_state, n)
        v = self._densify(output_state, n)
        values: List[float] = []
        for _ in range(num_samples):
            state = psi0.copy()
            for inst in circuit:
                if inst.is_gate:
                    state = apply_matrix(state, inst.operation.matrix, inst.qubits, n)
                else:
                    state = self._sample_kraus_exact(state, inst, n, rng)
            values.append(float(abs(np.vdot(v, state)) ** 2))
        return values

    @staticmethod
    def _sample_kraus_exact(state: np.ndarray, inst, num_qubits: int, rng: np.random.Generator) -> np.ndarray:
        branches = []
        probabilities = []
        for op in inst.operation.kraus_operators:
            branch = apply_matrix(state, op, inst.qubits, num_qubits)
            prob = float(np.real(np.vdot(branch, branch)))
            branches.append(branch)
            probabilities.append(prob)
        probabilities = np.asarray(probabilities)
        total = probabilities.sum()
        if total <= 0:
            raise ValidationError("trajectory collapsed to zero norm (invalid channel?)")
        probabilities = probabilities / total
        index = int(rng.choice(len(branches), p=probabilities))
        chosen = branches[index]
        return chosen / np.linalg.norm(chosen)

    # ------------------------------------------------------------------
    # Tensor-network backend: state-independent Kraus sampling with
    # importance weights, each trajectory a single amplitude contraction.
    # ------------------------------------------------------------------
    def _run_tn(
        self,
        circuit: Circuit,
        num_samples: int,
        input_state: StateLike,
        output_state: StateLike,
        rng: np.random.Generator,
    ) -> List[float]:
        n = circuit.num_qubits
        # Pre-compute the sampling distribution q_k for every noise instruction.
        noise_distributions = []
        for inst in circuit:
            if inst.is_noise:
                weights = np.array(
                    [np.real(np.trace(op.conj().T @ op)) for op in inst.operation.kraus_operators]
                )
                weights = weights / weights.sum()
                noise_distributions.append(weights)

        values: List[float] = []
        for _ in range(num_samples):
            operations = []
            weight = 1.0
            noise_index = 0
            for inst in circuit:
                if inst.is_gate:
                    operations.append((inst.operation.matrix, inst.qubits))
                else:
                    q = noise_distributions[noise_index]
                    k = int(rng.choice(len(q), p=q))
                    op = inst.operation.kraus_operators[k]
                    # Importance weight: the estimator of |⟨v|E_{k_d}…|ψ⟩|²/∏q
                    # is unbiased for Σ_k |⟨v|E_k…|ψ⟩|² = ⟨v|E(ψ)|v⟩.
                    weight /= q[k]
                    operations.append((op, inst.qubits))
                    noise_index += 1
            network = operator_amplitude_network(
                n,
                operations,
                input_state,
                output_state,
                name="trajectory",
                max_intermediate_size=self.max_intermediate_size,
            )
            amplitude = network.contract_to_scalar()
            values.append(float(abs(amplitude) ** 2) * weight)
        return values

    # ------------------------------------------------------------------
    def samples_for_precision(
        self,
        circuit: Circuit,
        target_standard_error: float,
        pilot_samples: int = 64,
        input_state: StateLike = None,
        output_state: StateLike = None,
        rng: np.random.Generator | int | None = None,
        max_samples: int = 1_000_000,
    ) -> int:
        """Estimate how many trajectories reach ``target_standard_error``.

        Runs a short pilot to estimate the per-sample variance and scales by
        ``(σ / ε)²``.  Used by the Table III / Fig. 5 benchmark harnesses to
        match the trajectories baseline to the approximation algorithm's
        accuracy.

        When the noise rate is small, a short pilot frequently observes *no*
        noise event at all and reports zero variance, which would wrongly
        suggest that a single trajectory suffices.  A rare-event variance
        floor is therefore applied: with zero observed events in ``m`` pilot
        trajectories, the 95%-confidence upper bound on the event probability
        is ``≈ 3/m`` (the rule of three), and the per-sample variance is
        floored accordingly.
        """
        if target_standard_error <= 0:
            raise ValidationError("target_standard_error must be positive")
        pilot = self.estimate_fidelity(
            circuit, pilot_samples, input_state, output_state, rng=rng
        )
        measured_variance = (pilot.standard_error * np.sqrt(pilot_samples)) ** 2
        # Rule-of-three floor for rare noise events unseen by the pilot.
        event_probability_bound = 3.0 / pilot_samples
        spread = max(pilot.estimate * (1.0 - pilot.estimate), 1e-4)
        variance_floor = event_probability_bound * spread
        variance = max(measured_variance, variance_floor)
        needed = int(np.ceil(variance / target_standard_error**2))
        return int(min(max(needed, 1), max_samples))
