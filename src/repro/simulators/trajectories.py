"""Quantum trajectories (Monte-Carlo) noisy simulation.

This is the approximate baseline the paper compares against (their reference
[1], the qsim/Cirq approach): instead of evolving a density matrix, sample a
pure-state *trajectory* by drawing one Kraus operator per noise channel, and
average ``|⟨v|ψ_traj⟩|²`` over many trajectories.

Two backends are provided, matching the paper's Table III:

* ``backend="statevector"`` ("Traj (MM)") — the trajectory state is a dense
  statevector; Kraus operators are drawn with their exact Born probabilities
  ``p_k = ‖E_k|ψ⟩‖²`` and the state renormalised.
* ``backend="tn"`` ("Traj (TN)") — each trajectory is evaluated as a single
  tensor-network amplitude contraction.  Exact per-state Kraus probabilities
  are unavailable without extra contractions, so operators are drawn from the
  state-independent distribution ``q_k = tr(E_k† E_k)/d`` and the estimator is
  importance-weighted accordingly (an unbiased estimator of the same
  quantity).

Execution is delegated to the batched engine
(:class:`repro.backends.engine.BatchedTrajectoryEngine`): the statevector
backend evolves whole ``(batch, 2**n)`` arrays of trajectories at once, the
TN backend reuses one cached network topology and contraction order across
samples, and both support chunked multi-process execution (``workers=k``)
with per-chunk seeded RNG streams.  With ``workers=None`` the engine consumes
the RNG stream in exactly the order of the historical per-sample loop, so
results for a given seed are unchanged.

``device=`` selects the :class:`repro.xp.ArrayNamespace` the engine's batched
hot paths execute on (``None``/"cpu" = host numpy); sampling decisions always
run on the host from the same seeded uniforms, so estimates are bit-identical
across devices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import Circuit
from repro.tensornetwork.circuit_to_tn import StateLike
from repro.utils.validation import ValidationError
from repro.xp import declare_seam, get_namespace
from repro.xp import host as np

declare_seam(__name__, mode="dispatch")

__all__ = ["TrajectoryResult", "TrajectorySimulator", "required_samples"]


def required_samples(
    estimate: float,
    standard_error: float,
    pilot_samples: int,
    target_standard_error: float,
    max_samples: int = 1_000_000,
) -> int:
    """Trajectory count needed to reach ``target_standard_error`` after a pilot.

    Scales the pilot's per-sample variance by ``(σ / ε)²``.  When the noise
    rate is small, a short pilot frequently observes *no* noise event at all
    and reports zero variance, which would wrongly suggest that a single
    trajectory suffices; a rare-event variance floor is therefore applied:
    with zero observed events in ``m`` pilot trajectories, the 95%-confidence
    upper bound on the event probability is ``≈ 3/m`` (the rule of three), and
    the per-sample variance is floored accordingly.  Shared by
    :meth:`TrajectorySimulator.samples_for_precision` and
    :meth:`repro.api.Executable.samples_for_precision`, so the pilot math is
    identical however the pilot was run.
    """
    if target_standard_error <= 0:
        raise ValidationError("target_standard_error must be positive")
    measured_variance = (standard_error * np.sqrt(pilot_samples)) ** 2
    event_probability_bound = 3.0 / pilot_samples
    spread = max(estimate * (1.0 - estimate), 1e-4)
    variance_floor = event_probability_bound * spread
    variance = max(measured_variance, variance_floor)
    needed = int(np.ceil(variance / target_standard_error**2))
    return int(min(max(needed, 1), max_samples))


@dataclass(frozen=True)
class TrajectoryResult:
    """Outcome of a trajectory estimation run.

    ``samples`` is None unless the run was made with ``keep_samples=True``:
    retaining a million-element tuple for a million-sample run serves no
    purpose when the estimate and standard error are already exact.
    """

    estimate: float
    standard_error: float
    num_samples: int
    samples: tuple | None = None

    def confidence_interval(self, z: float = 2.576) -> tuple:
        """Return a normal-approximation confidence interval (99% by default)."""
        return (self.estimate - z * self.standard_error, self.estimate + z * self.standard_error)


class TrajectorySimulator:
    """Monte-Carlo sampling of Kraus operators (the quantum-trajectories method)."""

    def __init__(
        self,
        backend: str = "statevector",
        max_intermediate_size: int | None = 2**26,
        optimize: bool = False,
        device: str | None = None,
    ) -> None:
        if backend not in ("statevector", "tn"):
            raise ValidationError(f"unknown trajectory backend {backend!r}")
        self.backend = backend
        self.max_intermediate_size = max_intermediate_size
        #: Execution device for the batched engine (None = host).  Validated
        #: eagerly so an unavailable device fails at construction time.
        self.device = device
        if device is not None:
            get_namespace(device)
        #: Apply the trajectory-safe compiler passes (unitary-noise folding,
        #: gate fusion, boundary pruning — see :mod:`repro.circuits.passes`)
        #: before sampling.  Off by default for this seed-era class: removing
        #: a noise site shifts the per-channel RNG stream, so seeded runs are
        #: only bit-stable against their own optimize setting.  The session
        #: layer (:meth:`repro.api.Session.compile`) applies the same passes
        #: by default with the backend's own profile.
        self.optimize = bool(optimize)

    def _optimized(self, circuit: Circuit, input_state, output_state) -> Circuit:
        if not self.optimize:
            return circuit
        from repro.circuits.passes import run_passes

        n = circuit.num_qubits
        optimized, _ = run_passes(
            circuit,
            input_state="0" * n if input_state is None else input_state,
            output_state="0" * n if output_state is None else output_state,
        )
        return optimized

    # ------------------------------------------------------------------
    def _engine(self):
        # Imported lazily: repro.backends wraps the simulators, so a module-level
        # import here would be circular.
        from repro.backends.engine import BatchedTrajectoryEngine

        return BatchedTrajectoryEngine(
            backend=self.backend,
            max_intermediate_size=self.max_intermediate_size,
            device=self.device,
        )

    def estimate_fidelity(
        self,
        circuit: Circuit,
        num_samples: int,
        input_state: StateLike = None,
        output_state: StateLike = None,
        rng: np.random.Generator | int | None = None,
        keep_samples: bool = False,
        workers: int | None = None,
    ) -> TrajectoryResult:
        """Estimate ``⟨v| E_N(|ψ⟩⟨ψ|) |v⟩`` from ``num_samples`` trajectories.

        ``workers=None`` runs in-process on a single RNG stream; ``workers=k``
        splits the samples into fixed-size seeded blocks executed by ``k``
        processes, with results identical for every ``k``.
        """
        circuit = self._optimized(circuit, input_state, output_state)
        return self._engine().estimate_fidelity(
            circuit,
            num_samples,
            input_state,
            output_state,
            rng=rng,
            keep_samples=keep_samples,
            workers=workers,
        )

    # ------------------------------------------------------------------
    def samples_for_precision(
        self,
        circuit: Circuit,
        target_standard_error: float,
        pilot_samples: int = 64,
        input_state: StateLike = None,
        output_state: StateLike = None,
        rng: np.random.Generator | int | None = None,
        max_samples: int = 1_000_000,
    ) -> int:
        """Estimate how many trajectories reach ``target_standard_error``.

        Runs a short pilot to estimate the per-sample variance and scales by
        ``(σ / ε)²``.  Used by the Table III / Fig. 5 benchmark harnesses to
        match the trajectories baseline to the approximation algorithm's
        accuracy.

        When the noise rate is small, a short pilot frequently observes *no*
        noise event at all and reports zero variance, which would wrongly
        suggest that a single trajectory suffices.  A rare-event variance
        floor is therefore applied: with zero observed events in ``m`` pilot
        trajectories, the 95%-confidence upper bound on the event probability
        is ``≈ 3/m`` (the rule of three), and the per-sample variance is
        floored accordingly.
        """
        if target_standard_error <= 0:
            raise ValidationError("target_standard_error must be positive")
        pilot = self.estimate_fidelity(
            circuit, pilot_samples, input_state, output_state, rng=rng
        )
        return required_samples(
            pilot.estimate,
            pilot.standard_error,
            pilot_samples,
            target_standard_error,
            max_samples=max_samples,
        )
