"""Dense statevector simulation of noiseless circuits.

This is the textbook simulator the paper describes in the introduction: the
state is a dense ``2**n`` amplitude vector and each gate is applied by a
tensor contraction on the relevant axes.  It cannot represent noise channels
(use the density-matrix or trajectory simulators for that), but it is the
workhorse behind the quantum-trajectories baseline and all small-scale
cross-checks in the test suite.

Dense math dispatches through an :class:`repro.xp.ArrayNamespace`
(``device=`` / ``dtype=`` on the constructor, or the ``xp=`` argument of
:func:`apply_matrix`); the default is the host numpy namespace, which is
bit-identical to calling numpy directly.  Public methods accept and return
*host* arrays regardless of device — transfers happen at the boundary.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.circuits.circuit import Circuit
from repro.utils.states import zero_state
from repro.utils.validation import ValidationError, check_statevector
from repro.xp import declare_seam, get_namespace
from repro.xp import host as np

declare_seam(__name__, mode="dispatch")

__all__ = ["apply_matrix", "StatevectorSimulator"]

#: Hard cap on the qubit count for dense statevector simulation.
MAX_DENSE_QUBITS = 24


def apply_matrix(state, matrix, qubits: Sequence[int], num_qubits: int, xp=None):
    """Apply a (not necessarily unitary) matrix to the given qubits of ``state``.

    Parameters
    ----------
    state:
        Dense amplitude vector of length ``2**num_qubits`` (a device array of
        ``xp`` when one is given, else a host ndarray).
    matrix:
        ``2**k x 2**k`` matrix acting on ``k = len(qubits)`` qubits (host
        data; transferred to the device per call — gates are small).
    qubits:
        Big-endian qubit indices the matrix acts on, in the matrix's own order.
    num_qubits:
        Total register size.
    xp:
        Optional :class:`repro.xp.ArrayNamespace`; default is the host numpy
        namespace (zero-copy, bit-identical to the pre-seam implementation).
    """
    if xp is None:
        xp = get_namespace("cpu")
    qubits = [int(q) for q in qubits]
    k = len(qubits)
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2**k, 2**k):
        raise ValidationError(f"matrix shape {matrix.shape} does not match {k} qubits")
    tensor = xp.reshape(xp.asarray(state, dtype=xp.complex_dtype), [2] * num_qubits)
    gate_tensor = xp.asarray(
        matrix.reshape([2] * (2 * k)).astype(xp.complex_dtype, copy=False)
    )
    # Contract the gate's input axes with the state's qubit axes.
    tensor = xp.tensordot(gate_tensor, tensor, axes=(list(range(k, 2 * k)), qubits))
    # tensordot moves the contracted axes to the front; restore the ordering.
    order = list(qubits) + [ax for ax in range(num_qubits) if ax not in qubits]
    inverse = np.argsort(order)
    return xp.reshape(xp.transpose(tensor, inverse), (-1,))


class StatevectorSimulator:
    """Noiseless dense statevector simulator."""

    def __init__(
        self,
        max_qubits: int = MAX_DENSE_QUBITS,
        device: str | None = None,
        dtype=None,
    ) -> None:
        self.max_qubits = int(max_qubits)
        self.device = device
        self._xp = get_namespace(device or "cpu", dtype=dtype)

    # ------------------------------------------------------------------
    def _check(self, circuit: Circuit) -> None:
        if circuit.num_qubits > self.max_qubits:
            raise ValidationError(
                f"statevector simulation limited to {self.max_qubits} qubits "
                f"(circuit has {circuit.num_qubits})"
            )
        if not circuit.is_noiseless():
            raise ValidationError(
                "StatevectorSimulator cannot simulate noise channels; "
                "use DensityMatrixSimulator or TrajectorySimulator"
            )

    def run(self, circuit: Circuit, initial_state=None) -> np.ndarray:
        """Return the final statevector of ``circuit`` applied to ``initial_state``.

        The result is always a *host* ndarray (device results are transferred
        back at the end of the evolution).
        """
        self._check(circuit)
        xp = self._xp
        n = circuit.num_qubits
        state = zero_state(n) if initial_state is None else check_statevector(initial_state)
        if state.size != 2**n:
            raise ValidationError(
                f"initial state has {state.size} amplitudes, expected {2**n}"
            )
        device_state = xp.asarray(state.astype(xp.complex_dtype, copy=False))
        for inst in circuit:
            device_state = apply_matrix(
                device_state, inst.operation.matrix, inst.qubits, n, xp=xp
            )
        return xp.to_host(device_state)

    def amplitude(
        self,
        circuit: Circuit,
        output_state,
        initial_state=None,
    ) -> complex:
        """Return ``⟨v| C |ψ⟩`` for dense vectors ``v`` and ``ψ``."""
        final = self.run(circuit, initial_state)
        v = check_statevector(output_state)
        return complex(np.vdot(v, final))

    def probabilities(self, circuit: Circuit, initial_state=None) -> np.ndarray:
        """Return the measurement probability of every computational basis state."""
        final = self.run(circuit, initial_state)
        return np.abs(final) ** 2

    def sample(
        self,
        circuit: Circuit,
        shots: int,
        rng=None,
        initial_state=None,
    ) -> Dict[str, int]:
        """Sample measurement outcomes in the computational basis."""
        if shots <= 0:
            raise ValidationError("shots must be positive")
        rng = np.random.default_rng(rng)
        probs = self.probabilities(circuit, initial_state)
        probs = probs / probs.sum()
        outcomes = rng.choice(len(probs), size=shots, p=probs)
        counts: Dict[str, int] = {}
        width = circuit.num_qubits
        for outcome in outcomes:
            key = format(int(outcome), f"0{width}b")
            counts[key] = counts.get(key, 0) + 1
        return counts

    def expectation(
        self,
        circuit: Circuit,
        observable,
        initial_state=None,
    ) -> float:
        """Return ``⟨ψ_out| O |ψ_out⟩`` for a Hermitian observable ``O``."""
        final = self.run(circuit, initial_state)
        observable = np.asarray(observable, dtype=complex)
        if observable.shape != (final.size, final.size):
            raise ValidationError("observable dimension does not match the circuit")
        return float(np.real(np.vdot(final, observable @ final)))
