"""Simulation backends.

Accurate methods (the paper's Table II baselines):

* :class:`StatevectorSimulator` — dense noiseless simulation.
* :class:`DensityMatrixSimulator` — MM-based noisy simulation.
* :class:`TNSimulator` — tensor-network noisy simulation (Section III diagram).
* :class:`TDDSimulator` — decision-diagram noisy simulation.

Approximate methods:

* :class:`TrajectorySimulator` — quantum trajectories (MM and TN backends).
* :class:`MPSSimulator` — matrix-product-state simulation with bond truncation.

The paper's own approximation algorithm lives in :mod:`repro.core`.

All of these simulators are also exposed through the unified backend registry
in :mod:`repro.backends`: ``get_backend(name).run(circuit, task)`` gives every
method the same fidelity API with capability metadata, and the stochastic
trajectory paths are executed by the batched parallel engine
(:class:`repro.backends.BatchedTrajectoryEngine`).  New code should prefer the
registry over importing simulator classes directly.
"""

from repro.simulators.density_matrix import (
    DensityMatrixSimulator,
    apply_channel_to_density,
    apply_matrix_to_density,
)
from repro.simulators.mpdo import MatrixProductDensityOperator, MPDOSimulator
from repro.simulators.mps import MatrixProductState, MPSSimulator
from repro.simulators.statevector import StatevectorSimulator, apply_matrix
from repro.simulators.tdd import TDDSimulator
from repro.simulators.tn_simulator import TNSimulator
from repro.simulators.trajectories import TrajectoryResult, TrajectorySimulator

__all__ = [
    "StatevectorSimulator",
    "apply_matrix",
    "DensityMatrixSimulator",
    "apply_matrix_to_density",
    "apply_channel_to_density",
    "TNSimulator",
    "TDDSimulator",
    "TrajectorySimulator",
    "TrajectoryResult",
    "MPSSimulator",
    "MatrixProductState",
    "MPDOSimulator",
    "MatrixProductDensityOperator",
]
