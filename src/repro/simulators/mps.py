"""Matrix-product-state (MPS) simulator with bond truncation.

The paper's related-work section lists MPS/MPO/MPDO simulation as the other
family of SVD-based approximation methods.  This module provides a complete
MPS simulator for noiseless circuits (and, combined with
:class:`~repro.simulators.trajectories.TrajectorySimulator`-style sampling, a
building block for approximate noisy simulation).  It is used by the ablation
benchmarks to contrast bond-dimension truncation with the paper's noise-tensor
truncation.

Conventions: site tensors have shape ``(left_bond, physical, right_bond)``;
qubit 0 is the leftmost site.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.circuits.circuit import Circuit
from repro.circuits import gates as glib
from repro.utils.validation import ValidationError

from repro.xp import declare_seam
from repro.xp import host as np

declare_seam(__name__, mode="host")

__all__ = ["MatrixProductState", "MPSSimulator"]


class MatrixProductState:
    """A matrix product state over ``num_qubits`` two-level sites."""

    def __init__(self, tensors: Sequence[np.ndarray]) -> None:
        if not tensors:
            raise ValidationError("an MPS needs at least one site tensor")
        self.tensors: List[np.ndarray] = [np.asarray(t, dtype=complex) for t in tensors]
        for i, tensor in enumerate(self.tensors):
            if tensor.ndim != 3 or tensor.shape[1] != 2:
                raise ValidationError(
                    f"site tensor {i} must have shape (left, 2, right), got {tensor.shape}"
                )
        if self.tensors[0].shape[0] != 1 or self.tensors[-1].shape[2] != 1:
            raise ValidationError("boundary bond dimensions must be 1")

    # ------------------------------------------------------------------
    @classmethod
    def from_product_state(cls, factors: Sequence[np.ndarray]) -> "MatrixProductState":
        """Build an MPS from per-qubit 2-vectors (bond dimension 1)."""
        tensors = [np.asarray(f, dtype=complex).reshape(1, 2, 1) for f in factors]
        return cls(tensors)

    @classmethod
    def zero_state(cls, num_qubits: int) -> "MatrixProductState":
        """The ``|0…0⟩`` MPS."""
        return cls.from_product_state([np.array([1.0, 0.0])] * num_qubits)

    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Number of sites."""
        return len(self.tensors)

    def bond_dimensions(self) -> List[int]:
        """Bond dimensions between consecutive sites."""
        return [tensor.shape[2] for tensor in self.tensors[:-1]]

    def max_bond_dimension(self) -> int:
        """Largest bond dimension in the chain."""
        dims = self.bond_dimensions()
        return max(dims) if dims else 1

    def norm(self) -> float:
        """2-norm of the represented state."""
        env = np.array([[1.0 + 0.0j]])
        for tensor in self.tensors:
            env = np.einsum("ab,aps,bpt->st", env, tensor.conj(), tensor)
        return float(np.sqrt(abs(env[0, 0].real)))

    def amplitude(self, bitstring: str) -> complex:
        """Amplitude ``⟨bitstring|ψ⟩``."""
        if len(bitstring) != self.num_qubits or any(c not in "01" for c in bitstring):
            raise ValidationError(f"invalid bitstring {bitstring!r}")
        env = np.array([1.0 + 0.0j])
        for tensor, bit in zip(self.tensors, bitstring):
            env = env @ tensor[:, int(bit), :]
        return complex(env[0])

    def to_statevector(self) -> np.ndarray:
        """Dense statevector (small qubit counts only)."""
        if self.num_qubits > 20:
            raise ValidationError("refusing to densify an MPS with more than 20 qubits")
        result = np.array([1.0 + 0.0j]).reshape(1, 1)
        for tensor in self.tensors:
            result = np.einsum("ia,apb->ipb", result, tensor).reshape(-1, tensor.shape[2])
        return result.reshape(-1)

    def overlap(self, other: "MatrixProductState") -> complex:
        """Inner product ``⟨self|other⟩``."""
        if other.num_qubits != self.num_qubits:
            raise ValidationError("MPS sizes do not match")
        env = np.array([[1.0 + 0.0j]])
        for bra, ket in zip(self.tensors, other.tensors):
            env = np.einsum("ab,aps,bpt->st", env, bra.conj(), ket)
        return complex(env[0, 0])

    def copy(self) -> "MatrixProductState":
        """Deep copy."""
        return MatrixProductState([tensor.copy() for tensor in self.tensors])

    # ------------------------------------------------------------------
    # Gate application
    # ------------------------------------------------------------------
    def apply_single_qubit(self, matrix: np.ndarray, site: int) -> None:
        """Apply a 1-qubit matrix to ``site`` in place."""
        matrix = np.asarray(matrix, dtype=complex)
        self.tensors[site] = np.einsum("qp,apb->aqb", matrix, self.tensors[site])

    def apply_two_qubit(
        self,
        matrix: np.ndarray,
        site: int,
        max_bond_dim: int | None = None,
        truncation_threshold: float = 0.0,
    ) -> float:
        """Apply a 2-qubit matrix to sites ``(site, site+1)`` with SVD truncation.

        Returns the discarded squared Schmidt weight (0 when no truncation
        happened), which callers can accumulate into a fidelity estimate.
        """
        if site < 0 or site + 1 >= self.num_qubits:
            raise ValidationError(f"two-qubit gate site {site} out of range")
        matrix = np.asarray(matrix, dtype=complex)
        left = self.tensors[site]
        right = self.tensors[site + 1]
        theta = np.einsum("apb,bqc->apqc", left, right)
        gate = matrix.reshape(2, 2, 2, 2)
        theta = np.einsum("rspq,apqc->arsc", gate, theta)
        dl, _, _, dr = theta.shape
        merged = theta.reshape(dl * 2, 2 * dr)
        u, singular, vh = np.linalg.svd(merged, full_matrices=False)

        keep = np.ones(len(singular), dtype=bool)
        if truncation_threshold > 0:
            keep &= singular > truncation_threshold * (singular[0] if singular.size else 1.0)
        if max_bond_dim is not None:
            keep &= np.arange(len(singular)) < max_bond_dim
        if not np.any(keep):
            keep[0] = True
        discarded = float(np.sum(singular[~keep] ** 2))

        u = u[:, keep]
        singular = singular[keep]
        vh = vh[keep, :]
        new_dim = len(singular)
        self.tensors[site] = u.reshape(dl, 2, new_dim)
        self.tensors[site + 1] = (np.diag(singular) @ vh).reshape(new_dim, 2, dr)
        return discarded

    def apply_swap(self, site: int, max_bond_dim: int | None = None) -> float:
        """Swap neighbouring sites ``site`` and ``site+1``."""
        return self.apply_two_qubit(glib.SWAP().matrix, site, max_bond_dim=max_bond_dim)


class MPSSimulator:
    """Noiseless circuit simulation on a matrix product state."""

    def __init__(
        self,
        max_bond_dim: int | None = None,
        truncation_threshold: float = 1e-12,
    ) -> None:
        self.max_bond_dim = max_bond_dim
        self.truncation_threshold = truncation_threshold

    def run(self, circuit: Circuit, initial_state: MatrixProductState | None = None) -> MatrixProductState:
        """Simulate ``circuit`` and return the final MPS.

        Non-adjacent two-qubit gates are routed with SWAP chains; gates on
        more than two qubits are rejected (decompose them first).
        """
        if not circuit.is_noiseless():
            raise ValidationError(
                "MPSSimulator only handles noiseless circuits; combine with the "
                "trajectory sampler for noisy simulation"
            )
        mps = (
            MatrixProductState.zero_state(circuit.num_qubits)
            if initial_state is None
            else initial_state.copy()
        )
        self.total_discarded_weight = 0.0
        for inst in circuit:
            matrix = inst.operation.matrix
            if len(inst.qubits) == 1:
                mps.apply_single_qubit(matrix, inst.qubits[0])
            elif len(inst.qubits) == 2:
                self._apply_two_qubit_routed(mps, matrix, inst.qubits)
            else:
                raise ValidationError(
                    f"MPS simulation supports 1- and 2-qubit gates, got {len(inst.qubits)}"
                )
        return mps

    def _apply_two_qubit_routed(
        self, mps: MatrixProductState, matrix: np.ndarray, qubits: Sequence[int]
    ) -> None:
        a, b = qubits
        flipped = False
        if a > b:
            a, b = b, a
            flipped = True
        # Bring qubit b next to a with swaps.
        for site in range(b - 1, a, -1):
            self.total_discarded_weight += mps.apply_swap(site, self.max_bond_dim)
        gate = matrix
        if flipped:
            gate = matrix.reshape(2, 2, 2, 2).transpose(1, 0, 3, 2).reshape(4, 4)
        self.total_discarded_weight += mps.apply_two_qubit(
            gate, a, self.max_bond_dim, self.truncation_threshold
        )
        for site in range(a + 1, b):
            self.total_discarded_weight += mps.apply_swap(site, self.max_bond_dim)

    def amplitude(self, circuit: Circuit, bitstring: str) -> complex:
        """Return ``⟨bitstring| C |0…0⟩``."""
        return self.run(circuit).amplitude(bitstring)
