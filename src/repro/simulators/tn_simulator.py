"""Tensor-network (TN-based) exact noisy simulator.

This is the "TN-based method" baseline of the paper (and the exact algorithm
of its Section III): build the doubled tensor-network diagram in which every
gate appears as ``U`` and ``U*`` and every noise as its matrix representation
``M_E``, then contract the whole network to obtain
``⟨v| E_N(|ψ⟩⟨ψ|) |v⟩`` exactly.

The contraction respects an optional intermediate-size budget; exceeding it
raises :class:`~repro.tensornetwork.network.ContractionMemoryError`, which the
benchmark harness reports as "MO" exactly like the paper's Table II.

The replay hot path (:class:`PreparedFidelity`) dispatches its contractions
through an :class:`repro.xp.ArrayNamespace` when the simulator is constructed
with ``device=``: the recorded plan's tensors are transferred to the device
once at prepare time and every :meth:`PreparedFidelity.execute` replays on
the device.  Network *construction* and ordering search stay on the host.
"""

from __future__ import annotations

from typing import List

from repro.circuits.circuit import Circuit
from repro.circuits.parameters import is_parametric
from repro.tensornetwork.circuit_to_tn import (
    StateLike,
    circuit_amplitude_network,
    noisy_doubled_network,
    noisy_observable_network,
)
from repro.tensornetwork.plan import ContractionPlan
from repro.xp import declare_seam, get_namespace
from repro.xp import host as np

declare_seam(__name__, mode="dispatch")

__all__ = ["PreparedFidelity", "TNSimulator"]


class PreparedFidelity:
    """A recorded fidelity contraction, replayable without re-planning.

    Produced by :meth:`TNSimulator.prepare`: the network construction and the
    greedy contraction-ordering search are paid once; :meth:`execute` replays
    the recorded schedule (the same pairwise ``tensordot`` sequence the live
    contraction performed, so the value is bit-identical to
    :meth:`TNSimulator.fidelity`).  Recording the plan contracts the template
    once, and that value *is* this configuration's fidelity (the tensors
    never change), so the first :meth:`execute` returns it directly instead
    of replaying — a one-shot compile-and-run pays exactly one contraction,
    like the unprepared path.

    A plan prepared from a *parametric* circuit (``rebuild`` given) is a
    value-free template shared by every binding of that structure: the
    recorded schedule depends only on tensor shapes (the greedy ordering
    inspects sizes, never entries), so :meth:`execute_bound` rebuilds the
    network tensors from the actual bound circuit — construction cost only,
    no ordering search — and replays the shared schedule.  Such a plan never
    serves a recorded value (it would belong to whichever binding recorded
    it) and its :meth:`execute` raises: callers must say which binding to
    evaluate.
    """

    __slots__ = (
        "plan",
        "tensors",
        "noiseless",
        "parametric",
        "_rebuild",
        "_recorded_value",
        "_xp",
        "_device_tensors",
    )

    def __init__(
        self,
        plan: ContractionPlan,
        tensors: List[np.ndarray],
        noiseless: bool,
        recorded_value: float | None = None,
        xp=None,
        rebuild=None,
    ) -> None:
        self.plan = plan
        self.tensors = tensors
        self.noiseless = noiseless
        #: True when this plan is a bind-slot template (see class docs).
        self.parametric = rebuild is not None
        self._rebuild = rebuild
        self._recorded_value = None if self.parametric else recorded_value
        #: Replay namespace (None = host numpy); device copies are lazy.
        self._xp = xp
        self._device_tensors = None

    def _replay_tensors(self) -> List:
        if self._xp is None or self._xp.device == "cpu":
            return list(self.tensors)
        if self._device_tensors is None:
            # One-time host -> device transfer, reused by every replay.
            self._device_tensors = [self._xp.asarray(tensor) for tensor in self.tensors]
        return list(self._device_tensors)

    def execute(self) -> float:
        """Return the fidelity (recorded value first, plan replay after)."""
        if self.parametric:
            raise ValueError(
                "a parametric plan has no values of its own; use "
                "execute_bound(circuit) with a bound circuit"
            )
        recorded = self._recorded_value
        if recorded is not None:
            # Consumed once; a concurrent reader racing the clear would just
            # return the identical value, so no lock is needed.
            self._recorded_value = None
            return recorded
        value = self.plan.execute(self._replay_tensors(), xp=self._xp)
        if self.noiseless:
            return float(abs(value) ** 2)
        return float(np.real(value))

    def execute_bound(self, circuit: Circuit) -> float:
        """Replay the recorded schedule on tensors rebuilt from ``circuit``.

        ``circuit`` must be a binding of the structure this plan was prepared
        from: the rebuilt network then has the same topology and node order
        as the recording template, so the schedule replays exactly — only
        the tensor *values* differ.  Pays network construction (O(nodes)),
        never an ordering search.
        """
        if not self.parametric:
            raise ValueError("execute_bound() requires a plan prepared from a parametric circuit")
        tensors = self._rebuild(circuit)
        if self._xp is not None and self._xp.device != "cpu":
            # Per-binding transfer: the tensors change with every binding, so
            # there is no stable device copy to cache.
            tensors = [self._xp.asarray(tensor) for tensor in tensors]
        value = self.plan.execute(list(tensors), xp=self._xp)
        if self.noiseless:
            return float(abs(value) ** 2)
        return float(np.real(value))

    def describe(self) -> dict:
        """Plan-cost summary (node count, steps, peak intermediate size)."""
        return {
            "noiseless": self.noiseless,
            "parametric": self.parametric,
            **self.plan.describe(),
        }


class TNSimulator:
    """Exact noisy simulation by contraction of the doubled tensor network."""

    def __init__(
        self,
        max_intermediate_size: int | None = 2**26,
        strategy: str = "greedy",
        device: str | None = None,
    ) -> None:
        #: Budget on the entry count of any intermediate tensor (None = unlimited).
        self.max_intermediate_size = max_intermediate_size
        #: Contraction-order heuristic ("greedy" or "sequential").
        self.strategy = strategy
        #: Replay device for prepared plans (None = host; construction and
        #: the ordering search always run on the host).
        self.device = device
        self._xp = None if device is None else get_namespace(device)

    # ------------------------------------------------------------------
    def amplitude(
        self,
        circuit: Circuit,
        input_state: StateLike,
        output_state: StateLike,
    ) -> complex:
        """Return ``⟨v| C |ψ⟩`` for a noiseless circuit (single-size network)."""
        network = circuit_amplitude_network(
            circuit,
            input_state,
            output_state,
            max_intermediate_size=self.max_intermediate_size,
        )
        return network.contract_to_scalar(strategy=self.strategy)

    def fidelity(
        self,
        circuit: Circuit,
        input_state: StateLike = None,
        output_state: StateLike = None,
    ) -> float:
        """Return ``⟨v| E_N(|ψ⟩⟨ψ|) |v⟩`` exactly.

        ``input_state`` and ``output_state`` default to ``|0…0⟩``.  Both may
        be bitstrings, per-qubit product factors or dense vectors.
        """
        n = circuit.num_qubits
        input_state = "0" * n if input_state is None else input_state
        output_state = "0" * n if output_state is None else output_state
        if circuit.is_noiseless():
            amp = self.amplitude(circuit, input_state, output_state)
            return float(abs(amp) ** 2)
        network = noisy_doubled_network(
            circuit,
            input_state,
            output_state,
            max_intermediate_size=self.max_intermediate_size,
        )
        value = network.contract_to_scalar(strategy=self.strategy)
        return float(np.real(value))

    def prepare(
        self,
        circuit: Circuit,
        input_state: StateLike = None,
        output_state: StateLike = None,
    ) -> PreparedFidelity:
        """Record a reusable contraction plan for this fidelity evaluation.

        Builds the same network :meth:`fidelity` would and contracts it once
        while recording the schedule (see
        :class:`repro.tensornetwork.plan.ContractionPlan`), so repeated
        evaluations of the same circuit/boundary configuration skip the
        network construction and ordering search entirely.
        """
        n = circuit.num_qubits
        input_state = "0" * n if input_state is None else input_state
        output_state = "0" * n if output_state is None else output_state
        noiseless = circuit.is_noiseless()

        def build_network(target: Circuit):
            if noiseless:
                return circuit_amplitude_network(
                    target,
                    input_state,
                    output_state,
                    max_intermediate_size=self.max_intermediate_size,
                )
            return noisy_doubled_network(
                target,
                input_state,
                output_state,
                max_intermediate_size=self.max_intermediate_size,
            )

        network = build_network(circuit)
        # Recording consumes the network, so snapshot the tensors first.
        tensors = [node.tensor for node in network.nodes]
        plan, value = ContractionPlan.record(network, strategy=self.strategy)
        if is_parametric(circuit):
            # Bind-slot template: the schedule is shared by every binding of
            # this structure, the values are not — execute_bound() rebuilds
            # the tensors from the bound circuit actually being run.
            return PreparedFidelity(
                plan,
                tensors,
                noiseless,
                xp=self._xp,
                rebuild=lambda target: [
                    node.tensor for node in build_network(target).nodes
                ],
            )
        recorded = float(abs(value) ** 2) if noiseless else float(np.real(value))
        return PreparedFidelity(plan, tensors, noiseless, recorded_value=recorded, xp=self._xp)

    def expectation(
        self,
        circuit: Circuit,
        observable,
        input_state: StateLike = None,
        lightcone: bool = True,
    ) -> float:
        """Return ``tr(O · E_N(|ψ⟩⟨ψ|))`` for a Pauli-sum observable ``O``.

        ``observable`` is a :class:`repro.circuits.observables.PauliObservable`
        (or a single :class:`PauliTerm`).  Each term is evaluated by one
        contraction of the doubled diagram with the trace-closure boundary —
        no density matrix is ever materialised, so this works for noisy
        circuits beyond the reach of the density-matrix simulator.

        With ``lightcone=True`` (the default) each term's network is built
        from the circuit restricted to the backward causal cone of that
        term's support (:func:`repro.circuits.passes.prune_to_observable_cone`)
        — exact, because the qubits outside the cone are traced out and every
        dropped site is trace preserving.  A local term of a shallow circuit
        then contracts a much smaller network than the full diagram.
        """
        from repro.circuits.observables import PauliObservable, PauliTerm
        from repro.circuits.passes import prune_to_observable_cone

        n = circuit.num_qubits
        input_state = "0" * n if input_state is None else input_state
        if isinstance(observable, PauliTerm):
            observable = PauliObservable([observable])
        total = observable.constant
        for term in observable:
            operator_map = term.operator_map()
            term_circuit = circuit
            if lightcone and operator_map:
                term_circuit, _ = prune_to_observable_cone(circuit, operator_map.keys())
            network = noisy_observable_network(
                term_circuit,
                input_state,
                operator_map,
                max_intermediate_size=self.max_intermediate_size,
            )
            value = network.contract_to_scalar(strategy=self.strategy)
            total += term.coefficient * float(np.real(value))
        return float(total)

    def matrix_element(
        self,
        circuit: Circuit,
        bra_state: StateLike,
        ket_state: StateLike,
        input_state: StateLike = None,
    ) -> complex:
        """Return ``⟨x| E_N(|ψ⟩⟨ψ|) |y⟩`` via the polarisation identity of Section III.

        Each of the four terms is itself a fidelity-style evaluation with a
        superposed boundary state, so arbitrary density-matrix elements reduce
        to four contractions of the doubled diagram.
        """
        from repro.tensornetwork.circuit_to_tn import dense_product_state

        n = circuit.num_qubits
        input_state = "0" * n if input_state is None else input_state

        x = dense_product_state(bra_state, n)
        y = dense_product_state(ket_state, n)
        terms = [
            (0.25, x + y),
            (-0.25, x - y),
            (-0.25j, x + 1j * y),
            (0.25j, x - 1j * y),
        ]
        total = 0.0 + 0.0j
        for coefficient, vector in terms:
            norm = np.linalg.norm(vector)
            if norm < 1e-15:
                continue
            value = self.fidelity(circuit, input_state, vector / norm)
            total += coefficient * (norm**2) * value
        return complex(total)
