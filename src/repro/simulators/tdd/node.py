"""Decision-diagram nodes and the unique table.

The TDD-based baseline of the paper represents tensors as decision diagrams
(their reference [32]).  The implementation here follows the QMDD flavour
commonly used for quantum simulation: every internal node splits on one qubit
level and has four outgoing edges indexed by the (row bit, column bit) pair
of that qubit; shared sub-diagrams are deduplicated through a unique table,
and edge weights carry the complex factors.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.xp import declare_seam
from repro.xp import host as np

declare_seam(__name__, mode="host")

__all__ = ["DDNode", "DDEdge", "UniqueTable", "TERMINAL", "WEIGHT_DECIMALS"]

#: Number of decimals used when hashing complex weights.  Values closer than
#: 10**-WEIGHT_DECIMALS are treated as identical, which keeps the diagrams
#: canonical in the presence of floating-point noise.
WEIGHT_DECIMALS = 12


def _round_complex(value: complex) -> complex:
    return complex(round(value.real, WEIGHT_DECIMALS), round(value.imag, WEIGHT_DECIMALS))


class DDNode:
    """An internal (or terminal) decision-diagram node.

    ``level`` is the qubit the node branches on (0 is the most significant
    qubit); ``edges`` holds the four outgoing edges in (row bit, column bit)
    order: ``(0,0), (0,1), (1,0), (1,1)``.  The terminal node has
    ``level = -1`` and no edges.
    """

    __slots__ = ("level", "edges", "_hash")

    def __init__(self, level: int, edges: Optional[Tuple["DDEdge", ...]] = None) -> None:
        self.level = level
        self.edges = edges or ()
        self._hash = None

    @property
    def is_terminal(self) -> bool:
        """True for the unique terminal node."""
        return self.level < 0

    def key(self) -> tuple:
        """Canonical hashing key (level + children ids + rounded weights)."""
        return (
            self.level,
            tuple((id(edge.node), _round_complex(edge.weight)) for edge in self.edges),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_terminal:
            return "<DD terminal>"
        return f"<DDNode level={self.level}>"


class DDEdge:
    """A weighted edge pointing at a node."""

    __slots__ = ("weight", "node")

    def __init__(self, weight: complex, node: DDNode) -> None:
        self.weight = complex(weight)
        self.node = node

    def is_zero(self, atol: float = 1e-14) -> bool:
        """True when the edge contributes nothing (zero weight)."""
        return abs(self.weight) <= atol

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<DDEdge {self.weight:.4g} -> {self.node!r}>"


#: The shared terminal node.
TERMINAL = DDNode(level=-1)


class UniqueTable:
    """Hash-consing table guaranteeing canonical, shared sub-diagrams."""

    def __init__(self) -> None:
        self._table: Dict[tuple, DDNode] = {}

    def get_node(self, level: int, edges: Tuple[DDEdge, ...]) -> DDEdge:
        """Return a normalised edge to a (possibly shared) node with the given children.

        Normalisation: the first edge with the largest-magnitude weight is
        scaled to 1 and its weight pulled out into the returned edge weight.
        A node whose children are all zero collapses to a zero edge to the
        terminal.
        """
        weights = np.array([edge.weight for edge in edges], dtype=complex)
        if np.all(np.abs(weights) <= 1e-14):
            return DDEdge(0.0, TERMINAL)
        pivot_index = int(np.argmax(np.abs(weights)))
        pivot = weights[pivot_index]
        normalised = tuple(
            DDEdge(edge.weight / pivot if abs(edge.weight) > 1e-14 else 0.0,
                   edge.node if abs(edge.weight) > 1e-14 else TERMINAL)
            for edge in edges
        )
        probe = DDNode(level, normalised)
        key = probe.key()
        node = self._table.get(key)
        if node is None:
            node = probe
            self._table[key] = node
        return DDEdge(pivot, node)

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        """Drop all cached nodes (used between independent simulations)."""
        self._table.clear()
