"""TDD-based noisy circuit simulator (decision-diagram baseline).

This reproduces the "TDD-based method" column of the paper's Table II: the
density matrix, all gates and all Kraus operators are held as decision
diagrams (:class:`~repro.simulators.tdd.diagram.MatrixDD`), gates are applied
as ``G ρ G†`` and noise channels as ``Σ_k E_k ρ E_k†`` using diagram algebra,
and the fidelity ``⟨v| E_N(|ψ⟩⟨ψ|) |v⟩`` is read off as ``tr(|v⟩⟨v| ρ)``.

For structured circuits the diagrams stay compact; for circuits with many
arbitrary-angle rotations they blow up — exactly the behaviour the paper
reports for the DD baseline.
"""

from __future__ import annotations

from repro.circuits.circuit import Circuit
from repro.simulators.tdd.diagram import DDContext, MatrixDD
from repro.utils.linalg import projector
from repro.utils.states import zero_state
from repro.utils.validation import ValidationError, check_statevector

from repro.xp import declare_seam
from repro.xp import host as np

declare_seam(__name__, mode="host")

__all__ = ["TDDSimulator"]


class TDDSimulator:
    """Exact noisy simulation with decision diagrams."""

    def __init__(self, max_qubits: int = 16, max_nodes: int | None = 200_000) -> None:
        self.max_qubits = int(max_qubits)
        #: Abort (as a memory-out condition) when the density diagram exceeds
        #: this many nodes.  Mirrors the MO/TO entries of Table II.
        self.max_nodes = max_nodes

    # ------------------------------------------------------------------
    def run(self, circuit: Circuit, initial_state: np.ndarray | None = None) -> MatrixDD:
        """Return the output density matrix as a decision diagram."""
        if circuit.num_qubits > self.max_qubits:
            raise MemoryError(
                f"TDD simulation limited to {self.max_qubits} qubits "
                f"(circuit has {circuit.num_qubits})"
            )
        n = circuit.num_qubits
        context = DDContext()
        if initial_state is None:
            rho_dense = projector(zero_state(n))
        else:
            arr = np.asarray(initial_state, dtype=complex)
            rho_dense = projector(check_statevector(arr)) if arr.ndim == 1 else arr
        if rho_dense.shape[0] != 2**n:
            raise ValidationError("initial state dimension does not match the circuit")
        rho = MatrixDD.from_matrix(rho_dense, context)

        for inst in circuit:
            if inst.is_gate:
                gate = MatrixDD.from_gate(inst.operation.matrix, inst.qubits, n, context)
                rho = gate.multiply(rho).multiply(gate.adjoint())
            else:
                terms = None
                for op in inst.operation.kraus_operators:
                    kraus = MatrixDD.from_gate(op, inst.qubits, n, context)
                    term = kraus.multiply(rho).multiply(kraus.adjoint())
                    terms = term if terms is None else terms.add(term)
                rho = terms
            if self.max_nodes is not None and rho.node_count() > self.max_nodes:
                raise MemoryError(
                    f"density diagram grew past {self.max_nodes} nodes "
                    "(decision-diagram blow-up)"
                )
            # Keep per-instruction caches from growing without bound.
            context.clear_caches()
        return rho

    def fidelity(
        self,
        circuit: Circuit,
        output_state: np.ndarray | None = None,
        initial_state: np.ndarray | None = None,
    ) -> float:
        """Return ``⟨v| E_N(|ψ⟩⟨ψ|) |v⟩`` using diagram algebra end to end."""
        n = circuit.num_qubits
        v = zero_state(n) if output_state is None else check_statevector(output_state)
        rho = self.run(circuit, initial_state)
        proj = MatrixDD.from_matrix(projector(v), rho.context)
        return float(np.real(proj.multiply(rho).trace()))

    def density_matrix(self, circuit: Circuit, initial_state: np.ndarray | None = None) -> np.ndarray:
        """Dense output density matrix (small circuits only; used for cross-checks)."""
        return self.run(circuit, initial_state).to_matrix()
