"""Decision-diagram (TDD/QMDD style) simulation backend."""

from repro.simulators.tdd.diagram import DDContext, MatrixDD
from repro.simulators.tdd.node import DDEdge, DDNode, TERMINAL, UniqueTable
from repro.simulators.tdd.simulator import TDDSimulator

__all__ = [
    "DDContext",
    "MatrixDD",
    "DDEdge",
    "DDNode",
    "TERMINAL",
    "UniqueTable",
    "TDDSimulator",
]
