"""Matrix decision diagrams (QMDD/TDD style) and their algebra.

A :class:`MatrixDD` represents a ``2**n x 2**n`` complex matrix as a decision
diagram: each level branches on one qubit's (row bit, column bit) pair, equal
sub-blocks are shared, and weights are pulled to the edges.  The operations
needed for noisy circuit simulation are implemented: conversion from/to dense
matrices, addition, matrix multiplication, adjoint, scaling, trace and an
embedding constructor for gates acting on a subset of qubits.

All operations route node creation through a shared :class:`UniqueTable`, so
structurally equal matrices end up as the *same* diagram — the property that
makes DD-based simulation memory-efficient for structured circuits.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.simulators.tdd.node import TERMINAL, DDEdge, DDNode, UniqueTable
from repro.utils.validation import ValidationError, check_power_of_two

from repro.xp import declare_seam
from repro.xp import host as np

declare_seam(__name__, mode="host")

__all__ = ["MatrixDD", "DDContext"]


class DDContext:
    """Shared unique table plus operation caches for DD computations."""

    def __init__(self) -> None:
        self.unique = UniqueTable()
        self.add_cache: Dict[tuple, Tuple[complex, DDNode]] = {}
        self.mul_cache: Dict[tuple, Tuple[complex, DDNode]] = {}

    def clear_caches(self) -> None:
        """Drop the operation caches (the unique table is kept)."""
        self.add_cache.clear()
        self.mul_cache.clear()


def _round_key(value: complex, decimals: int = 12) -> complex:
    return complex(round(value.real, decimals), round(value.imag, decimals))


class MatrixDD:
    """A decision-diagram representation of a square matrix on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, edge: DDEdge, context: DDContext) -> None:
        self.num_qubits = int(num_qubits)
        self.edge = edge
        self.context = context

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_matrix(
        cls, matrix: np.ndarray, context: DDContext, num_qubits: int | None = None
    ) -> "MatrixDD":
        """Build a diagram from a dense matrix."""
        matrix = np.asarray(matrix, dtype=complex)
        n = check_power_of_two(matrix.shape[0], name="matrix dimension")
        if matrix.shape[0] != matrix.shape[1]:
            raise ValidationError("MatrixDD requires a square matrix")
        if num_qubits is not None and num_qubits != n:
            raise ValidationError(f"matrix acts on {n} qubits, declared {num_qubits}")
        edge = cls._build(matrix, 0, n, context)
        return cls(n, edge, context)

    @classmethod
    def _build(cls, block: np.ndarray, level: int, num_qubits: int, context: DDContext) -> DDEdge:
        if level == num_qubits:
            return DDEdge(complex(block.reshape(())), TERMINAL)
        half = block.shape[0] // 2
        children = []
        for row_bit in (0, 1):
            for col_bit in (0, 1):
                sub = block[row_bit * half:(row_bit + 1) * half, col_bit * half:(col_bit + 1) * half]
                children.append(cls._build(sub, level + 1, num_qubits, context))
        return context.unique.get_node(level, tuple(children))

    @classmethod
    def identity(cls, num_qubits: int, context: DDContext) -> "MatrixDD":
        """The identity matrix as a diagram (linear-size construction)."""
        edge = DDEdge(1.0, TERMINAL)
        for level in range(num_qubits - 1, -1, -1):
            zero = DDEdge(0.0, TERMINAL)
            edge = context.unique.get_node(level, (edge, zero, zero, DDEdge(edge.weight, edge.node)))
        return cls(num_qubits, edge, context)

    @classmethod
    def from_gate(
        cls,
        matrix: np.ndarray,
        qubits: Sequence[int],
        num_qubits: int,
        context: DDContext,
    ) -> "MatrixDD":
        """Embed a ``k``-qubit gate acting on ``qubits`` into an ``n``-qubit diagram.

        The construction never materialises the ``2**n`` dense matrix: levels
        outside ``qubits`` branch diagonally (identity structure), levels
        inside ``qubits`` branch into the corresponding sub-blocks of the gate.
        """
        matrix = np.asarray(matrix, dtype=complex)
        k = check_power_of_two(matrix.shape[0], name="gate dimension")
        qubits = [int(q) for q in qubits]
        if len(qubits) != k:
            raise ValidationError("gate arity does not match the qubit list")
        if len(set(qubits)) != k:
            raise ValidationError("duplicate qubits in gate embedding")
        for q in qubits:
            if not 0 <= q < num_qubits:
                raise ValidationError(f"qubit {q} out of range")

        # Reorder the gate's qubits so they appear in increasing global order.
        order = np.argsort(qubits)
        sorted_qubits = [qubits[i] for i in order]
        tensor = matrix.reshape([2] * (2 * k))
        perm = list(order) + [k + int(i) for i in order]
        tensor = np.transpose(tensor, perm)
        sorted_matrix = tensor.reshape(2**k, 2**k)

        gate_level_of = {q: i for i, q in enumerate(sorted_qubits)}

        def build(level: int, block: np.ndarray) -> DDEdge:
            if level == num_qubits:
                return DDEdge(complex(block.reshape(())), TERMINAL)
            if level in gate_level_of:
                half = block.shape[0] // 2
                children = []
                for row_bit in (0, 1):
                    for col_bit in (0, 1):
                        sub = block[
                            row_bit * half:(row_bit + 1) * half,
                            col_bit * half:(col_bit + 1) * half,
                        ]
                        children.append(build(level + 1, sub))
                return context.unique.get_node(level, tuple(children))
            child = build(level + 1, block)
            zero = DDEdge(0.0, TERMINAL)
            return context.unique.get_node(
                level, (child, zero, zero, DDEdge(child.weight, child.node))
            )

        return cls(num_qubits, build(0, sorted_matrix), context)

    # ------------------------------------------------------------------
    # Conversion and inspection
    # ------------------------------------------------------------------
    def to_matrix(self) -> np.ndarray:
        """Densify the diagram (small qubit counts only)."""
        if self.num_qubits > 12:
            raise ValidationError("refusing to densify a diagram with more than 12 qubits")

        def expand(edge: DDEdge, level: int) -> np.ndarray:
            if level == self.num_qubits:
                return np.array([[edge.weight]], dtype=complex)
            if edge.node.is_terminal:
                size = 2 ** (self.num_qubits - level)
                return np.zeros((size, size), dtype=complex) if edge.is_zero() else np.full(
                    (size, size), np.nan
                )
            blocks = [expand(child, level + 1) for child in edge.node.edges]
            top = np.hstack([blocks[0], blocks[1]])
            bottom = np.hstack([blocks[2], blocks[3]])
            return edge.weight * np.vstack([top, bottom])

        if self.edge.is_zero():
            dim = 2**self.num_qubits
            return np.zeros((dim, dim), dtype=complex)
        if self.edge.node.is_terminal:
            # A terminal root with non-zero weight means a 0-qubit scalar; for
            # n qubits it can only arise from the zero matrix handled above.
            raise ValidationError("malformed diagram: non-zero terminal root")
        return expand(self.edge, 0)

    def node_count(self) -> int:
        """Number of distinct nodes reachable from the root (diagram size)."""
        seen: set[int] = set()

        def walk(node: DDNode) -> None:
            if node.is_terminal or id(node) in seen:
                return
            seen.add(id(node))
            for child in node.edges:
                walk(child.node)

        walk(self.edge.node)
        return len(seen) + 1  # + terminal

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "MatrixDD") -> None:
        if other.num_qubits != self.num_qubits or other.context is not self.context:
            raise ValidationError("diagrams must share the qubit count and DD context")

    def scale(self, factor: complex) -> "MatrixDD":
        """Return ``factor * self``."""
        return MatrixDD(
            self.num_qubits, DDEdge(self.edge.weight * factor, self.edge.node), self.context
        )

    def add(self, other: "MatrixDD") -> "MatrixDD":
        """Return ``self + other``."""
        self._check_compatible(other)
        edge = self._add_edges(self.edge, other.edge, 0)
        return MatrixDD(self.num_qubits, edge, self.context)

    def _add_edges(self, a: DDEdge, b: DDEdge, level: int) -> DDEdge:
        if a.is_zero():
            return DDEdge(b.weight, b.node)
        if b.is_zero():
            return DDEdge(a.weight, a.node)
        if level == self.num_qubits:
            return DDEdge(a.weight + b.weight, TERMINAL)
        key = (
            id(a.node), id(b.node),
            _round_key(a.weight), _round_key(b.weight),
            level, "add",
        )
        cached = self.context.add_cache.get(key)
        if cached is not None:
            return DDEdge(cached[0], cached[1])
        children = tuple(
            self._add_edges(
                DDEdge(a.weight * child_a.weight, child_a.node),
                DDEdge(b.weight * child_b.weight, child_b.node),
                level + 1,
            )
            for child_a, child_b in zip(a.node.edges, b.node.edges)
        )
        result = self.context.unique.get_node(level, children)
        self.context.add_cache[key] = (result.weight, result.node)
        return result

    def multiply(self, other: "MatrixDD") -> "MatrixDD":
        """Return the matrix product ``self @ other``."""
        self._check_compatible(other)
        edge = self._multiply_edges(self.edge, other.edge, 0)
        return MatrixDD(self.num_qubits, edge, self.context)

    def _multiply_edges(self, a: DDEdge, b: DDEdge, level: int) -> DDEdge:
        if a.is_zero() or b.is_zero():
            return DDEdge(0.0, TERMINAL)
        if level == self.num_qubits:
            return DDEdge(a.weight * b.weight, TERMINAL)
        key = (id(a.node), id(b.node), level, "mul")
        cached = self.context.mul_cache.get(key)
        if cached is not None:
            return DDEdge(cached[0] * a.weight * b.weight, cached[1])
        # Children of the product: C[i][j] = Σ_k A[i][k] B[k][j].
        children = []
        for row_bit in (0, 1):
            for col_bit in (0, 1):
                acc = DDEdge(0.0, TERMINAL)
                for k in (0, 1):
                    left = a.node.edges[2 * row_bit + k]
                    right = b.node.edges[2 * k + col_bit]
                    term = self._multiply_edges(left, right, level + 1)
                    acc = self._add_edges(acc, term, level + 1)
                children.append(acc)
        result = self.context.unique.get_node(level, tuple(children))
        self.context.mul_cache[key] = (result.weight, result.node)
        return DDEdge(result.weight * a.weight * b.weight, result.node)

    def adjoint(self) -> "MatrixDD":
        """Return the conjugate transpose."""
        cache: Dict[int, DDEdge] = {}

        def walk(node: DDNode, level: int) -> DDEdge:
            if node.is_terminal:
                return DDEdge(1.0, TERMINAL)
            cached = cache.get(id(node))
            if cached is not None:
                return cached
            # Transpose swaps the (0,1) and (1,0) children; conjugate weights.
            order = (0, 2, 1, 3)
            children = []
            for idx in order:
                child = node.edges[idx]
                sub = walk(child.node, level + 1)
                children.append(DDEdge(np.conj(child.weight) * sub.weight, sub.node))
            edge = self.context.unique.get_node(level, tuple(children))
            cache[id(node)] = edge
            return edge

        if self.edge.node.is_terminal:
            return MatrixDD(self.num_qubits, DDEdge(np.conj(self.edge.weight), TERMINAL), self.context)
        inner = walk(self.edge.node, 0)
        return MatrixDD(
            self.num_qubits,
            DDEdge(np.conj(self.edge.weight) * inner.weight, inner.node),
            self.context,
        )

    def trace(self) -> complex:
        """Return the matrix trace."""
        cache: Dict[int, complex] = {}

        def walk(node: DDNode, level: int) -> complex:
            if level == self.num_qubits:
                return 1.0 + 0.0j
            cached = cache.get(id(node))
            if cached is not None:
                return cached
            total = 0.0 + 0.0j
            for bit in (0, 1):
                child = node.edges[3 * bit]  # (0,0) and (1,1) children
                if not child.is_zero():
                    total += child.weight * walk(child.node, level + 1)
            cache[id(node)] = total
            return total

        if self.edge.is_zero():
            return 0.0 + 0.0j
        return complex(self.edge.weight * walk(self.edge.node, 0))
