"""Matrix-product-density-operator (MPDO) noisy simulator.

The paper's related-work section lists MPO/MPDO simulation (its references
[21]-[23]) as the other family of SVD-truncation methods for noisy circuits:
instead of truncating the *noise tensors* (the paper's approach), the MPDO
method represents the density operator as a one-dimensional tensor train and
truncates the *bond dimension* after every two-qubit gate.

This implementation provides that baseline so the extension benchmarks can
contrast the two truncation axes:

* site tensors have shape ``(left_bond, ket_phys, bra_phys, right_bond)``;
* 1-qubit gates and 1-qubit Kraus channels are applied locally (channels via
  the superoperator acting on the ``(ket, bra)`` pair — they never increase
  the bond dimension);
* 2-qubit gates act on adjacent sites through an SVD split with optional
  truncation; non-adjacent gates are routed with SWAPs;
* fidelities ``⟨v| rho |v⟩`` and local expectation values are computed by
  contracting the chain with product-state boundaries.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.circuits.circuit import Circuit
from repro.circuits import gates as glib
from repro.tensornetwork.circuit_to_tn import StateLike, resolve_product_state
from repro.utils.validation import ValidationError

from repro.xp import declare_seam
from repro.xp import host as np

declare_seam(__name__, mode="host")

__all__ = ["MatrixProductDensityOperator", "MPDOSimulator"]


class MatrixProductDensityOperator:
    """A density operator in tensor-train form."""

    def __init__(self, tensors: Sequence[np.ndarray]) -> None:
        if not tensors:
            raise ValidationError("an MPDO needs at least one site tensor")
        self.tensors: List[np.ndarray] = [np.asarray(t, dtype=complex) for t in tensors]
        for i, tensor in enumerate(self.tensors):
            if tensor.ndim != 4 or tensor.shape[1] != 2 or tensor.shape[2] != 2:
                raise ValidationError(
                    f"site tensor {i} must have shape (left, 2, 2, right), got {tensor.shape}"
                )
        if self.tensors[0].shape[0] != 1 or self.tensors[-1].shape[3] != 1:
            raise ValidationError("boundary bond dimensions must be 1")

    # ------------------------------------------------------------------
    @classmethod
    def from_product_state(cls, factors: Sequence[np.ndarray]) -> "MatrixProductDensityOperator":
        """Build ``⊗_i |f_i⟩⟨f_i|`` with bond dimension 1."""
        tensors = []
        for factor in factors:
            vec = np.asarray(factor, dtype=complex).ravel()
            if vec.size != 2:
                raise ValidationError("product-state factors must be single-qubit vectors")
            tensors.append(np.outer(vec, vec.conj()).reshape(1, 2, 2, 1))
        return cls(tensors)

    @classmethod
    def zero_state(cls, num_qubits: int) -> "MatrixProductDensityOperator":
        """The ``|0…0⟩⟨0…0|`` MPDO."""
        return cls.from_product_state([np.array([1.0, 0.0])] * num_qubits)

    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Number of sites."""
        return len(self.tensors)

    def bond_dimensions(self) -> List[int]:
        """Bond dimensions between consecutive sites."""
        return [tensor.shape[3] for tensor in self.tensors[:-1]]

    def max_bond_dimension(self) -> int:
        """Largest internal bond dimension."""
        dims = self.bond_dimensions()
        return max(dims) if dims else 1

    def trace(self) -> complex:
        """``tr(rho)`` (should stay 1 up to truncation error)."""
        env = np.array([[1.0 + 0.0j]]).reshape(1)
        for tensor in self.tensors:
            # Contract ket and bra physical indices together.
            traced = np.einsum("apqb->ab", tensor * np.eye(2)[None, :, :, None])
            env = env @ traced
        return complex(env[0])

    def to_matrix(self) -> np.ndarray:
        """Dense density matrix (small registers only)."""
        if self.num_qubits > 10:
            raise ValidationError("refusing to densify an MPDO with more than 10 qubits")
        result = np.array([1.0 + 0.0j]).reshape(1, 1, 1)  # (row, col, bond)
        for tensor in self.tensors:
            result = np.einsum("rcb,bpqd->rpcqd", result, tensor)
            r, p, c, q, d = result.shape
            result = result.reshape(r * p, c * q, d)
        return result.reshape(result.shape[0], result.shape[1])

    def fidelity(self, output_factors: Sequence[np.ndarray]) -> float:
        """``⟨v| rho |v⟩`` for a product state ``|v⟩ = ⊗_i |v_i⟩``."""
        if len(output_factors) != self.num_qubits:
            raise ValidationError("output state has the wrong number of factors")
        env = np.array([1.0 + 0.0j])
        for tensor, factor in zip(self.tensors, output_factors):
            vec = np.asarray(factor, dtype=complex).ravel()
            local = np.einsum("p,apqb,q->ab", vec.conj(), tensor, vec)
            env = env @ local
        return float(np.real(env[0]))

    def expectation(self, operators: Dict[int, np.ndarray]) -> float:
        """``tr(O rho)`` for a product of single-qubit operators ``O = ⊗ O_i``."""
        env = np.array([1.0 + 0.0j])
        for site, tensor in enumerate(self.tensors):
            operator = np.asarray(operators.get(site, np.eye(2)), dtype=complex)
            local = np.einsum("qp,apqb->ab", operator, tensor)
            env = env @ local
        return float(np.real(env[0]))

    def copy(self) -> "MatrixProductDensityOperator":
        """Deep copy."""
        return MatrixProductDensityOperator([t.copy() for t in self.tensors])

    # ------------------------------------------------------------------
    # Local operations
    # ------------------------------------------------------------------
    def apply_single_qubit_gate(self, matrix: np.ndarray, site: int) -> None:
        """Apply ``U · U†`` on one site."""
        u = np.asarray(matrix, dtype=complex)
        self.tensors[site] = np.einsum("rp,apqb,sq->arsb", u, self.tensors[site], u.conj())

    def apply_single_qubit_channel(self, kraus_operators: Sequence[np.ndarray], site: int) -> None:
        """Apply a single-qubit Kraus channel on one site (bond dimension unchanged)."""
        tensor = self.tensors[site]
        result = np.zeros_like(tensor)
        for op in kraus_operators:
            op = np.asarray(op, dtype=complex)
            result = result + np.einsum("rp,apqb,sq->arsb", op, tensor, op.conj())
        self.tensors[site] = result

    def apply_two_qubit_gate(
        self,
        matrix: np.ndarray,
        site: int,
        max_bond_dim: int | None = None,
        truncation_threshold: float = 0.0,
    ) -> float:
        """Apply ``U · U†`` on adjacent sites ``(site, site+1)`` with SVD truncation.

        Returns the discarded squared singular weight.
        """
        if site < 0 or site + 1 >= self.num_qubits:
            raise ValidationError(f"two-qubit gate site {site} out of range")
        u = np.asarray(matrix, dtype=complex).reshape(2, 2, 2, 2)
        left = self.tensors[site]
        right = self.tensors[site + 1]
        # Combined two-site tensor with axes (a, ket0, bra0, ket1, bra1, f).
        theta = np.einsum("apqb,bcdf->apqcdf", left, right)
        # Apply U on the ket indices (axes p=ket0, c=ket1) ...
        theta = np.einsum("rspc,apqcdf->arsqdf", u, theta)
        # ... and U* on the bra indices (axes q=bra0, d=bra1); axes are now
        # (a, ket0', ket1', bra0', bra1', f).
        theta = np.einsum("tuqd,arsqdf->arstuf", u.conj(), theta)
        # Regroup into site-major order (a, ket0', bra0', ket1', bra1', f).
        theta = np.transpose(theta, (0, 1, 3, 2, 4, 5))
        dl = theta.shape[0]
        dr = theta.shape[5]
        merged = theta.reshape(dl * 4, 4 * dr)
        left_u, singular, right_v = np.linalg.svd(merged, full_matrices=False)

        keep = np.ones(len(singular), dtype=bool)
        if truncation_threshold > 0 and singular.size:
            keep &= singular > truncation_threshold * singular[0]
        if max_bond_dim is not None:
            keep &= np.arange(len(singular)) < max_bond_dim
        if not np.any(keep):
            keep[0] = True
        discarded = float(np.sum(singular[~keep] ** 2))

        left_u = left_u[:, keep]
        singular = singular[keep]
        right_v = right_v[keep, :]
        new_dim = len(singular)
        self.tensors[site] = left_u.reshape(dl, 2, 2, new_dim)
        self.tensors[site + 1] = (np.diag(singular) @ right_v).reshape(new_dim, 2, 2, dr)
        return discarded

    def apply_swap(self, site: int, max_bond_dim: int | None = None) -> float:
        """Swap neighbouring sites."""
        return self.apply_two_qubit_gate(glib.SWAP().matrix, site, max_bond_dim=max_bond_dim)


class MPDOSimulator:
    """Noisy circuit simulation on a matrix product density operator."""

    def __init__(
        self,
        max_bond_dim: int | None = None,
        truncation_threshold: float = 1e-12,
    ) -> None:
        self.max_bond_dim = max_bond_dim
        self.truncation_threshold = truncation_threshold
        self.total_discarded_weight = 0.0

    # ------------------------------------------------------------------
    def run(
        self,
        circuit: Circuit,
        initial_state: MatrixProductDensityOperator | None = None,
    ) -> MatrixProductDensityOperator:
        """Simulate ``circuit`` (gates and 1-qubit noise channels) and return the MPDO."""
        mpdo = (
            MatrixProductDensityOperator.zero_state(circuit.num_qubits)
            if initial_state is None
            else initial_state.copy()
        )
        self.total_discarded_weight = 0.0
        for inst in circuit:
            if inst.is_noise:
                if len(inst.qubits) != 1:
                    raise ValidationError("MPDOSimulator supports single-qubit noise channels only")
                mpdo.apply_single_qubit_channel(inst.operation.kraus_operators, inst.qubits[0])
                continue
            matrix = inst.operation.matrix
            if len(inst.qubits) == 1:
                mpdo.apply_single_qubit_gate(matrix, inst.qubits[0])
            elif len(inst.qubits) == 2:
                self._apply_two_qubit_routed(mpdo, matrix, inst.qubits)
            else:
                raise ValidationError("MPDOSimulator supports 1- and 2-qubit gates only")
        return mpdo

    def _apply_two_qubit_routed(
        self,
        mpdo: MatrixProductDensityOperator,
        matrix: np.ndarray,
        qubits: Sequence[int],
    ) -> None:
        a, b = qubits
        flipped = False
        if a > b:
            a, b = b, a
            flipped = True
        for site in range(b - 1, a, -1):
            self.total_discarded_weight += mpdo.apply_swap(site, self.max_bond_dim)
        gate = matrix
        if flipped:
            gate = matrix.reshape(2, 2, 2, 2).transpose(1, 0, 3, 2).reshape(4, 4)
        self.total_discarded_weight += mpdo.apply_two_qubit_gate(
            gate, a, self.max_bond_dim, self.truncation_threshold
        )
        for site in range(a + 1, b):
            self.total_discarded_weight += mpdo.apply_swap(site, self.max_bond_dim)

    # ------------------------------------------------------------------
    def fidelity(
        self,
        circuit: Circuit,
        output_state: StateLike = None,
        initial_state: MatrixProductDensityOperator | None = None,
    ) -> float:
        """Return ``⟨v| E_N(|ψ⟩⟨ψ|) |v⟩`` for a *product* output state ``|v⟩``."""
        n = circuit.num_qubits
        output_state = "0" * n if output_state is None else output_state
        resolved = resolve_product_state(output_state, n)
        if not isinstance(resolved, list):
            raise ValidationError("MPDOSimulator.fidelity needs a product output state")
        mpdo = self.run(circuit, initial_state)
        return mpdo.fidelity(resolved)
