"""Matrix-multiplication (MM-based) density-matrix simulator.

This is the "MM-based method" baseline of the paper's Table II: states, gates
and noises are dense matrices and the simulation is executed by matrix
multiplications ``rho → E_k rho E_k†``.  It is exact but scales as ``4**n``
in memory, which is why the paper reports MO (memory out) for it beyond a
handful of qubits — the same behaviour this implementation exhibits through
its ``max_qubits`` guard.

Dense math dispatches through an :class:`repro.xp.ArrayNamespace`
(``device=`` / ``dtype=`` on the constructor, or the ``xp=`` argument of the
module functions); the default host numpy namespace is bit-identical to the
pre-seam implementation, and public methods always return host arrays.
"""

from __future__ import annotations

from typing import Sequence

from repro.circuits.circuit import Circuit
from repro.utils.linalg import dagger, is_density_matrix, projector
from repro.utils.states import zero_state
from repro.utils.validation import ValidationError, check_square, check_statevector
from repro.xp import declare_seam, get_namespace
from repro.xp import host as np

declare_seam(__name__, mode="dispatch")

__all__ = ["apply_matrix_to_density", "apply_channel_to_density", "DensityMatrixSimulator"]

#: Default qubit cap: a 12-qubit density matrix already holds 16M complex entries.
MAX_DENSITY_QUBITS = 12


def _reshape_apply(rho, matrix, qubits: Sequence[int], num_qubits: int, side: str, xp=None):
    """Apply ``matrix`` to the row (side="left") or column (side="right") indices of ``rho``."""
    if xp is None:
        xp = get_namespace("cpu")
    qubits = [int(q) for q in qubits]
    k = len(qubits)
    tensor = xp.reshape(rho, [2] * (2 * num_qubits))
    gate = xp.reshape(xp.asarray(matrix), [2] * (2 * k))
    if side == "left":
        axes = qubits
    else:
        # Right multiplication by matrix^T on the column indices.
        axes = [q + num_qubits for q in qubits]
    tensor = xp.tensordot(gate, tensor, axes=(list(range(k, 2 * k)), axes))
    order = list(axes) + [ax for ax in range(2 * num_qubits) if ax not in axes]
    tensor = xp.transpose(tensor, np.argsort(order))
    return xp.reshape(tensor, rho.shape)


def apply_matrix_to_density(rho, matrix, qubits: Sequence[int], num_qubits: int, xp=None):
    """Return ``M rho M†`` with ``M`` acting only on ``qubits``."""
    if xp is None:
        xp = get_namespace("cpu")
    matrix = np.asarray(matrix, dtype=complex).astype(xp.complex_dtype, copy=False)
    left = _reshape_apply(rho, matrix, qubits, num_qubits, side="left", xp=xp)
    return _reshape_apply(left, matrix.conj(), qubits, num_qubits, side="right", xp=xp)


def apply_channel_to_density(rho, kraus_operators, qubits: Sequence[int], num_qubits: int, xp=None):
    """Return ``Σ_k E_k rho E_k†`` with the channel acting only on ``qubits``."""
    if xp is None:
        xp = get_namespace("cpu")
    result = xp.zeros(rho.shape, dtype=rho.dtype)
    for op in kraus_operators:
        result = xp.add(result, apply_matrix_to_density(rho, op, qubits, num_qubits, xp=xp))
    return result


class DensityMatrixSimulator:
    """Exact noisy simulation with dense density matrices (MM-based baseline)."""

    def __init__(
        self,
        max_qubits: int = MAX_DENSITY_QUBITS,
        device: str | None = None,
        dtype=None,
    ) -> None:
        self.max_qubits = int(max_qubits)
        self.device = device
        self._xp = get_namespace(device or "cpu", dtype=dtype)

    def _check(self, circuit: Circuit) -> None:
        if circuit.num_qubits > self.max_qubits:
            raise MemoryError(
                f"density-matrix simulation limited to {self.max_qubits} qubits "
                f"(circuit has {circuit.num_qubits}); this mirrors the MO entries of Table II"
            )

    # ------------------------------------------------------------------
    def run(
        self,
        circuit: Circuit,
        initial_state: np.ndarray | None = None,
    ) -> np.ndarray:
        """Return the output density matrix ``E_N(rho_0)``.

        ``initial_state`` may be a statevector or a density matrix; the
        default is ``|0…0⟩⟨0…0|``.
        """
        self._check(circuit)
        n = circuit.num_qubits
        if initial_state is None:
            rho = projector(zero_state(n))
        else:
            arr = np.asarray(initial_state, dtype=complex)
            if arr.ndim == 1:
                rho = projector(check_statevector(arr))
            else:
                rho = check_square(arr, name="initial density matrix")
        if rho.shape[0] != 2**n:
            raise ValidationError(
                f"initial state dimension {rho.shape[0]} does not match {n} qubits"
            )

        xp = self._xp
        device_rho = xp.asarray(rho.astype(xp.complex_dtype, copy=False))
        for inst in circuit:
            if inst.is_gate:
                device_rho = apply_matrix_to_density(
                    device_rho, inst.operation.matrix, inst.qubits, n, xp=xp
                )
            else:
                device_rho = apply_channel_to_density(
                    device_rho, inst.operation.kraus_operators, inst.qubits, n, xp=xp
                )
        return xp.to_host(device_rho)

    def fidelity(
        self,
        circuit: Circuit,
        output_state: np.ndarray,
        initial_state: np.ndarray | None = None,
    ) -> float:
        """Return ``⟨v| E_N(rho_0) |v⟩`` — the paper's noisy-simulation quantity."""
        rho = self.run(circuit, initial_state)
        v = check_statevector(output_state)
        if v.size != rho.shape[0]:
            raise ValidationError("output state dimension does not match the circuit")
        return float(np.real(np.vdot(v, rho @ v)))

    def matrix_element(
        self,
        circuit: Circuit,
        bra: np.ndarray,
        ket: np.ndarray,
        initial_state: np.ndarray | None = None,
    ) -> complex:
        """Return the density-matrix element ``⟨x| E_N(rho_0) |y⟩``."""
        rho = self.run(circuit, initial_state)
        x = check_statevector(bra)
        y = check_statevector(ket)
        return complex(np.vdot(x, rho @ y))

    def validate_output(self, circuit: Circuit, initial_state: np.ndarray | None = None) -> bool:
        """Check that the simulated output is a valid density matrix (used in tests)."""
        return is_density_matrix(self.run(circuit, initial_state))
