"""Matrix-multiplication (MM-based) density-matrix simulator.

This is the "MM-based method" baseline of the paper's Table II: states, gates
and noises are dense matrices and the simulation is executed by matrix
multiplications ``rho → E_k rho E_k†``.  It is exact but scales as ``4**n``
in memory, which is why the paper reports MO (memory out) for it beyond a
handful of qubits — the same behaviour this implementation exhibits through
its ``max_qubits`` guard.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.circuits.circuit import Circuit
from repro.utils.linalg import dagger, is_density_matrix, projector
from repro.utils.states import zero_state
from repro.utils.validation import ValidationError, check_square, check_statevector

__all__ = ["apply_matrix_to_density", "apply_channel_to_density", "DensityMatrixSimulator"]

#: Default qubit cap: a 12-qubit density matrix already holds 16M complex entries.
MAX_DENSITY_QUBITS = 12


def _reshape_apply(rho: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int, side: str) -> np.ndarray:
    """Apply ``matrix`` to the row (side="left") or column (side="right") indices of ``rho``."""
    qubits = [int(q) for q in qubits]
    k = len(qubits)
    tensor = rho.reshape([2] * (2 * num_qubits))
    gate = matrix.reshape([2] * (2 * k))
    if side == "left":
        axes = qubits
        tensor = np.tensordot(gate, tensor, axes=(list(range(k, 2 * k)), axes))
        order = list(axes) + [ax for ax in range(2 * num_qubits) if ax not in axes]
        tensor = np.transpose(tensor, np.argsort(order))
    else:
        axes = [q + num_qubits for q in qubits]
        # Right multiplication by matrix^T on the column indices.
        tensor = np.tensordot(gate, tensor, axes=(list(range(k, 2 * k)), axes))
        order = list(axes) + [ax for ax in range(2 * num_qubits) if ax not in axes]
        tensor = np.transpose(tensor, np.argsort(order))
    return tensor.reshape(rho.shape)


def apply_matrix_to_density(
    rho: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Return ``M rho M†`` with ``M`` acting only on ``qubits``."""
    matrix = np.asarray(matrix, dtype=complex)
    left = _reshape_apply(rho, matrix, qubits, num_qubits, side="left")
    return _reshape_apply(left, matrix.conj(), qubits, num_qubits, side="right")


def apply_channel_to_density(
    rho: np.ndarray, kraus_operators: Sequence[np.ndarray], qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Return ``Σ_k E_k rho E_k†`` with the channel acting only on ``qubits``."""
    result = np.zeros_like(rho)
    for op in kraus_operators:
        result = result + apply_matrix_to_density(rho, op, qubits, num_qubits)
    return result


class DensityMatrixSimulator:
    """Exact noisy simulation with dense density matrices (MM-based baseline)."""

    def __init__(self, max_qubits: int = MAX_DENSITY_QUBITS) -> None:
        self.max_qubits = int(max_qubits)

    def _check(self, circuit: Circuit) -> None:
        if circuit.num_qubits > self.max_qubits:
            raise MemoryError(
                f"density-matrix simulation limited to {self.max_qubits} qubits "
                f"(circuit has {circuit.num_qubits}); this mirrors the MO entries of Table II"
            )

    # ------------------------------------------------------------------
    def run(
        self,
        circuit: Circuit,
        initial_state: np.ndarray | None = None,
    ) -> np.ndarray:
        """Return the output density matrix ``E_N(rho_0)``.

        ``initial_state`` may be a statevector or a density matrix; the
        default is ``|0…0⟩⟨0…0|``.
        """
        self._check(circuit)
        n = circuit.num_qubits
        if initial_state is None:
            rho = projector(zero_state(n))
        else:
            arr = np.asarray(initial_state, dtype=complex)
            if arr.ndim == 1:
                rho = projector(check_statevector(arr))
            else:
                rho = check_square(arr, name="initial density matrix")
        if rho.shape[0] != 2**n:
            raise ValidationError(
                f"initial state dimension {rho.shape[0]} does not match {n} qubits"
            )

        for inst in circuit:
            if inst.is_gate:
                rho = apply_matrix_to_density(rho, inst.operation.matrix, inst.qubits, n)
            else:
                rho = apply_channel_to_density(
                    rho, inst.operation.kraus_operators, inst.qubits, n
                )
        return rho

    def fidelity(
        self,
        circuit: Circuit,
        output_state: np.ndarray,
        initial_state: np.ndarray | None = None,
    ) -> float:
        """Return ``⟨v| E_N(rho_0) |v⟩`` — the paper's noisy-simulation quantity."""
        rho = self.run(circuit, initial_state)
        v = check_statevector(output_state)
        if v.size != rho.shape[0]:
            raise ValidationError("output state dimension does not match the circuit")
        return float(np.real(np.vdot(v, rho @ v)))

    def matrix_element(
        self,
        circuit: Circuit,
        bra: np.ndarray,
        ket: np.ndarray,
        initial_state: np.ndarray | None = None,
    ) -> complex:
        """Return the density-matrix element ``⟨x| E_N(rho_0) |y⟩``."""
        rho = self.run(circuit, initial_state)
        x = check_statevector(bra)
        y = check_statevector(ket)
        return complex(np.vdot(x, rho @ y))

    def validate_output(self, circuit: Circuit, initial_state: np.ndarray | None = None) -> bool:
        """Check that the simulated output is a valid density matrix (used in tests)."""
        return is_density_matrix(self.run(circuit, initial_state))
