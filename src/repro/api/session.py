"""The session layer: one typed entry point for every simulation.

:class:`Session` is the front door the CLI, the sweep subsystem, the
benchmark harness and the examples all share.  It

* resolves backends through the registry (names, aliases, or ``"auto"``) and
  checks their capability flags against the circuit *before* dispatch;
* owns the shared :class:`~concurrent.futures.ProcessPoolExecutor` the
  batched trajectory engine distributes over, so many tasks amortise one
  pool start-up;
* resolves RNG seeds eagerly (session seed → per-submission derived seed) so
  every result carries the seed that actually drove it;
* splits every dispatch into **compile** (noise binding, backend resolution,
  boundary-state materialisation, the backend's plan search) and **execute**:
  :meth:`Session.compile` returns an immutable
  :class:`~repro.api.Executable` whose ``run()``/``submit()`` pay only the
  execution cost, and a bounded LRU plan cache keyed by
  :func:`~repro.api.executable.plan_cache_key` makes the blocking
  :meth:`Session.run` and non-blocking :meth:`Session.submit` wrappers hit
  compiled plans transparently on repeated configurations
  (:meth:`Session.cache_stats` exposes the hit/miss/eviction counters);
* returns one unified :class:`~repro.api.SimulationResult` from every path.

Example — one blocking call and a two-backend async batch::

    >>> from repro.api import Session
    >>> from repro.circuits.library import ghz_circuit
    >>> with Session(seed=7) as session:
    ...     blocking = session.run(ghz_circuit(2), backend="statevector")
    ...     futures = [session.submit(ghz_circuit(2), backend=name)
    ...                for name in ("statevector", "tn")]
    ...     batch = [future.result() for future in futures]
    >>> round(blocking.value, 6)
    0.5
    >>> [round(result.value, 6) for result in batch]
    [0.5, 0.5]

:func:`simulate` wraps a one-shot session for the common single-call case::

    >>> from repro.api import simulate
    >>> result = simulate(ghz_circuit(2), noise={"channel": "depolarizing",
    ...                                          "parameter": 0.01, "count": 2,
    ...                                          "seed": 1}, backend="tn")
    >>> result.backend, result.value < 1.0
    ('tn', True)
"""

from __future__ import annotations

import collections
import dataclasses
import hashlib
import os
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, Mapping

import numpy as np

from repro.api.executable import Executable, one_shot_result, plan_cache_key
from repro.api.noise import apply_noise
from repro.api.result import SimulationResult, task_config_hash
from repro.backends.base import SimulationBackend, SimulationTask
from repro.backends.registry import get_backend
from repro.circuits.circuit import Circuit
from repro.circuits.parameters import circuit_parameters, substitute
from repro.circuits.passes import PassConfig, run_passes
from repro.utils.validation import ValidationError
from repro.xp import default_device, get_namespace

__all__ = ["Session", "ideal_output_state", "simulate"]

#: Preference order of the ``backend="auto"`` resolution: the first backend
#: whose capability flags accept the circuit wins (exact backends first).
_AUTO_PREFERENCE = ("statevector", "tn")


def ideal_output_state(circuit: Circuit) -> np.ndarray:
    """Dense ideal output state ``U|0…0⟩`` of ``circuit`` with noise stripped.

    This is what ``output_state="ideal"`` resolves to: the fidelity then
    measures how much of the intended computation survives the noise.
    """
    from repro.simulators import StatevectorSimulator

    ideal = circuit.without_noise() if circuit.noise_count() else circuit
    return StatevectorSimulator().run(ideal)


def _derive_seed(*parts: object) -> int:
    """Deterministic 63-bit seed from string parts (stable across processes)."""
    digest = hashlib.sha256("\x1f".join(str(part) for part in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") % (2**63)


def _noise_needs_seed(noise: Any) -> bool:
    """True when a noise mapping would consume the task seed for injection."""
    return (
        isinstance(noise, Mapping)
        and noise.get("seed") is None
        and int(noise.get("count", 0) or 0) > 0
    )


class _PoolHandle:
    """Stable executor handle resolving to the session's *current* pool.

    Compiled tasks carry this handle instead of the raw
    :class:`~concurrent.futures.ProcessPoolExecutor`, so when a broken pool
    is discarded (:meth:`Session.reset_pool`) every existing
    :class:`~repro.api.Executable` transparently picks up the replacement on
    its next run — pool recovery never invalidates compiled plans.  When the
    session has no usable pool (pool-less environments), ``map`` degrades to
    the serial built-in, which is bit-identical because the engine's block
    seeding makes values independent of the work distribution.
    """

    __slots__ = ("_session",)

    def __init__(self, session: "Session") -> None:
        self._session = session

    def map(self, fn, *iterables):
        pool = self._session._shared_pool()
        if pool is None:
            return map(fn, *iterables)
        return pool.map(fn, *iterables)


class Session:
    """Shared-resource facade over the backend registry (see module docs).

    Parameters
    ----------
    workers:
        Default process count for the stochastic backends *and* the size of
        the session's shared process pool.  ``None`` leaves stochastic tasks
        in the engine's single-stream serial mode (the seed-compatible
        default); ``k >= 1`` selects the engine's seeded block mode, whose
        values are identical for every ``k``.
    max_parallel:
        Concurrent :meth:`submit` dispatches (default: CPU count, capped at 8).
    seed:
        Base seed for tasks that do not carry their own: submission ``i``
        of a stochastic task derives the stable seed ``(seed, i)``, so a
        session's batch is reproducible end-to-end.
    plan_cache_size:
        Capacity of the session's LRU cache of compiled backend plans
        (default 32 configurations; ``0`` disables plan caching, which is
        what the compile-amortisation benchmarks use as their uncached
        baseline).  :meth:`cache_stats` reports hits/misses/evictions.
    passes:
        Default optimizing-pass configuration applied during
        :meth:`compile` (``True`` = all passes, ``False`` = none, or a
        mapping / :class:`~repro.circuits.passes.PassConfig` of individual
        toggles; see :mod:`repro.circuits.passes`).  Overridable per call
        via the ``passes=`` argument of :meth:`compile`/:meth:`run`/
        :meth:`submit`.
    device:
        Default execution device for device-capable backends (see
        :mod:`repro.xp` and ``docs/xp.md``).  ``None`` reads the
        ``REPRO_DEVICE`` environment variable and falls back to ``"cpu"``.
        Validated eagerly: an unavailable device (``"cuda"`` without
        CuPy/torch) raises :class:`~repro.xp.DeviceUnavailableError` here
        rather than falling back silently.  The session default is *soft* —
        it is applied only to backends whose capabilities advertise
        ``supports_device``, so cpu-only backends keep working; a per-call
        ``device=`` (or ``SimulationTask.device``) is *hard* and makes
        cpu-only backends fail capability checking instead.
    """

    def __init__(
        self,
        workers: int | None = None,
        max_parallel: int | None = None,
        seed: int | None = None,
        plan_cache_size: int = 32,
        passes: Any = True,
        device: str | None = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValidationError("workers must be >= 1 (or None for serial mode)")
        if max_parallel is not None and max_parallel < 1:
            raise ValidationError("max_parallel must be >= 1")
        if plan_cache_size < 0:
            raise ValidationError("plan_cache_size must be >= 0")
        # Resolve the session-default device eagerly (DeviceUnavailableError
        # now, not at dispatch time); "auto"/env values resolve to a concrete
        # namespace, and a cpu resolution normalises back to None so cpu
        # sessions hash and plan-cache exactly as before devices existed.
        namespace = get_namespace(device if device is not None else default_device())
        self.device = None if namespace.device == "cpu" else namespace.device
        self.workers = workers
        self.seed = seed
        self.passes = PassConfig.resolve(passes)
        self._max_parallel = max_parallel or min(8, os.cpu_count() or 2)
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None
        self._pool_failed = False
        self._dispatcher: ThreadPoolExecutor | None = None
        self._submissions = 0
        self._closed = False
        # Ideal output states keyed by the *ideal* circuit's fingerprint, so a
        # batch of output_state="ideal" tasks over equivalent circuits (e.g. a
        # sweep re-binding the same noise per cell) simulates |v> once.
        # LRU-bounded so a long-lived service session streaming distinct
        # circuits cannot accumulate 2**n-sized states without limit.
        self._ideal_outputs: "collections.OrderedDict" = collections.OrderedDict()
        # Compiled backend plans keyed by plan_cache_key (LRU, bounded).
        self._plan_capacity = int(plan_cache_size)
        self._plans: "collections.OrderedDict[str, Any]" = collections.OrderedDict()
        self._plan_hits = 0
        self._plan_misses = 0
        self._plan_evictions = 0
        self._plan_coalesced = 0
        # In-flight compiles keyed by plan_cache_key: concurrent compiles of
        # one key deduplicate to a single plan search whose result (or error)
        # fans out to every waiter through the stored Future.
        self._inflight: Dict[str, Future] = {}
        self._pool_handle = _PoolHandle(self)
        self._pool_resets = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the session's pools and drop its caches; further dispatches raise.

        Compiled :class:`~repro.api.Executable` handles created by this
        session become unusable: their ``run()``/``submit()`` raise a
        :class:`~repro.utils.validation.ValidationError`.
        """
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
            dispatcher, self._dispatcher = self._dispatcher, None
            self._plans.clear()
            self._ideal_outputs.clear()
        if dispatcher is not None:
            dispatcher.shutdown(wait=True)
        if pool is not None:
            pool.shutdown(wait=True)

    def _check_open(self) -> None:
        if self._closed:
            raise ValidationError(
                "session is closed (compiled executables die with their session)"
            )

    # ------------------------------------------------------------------
    # Shared executors
    # ------------------------------------------------------------------
    def _shared_pool(self) -> ProcessPoolExecutor | None:
        """Lazily-created process pool (None when workers<=1 or unavailable)."""
        if self.workers is None or self.workers <= 1:
            return None
        with self._lock:
            if self._pool is None and not self._pool_failed and not self._closed:
                try:
                    self._pool = ProcessPoolExecutor(max_workers=self.workers)
                except (OSError, ValueError):  # pragma: no cover - pool-less envs
                    self._pool_failed = True
            return self._pool

    def reset_pool(self) -> bool:
        """Discard the session's process pool; the next pooled run recreates it.

        The recovery half of worker-pool fault tolerance: a
        :class:`~repro.backends.WorkerPoolError` means a worker process died
        and the ``ProcessPoolExecutor`` is permanently broken.  Dropping it
        here (the broken pool is shut down without waiting) lets every
        compiled :class:`~repro.api.Executable` retry against a fresh pool —
        their tasks hold an indirect handle, never the raw pool.  Returns
        True when there was a pool to discard.
        """
        with self._lock:
            pool, self._pool = self._pool, None
            self._pool_failed = False
            if pool is not None:
                self._pool_resets += 1
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        return pool is not None

    def _dispatch_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._dispatcher is None:
                self._dispatcher = ThreadPoolExecutor(
                    max_workers=self._max_parallel,
                    thread_name_prefix="repro-session",
                )
            return self._dispatcher

    # ------------------------------------------------------------------
    # Backend / task resolution
    # ------------------------------------------------------------------
    def backend(self, name: str = "auto", circuit: Circuit | None = None, **options) -> SimulationBackend:
        """Resolve ``name`` (a registry name, alias, or ``"auto"``) to an adapter."""
        if name == "auto":
            if circuit is None:
                raise ValidationError("backend='auto' needs a circuit to inspect")
            for candidate in _AUTO_PREFERENCE:
                backend = get_backend(candidate, **options)
                if backend.supports(circuit) is None:
                    return backend
            raise ValidationError(
                f"no auto backend accepts this circuit "
                f"({circuit.num_qubits} qubits, {circuit.noise_count()} noises)"
            )
        return get_backend(name, **options)

    def _build_task(
        self,
        *,
        task: SimulationTask | None,
        level: int | None,
        samples: int | None,
        seed: int | None,
        workers: int | None,
        input_state: Any,
        output_state: Any,
        keep_samples: bool,
        max_bond_dim: int | None,
        options: Mapping[str, Any] | None,
        device: str | None,
    ) -> SimulationTask:
        if task is not None:
            overrides = {
                "level": level, "samples": samples, "seed": seed,
                "input_state": input_state, "max_bond_dim": max_bond_dim,
                "options": options, "device": device,
            }
            conflicting = sorted(key for key, value in overrides.items() if value is not None)
            if conflicting or keep_samples:
                raise ValidationError(
                    "pass either a prepared task or per-field arguments, not both "
                    f"(got task plus {', '.join(conflicting) or 'keep_samples'})"
                )
            built = task
            if workers is not None:
                built = dataclasses.replace(built, workers=workers)
            if output_state is not None:
                built = dataclasses.replace(built, output_state=output_state)
        else:
            if samples is not None and samples <= 0:
                raise ValidationError("samples must be positive")
            if level is not None and level < 0:
                raise ValidationError("level must be non-negative")
            built = SimulationTask(
                input_state=input_state,
                output_state=output_state,
                num_samples=1000 if samples is None else int(samples),
                level=1 if level is None else int(level),
                seed=seed,
                workers=workers,
                keep_samples=keep_samples,
                max_bond_dim=max_bond_dim,
                options=dict(options or {}),
                device=device,
            )
        if built.workers is not None and built.workers < 1:
            raise ValidationError("workers must be >= 1 (or None for serial mode)")
        return built

    def _prepare(
        self,
        circuit: Circuit,
        backend_name: str,
        noise: Any,
        backend_options: Mapping[str, Any] | None,
        task: SimulationTask,
        passes: Any = None,
    ):
        """Resolve everything up front so submit() fails fast and runs pure."""
        self._check_open()
        with self._lock:
            index = self._submissions
            self._submissions += 1

        def submission_seed() -> int:
            """One seed per submission: session-derived, else freshly drawn."""
            if self.seed is not None:
                return _derive_seed(self.seed, "task", index)
            return int(np.random.default_rng().integers(2**63))

        # Noise injection consumes the task seed as its fallback; resolve it
        # *before* applying noise so the recorded seed is the one that placed
        # the noises and a replay with result.seed reproduces the run.
        if task.seed is None and _noise_needs_seed(noise):
            task = dataclasses.replace(task, seed=submission_seed())
        circuit = apply_noise(circuit, noise, seed=task.seed)
        if isinstance(task.output_state, str) and task.output_state == "ideal":
            if circuit_parameters(circuit):
                raise ValidationError(
                    "output_state='ideal' depends on the parameter values; "
                    "substitute() the binding into the circuit first (or pass "
                    "an explicit output state) instead of compiling unbound"
                )
            task = dataclasses.replace(task, output_state=self._ideal_output(circuit))
        backend = self.backend(backend_name, circuit, **dict(backend_options or {}))
        # Device resolution.  An explicit task device is *hard*: it must name
        # an available device (structured DeviceUnavailableError otherwise)
        # and cpu-only backends reject it below in check_supported().  The
        # session default is *soft*: applied only to device-capable backends.
        # Either way a cpu resolution normalises to device=None, keeping
        # config hashes and plan-cache keys identical to pre-device sessions.
        if task.device is not None:
            namespace = get_namespace(task.device)
            resolved_device = None if namespace.device == "cpu" else namespace.device
            if resolved_device != task.device:
                task = dataclasses.replace(task, device=resolved_device)
        elif self.device is not None and backend.capabilities.supports_device:
            task = dataclasses.replace(task, device=self.device)
        stochastic = backend.capabilities.stochastic
        if stochastic:
            if task.workers is None and self.workers is not None:
                task = dataclasses.replace(task, workers=self.workers)
            if task.seed is None:
                task = dataclasses.replace(task, seed=submission_seed())
            if (
                task.executor is None
                and task.workers is not None
                and task.workers > 1
            ):
                if self._shared_pool() is not None:
                    # The indirect handle, not the raw pool: reset_pool() then
                    # transparently re-routes every compiled executable.
                    task = dataclasses.replace(task, executor=self._pool_handle)
        # The optimizing passes run on the fully resolved circuit (noise
        # bound, boundaries known) and before capability checking, so the
        # backend validates what it will actually execute.
        pass_config = self.passes if passes is None else PassConfig.resolve(passes)
        circuit, pass_info = self._optimize(circuit, pass_config, backend, task)
        backend.check_supported(circuit, task)
        config_hash = task_config_hash(backend.name, task, backend_options)
        return backend, circuit, task, config_hash, pass_info

    def _optimize(self, circuit: Circuit, config: PassConfig, backend, task):
        """Run the optimizing pass pipeline; returns (circuit, pass report).

        The pipeline intersects the caller's config with the backend's
        :meth:`~repro.backends.SimulationBackend.pass_profile`; its wall-clock
        cost is reported separately from the backend's plan search
        (``describe()["passes"]["seconds"]`` vs ``compile_seconds``).
        """
        if not config.enabled():
            return circuit, {"config": config.to_dict(), "stats": None, "seconds": 0.0}
        n = circuit.num_qubits
        input_state = "0" * n if task.input_state is None else task.input_state
        output_state = "0" * n if task.output_state is None else task.output_state
        start = time.perf_counter()
        optimized, stats = run_passes(
            circuit,
            config,
            backend.pass_profile(),
            input_state=input_state,
            output_state=output_state,
        )
        seconds = time.perf_counter() - start
        return optimized, {
            "config": config.to_dict(),
            "stats": stats.to_dict(),
            "seconds": seconds,
        }

    #: Distinct circuits whose ideal output states a session keeps cached.
    _IDEAL_CACHE_SIZE = 8

    def _ideal_output(self, circuit: Circuit) -> np.ndarray:
        """Session-cached :func:`ideal_output_state` (one |v> per ideal circuit).

        Keyed by the noise-stripped circuit's content fingerprint, so
        equivalent circuits — e.g. a sweep re-binding the same noise model
        per cell, or the same circuit under different noise seeds — share one
        dense simulation.
        """
        ideal = circuit.without_noise() if circuit.noise_count() else circuit
        key = ideal.fingerprint()
        with self._lock:
            if key in self._ideal_outputs:
                self._ideal_outputs.move_to_end(key)
                return self._ideal_outputs[key]
        state = ideal_output_state(circuit)
        with self._lock:
            self._ideal_outputs[key] = state
            self._ideal_outputs.move_to_end(key)
            while len(self._ideal_outputs) > self._IDEAL_CACHE_SIZE:
                self._ideal_outputs.popitem(last=False)
        return state

    # ------------------------------------------------------------------
    # Compile / execute
    # ------------------------------------------------------------------
    def compile(
        self,
        circuit: Circuit,
        backend: str = "auto",
        *,
        noise: Any = None,
        task: SimulationTask | None = None,
        backend_options: Mapping[str, Any] | None = None,
        level: int | None = None,
        samples: int | None = None,
        seed: int | None = None,
        workers: int | None = None,
        input_state: Any = None,
        output_state: Any = None,
        keep_samples: bool = False,
        max_bond_dim: int | None = None,
        options: Mapping[str, Any] | None = None,
        passes: Any = None,
        device: str | None = None,
    ) -> Executable:
        """Perform all one-time work now; return an :class:`~repro.api.Executable`.

        Compilation binds the noise (using the resolved seed, so the noisy
        structure is fixed from here on), resolves the backend and checks its
        capabilities, materialises boundary states (``output_state="ideal"``
        becomes the dense ideal output), runs the optimizing pass pipeline
        (superoperator gate fusion, deterministic noise folding, boundary
        pruning — see :mod:`repro.circuits.passes`; ``passes=`` overrides
        the session default, and the report lands in
        ``Executable.describe()["passes"]``), resolves the RNG seed, and
        performs the backend's own plan search (contraction-schedule
        recording, trajectory-context preparation, noise SVD decompositions)
        — reusing a previously compiled plan from the session's LRU cache
        when an equivalent configuration was compiled before (see
        :func:`~repro.api.executable.plan_cache_key`; ``seed``, ``samples``
        and ``level`` do not fragment the cache, and the key covers the
        *optimized* circuit, so pass-on and pass-off compiles of one circuit
        never collide).

        The returned handle executes any number of times at pure execution
        cost::

            executable = session.compile(circuit, backend="tn")
            results = [executable.run() for _ in range(1000)]   # no re-planning

        One caveat: a noise mapping without a pinned ``"seed"`` draws a fresh
        injection seed per call, which is a *genuinely different* noisy
        structure every time — pin the noise seed (or pre-bind the noise into
        the circuit) when the same structure should be served repeatedly.
        """
        built = self._build_task(
            task=task, level=level, samples=samples, seed=seed, workers=workers,
            input_state=input_state, output_state=output_state,
            keep_samples=keep_samples, max_bond_dim=max_bond_dim, options=options,
            device=device,
        )
        resolved, circuit, built, config_hash, pass_info = self._prepare(
            circuit, backend, noise, backend_options, built, passes
        )
        return self._finish_compile(
            resolved, circuit, built, backend_options, config_hash, pass_info
        )

    def _finish_compile(
        self,
        resolved: SimulationBackend,
        circuit: Circuit,
        built: SimulationTask,
        backend_options: Mapping[str, Any] | None,
        config_hash: str,
        pass_info: Mapping[str, Any] | None = None,
    ) -> Executable:
        """Plan-cache lookup, in-flight deduplication, backend plan search.

        Concurrent compiles of one ``plan_cache_key`` deduplicate: the first
        caller (the *owner*) performs the backend's plan search outside the
        lock while every concurrent caller of the same key waits on the
        owner's Future — one miss total, the waiters count as ``coalesced``.
        An owner that fails fans the exception out to its waiters and removes
        the in-flight entry, so a failed compile never poisons the key: the
        next caller simply compiles again.
        """
        key = plan_cache_key(resolved.name, circuit, built, backend_options)
        owner_future: Future | None = None
        wait_future: Future | None = None
        cache_hit = False
        coalesced = False
        plan = None
        with self._lock:
            if key in self._plans:
                self._plans.move_to_end(key)
                plan = self._plans[key]
                self._plan_hits += 1
                cache_hit = True
            elif self._plan_capacity > 0 and key in self._inflight:
                wait_future = self._inflight[key]
                self._plan_coalesced += 1
                coalesced = True
            else:
                self._plan_misses += 1
                if self._plan_capacity > 0:
                    owner_future = Future()
                    self._inflight[key] = owner_future
        compile_seconds = 0.0
        if wait_future is not None:
            # Coalesced: block until the owner's plan search resolves.  The
            # wait is this caller's compile share; an owner failure re-raises
            # here, exactly as if this caller had compiled itself.
            start = time.perf_counter()
            plan = wait_future.result()
            compile_seconds = time.perf_counter() - start
            cache_hit = True
        elif not cache_hit:
            # The backend's plan search runs outside the lock, so distinct
            # keys never block each other.  A circuit with free parameters is
            # planned from a placeholder binding (all zeros): backend plans
            # for parametric circuits are value-independent by construction
            # (the bind slot re-reads tensor values from the executed
            # circuit), so any binding records the same plan.
            plan_circuit = circuit
            free = circuit_parameters(circuit)
            if free:
                plan_circuit = substitute(circuit, dict.fromkeys(free, 0.0))
            start = time.perf_counter()
            try:
                plan = resolved.compile(plan_circuit, built)
            except BaseException as exc:
                if owner_future is not None:
                    with self._lock:
                        self._inflight.pop(key, None)
                    owner_future.set_exception(exc)
                raise
            compile_seconds = time.perf_counter() - start
            if self._plan_capacity > 0:
                with self._lock:
                    if not self._closed:
                        self._plans[key] = plan
                        self._plans.move_to_end(key)
                        while len(self._plans) > self._plan_capacity:
                            self._plans.popitem(last=False)
                            self._plan_evictions += 1
                    self._inflight.pop(key, None)
                if owner_future is not None:
                    owner_future.set_result(plan)
        return Executable(
            session=self,
            backend=resolved,
            circuit=circuit,
            task=built,
            backend_options=backend_options,
            config_hash=config_hash,
            plan=plan,
            plan_key=key,
            cache_hit=cache_hit,
            compile_seconds=compile_seconds,
            pass_info=pass_info,
            coalesced=coalesced,
        )

    def cache_stats(self) -> Dict[str, int]:
        """Plan-cache counters: hits, misses, coalesced, evictions, size, capacity.

        ``hits + misses + coalesced`` equals the number of :meth:`compile`
        calls (every ``run()``/``submit()``/``simulate()`` performs exactly
        one): a ``coalesced`` compile found the same key already being
        compiled by a concurrent caller and shared that single in-flight
        plan search — K identical concurrent compiles cost exactly one miss.
        ``inflight`` is the number of plan searches currently running.
        """
        with self._lock:
            return {
                "hits": self._plan_hits,
                "misses": self._plan_misses,
                "coalesced": self._plan_coalesced,
                "evictions": self._plan_evictions,
                "size": len(self._plans),
                "capacity": self._plan_capacity,
                "inflight": len(self._inflight),
            }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        circuit: Circuit,
        backend: str = "auto",
        *,
        noise: Any = None,
        task: SimulationTask | None = None,
        backend_options: Mapping[str, Any] | None = None,
        level: int | None = None,
        samples: int | None = None,
        seed: int | None = None,
        workers: int | None = None,
        input_state: Any = None,
        output_state: Any = None,
        keep_samples: bool = False,
        max_bond_dim: int | None = None,
        options: Mapping[str, Any] | None = None,
        passes: Any = None,
        device: str | None = None,
    ) -> SimulationResult:
        """Simulate ``circuit`` on ``backend``, blocking until the result.

        A thin wrapper over :meth:`compile` + :meth:`Executable.run`: the
        one-time work hits the session's plan cache transparently, so
        repeated calls with an equivalent configuration pay only execution
        (``result.cache_hit`` records which happened; on a miss the result's
        ``elapsed_seconds`` includes the compile time this one-shot call
        actually paid, keeping timings comparable with pre-compiled-plan
        records).  Either pass a prepared
        :class:`~repro.backends.SimulationTask` via ``task`` or the
        individual method knobs (``level``, ``samples``, ``seed``, …) — not
        both.  ``output_state="ideal"`` scores against the circuit's own
        ideal output ``U|0…0⟩``.
        """
        return one_shot_result(
            self.compile(
                circuit,
                backend,
                noise=noise,
                task=task,
                backend_options=backend_options,
                level=level,
                samples=samples,
                seed=seed,
                workers=workers,
                input_state=input_state,
                output_state=output_state,
                keep_samples=keep_samples,
                max_bond_dim=max_bond_dim,
                options=options,
                passes=passes,
                device=device,
            )
        )

    def submit(
        self,
        circuit: Circuit,
        backend: str = "auto",
        *,
        noise: Any = None,
        task: SimulationTask | None = None,
        backend_options: Mapping[str, Any] | None = None,
        level: int | None = None,
        samples: int | None = None,
        seed: int | None = None,
        workers: int | None = None,
        input_state: Any = None,
        output_state: Any = None,
        keep_samples: bool = False,
        max_bond_dim: int | None = None,
        options: Mapping[str, Any] | None = None,
        passes: Any = None,
        device: str | None = None,
    ) -> "Future[SimulationResult]":
        """Non-blocking :meth:`run`: dispatch now, read the result later.

        Resolution — backend lookup, capability checking, noise binding and
        seed resolution — happens *before* this method returns (invalid
        submissions raise immediately, and seeds depend only on submission
        order), so for identical seeds a ``submit()`` batch is
        value-identical to sequential ``run()`` calls.  The backend's plan
        search and the execution both run on the dispatch pool (hitting the
        session's plan cache there), so a batch of heavy submissions does
        not serialize its compile work in the caller thread; to compile
        eagerly instead, use :meth:`compile` + :meth:`Executable.submit`.
        """
        built = self._build_task(
            task=task, level=level, samples=samples, seed=seed, workers=workers,
            input_state=input_state, output_state=output_state,
            keep_samples=keep_samples, max_bond_dim=max_bond_dim, options=options,
            device=device,
        )
        resolved, circuit, built, config_hash, pass_info = self._prepare(
            circuit, backend, noise, backend_options, built, passes
        )

        def execute() -> SimulationResult:
            return one_shot_result(
                self._finish_compile(
                    resolved, circuit, built, backend_options, config_hash, pass_info
                )
            )

        return self._dispatch_pool().submit(execute)

    # ------------------------------------------------------------------
    # Method-specific helpers
    # ------------------------------------------------------------------
    def samples_for_precision(
        self,
        circuit: Circuit,
        target_standard_error: float,
        backend: str = "trajectories",
        *,
        pilot_samples: int = 64,
        seed: int | None = None,
        max_samples: int = 1_000_000,
        input_state: Any = None,
        output_state: Any = None,
    ) -> int:
        """Trajectory count for ``backend`` to reach ``target_standard_error``.

        Compiles one :class:`~repro.api.Executable` and runs the short pilot
        through it (:meth:`Executable.samples_for_precision`), so a caller
        that compiles the same configuration for the final matched-precision
        run shares the pilot's plan via the session cache; raises
        :class:`~repro.utils.validation.ValidationError` for non-stochastic
        backends.
        """
        self._check_open()
        resolved = self.backend(backend, circuit)
        if not resolved.capabilities.stochastic:
            raise ValidationError(
                f"backend {resolved.name!r} is not stochastic; "
                "samples_for_precision applies to the trajectory backends only"
            )
        executable = self.compile(
            circuit,
            backend,
            samples=pilot_samples,
            seed=seed,
            input_state=input_state,
            output_state=output_state,
        )
        return executable.samples_for_precision(
            target_standard_error,
            pilot_samples=pilot_samples,
            seed=seed,
            max_samples=max_samples,
        )


def simulate(
    circuit: Circuit,
    *,
    noise: Any = None,
    backend: str = "auto",
    level: int | None = None,
    samples: int | None = None,
    seed: int | None = None,
    workers: int | None = None,
    input_state: Any = None,
    output_state: Any = None,
    keep_samples: bool = False,
    max_bond_dim: int | None = None,
    backend_options: Mapping[str, Any] | None = None,
    options: Mapping[str, Any] | None = None,
    passes: Any = True,
    device: str | None = None,
) -> SimulationResult:
    """One-call convenience: run ``circuit`` through a one-shot :class:`Session`.

    >>> from repro.api import simulate
    >>> from repro.circuits.library import ghz_circuit
    >>> round(simulate(ghz_circuit(2), backend="statevector").value, 6)
    0.5
    """
    with Session(workers=workers) as session:
        return session.run(
            circuit,
            backend,
            noise=noise,
            level=level,
            samples=samples,
            seed=seed,
            input_state=input_state,
            output_state=output_state,
            keep_samples=keep_samples,
            max_bond_dim=max_bond_dim,
            backend_options=backend_options,
            options=options,
            passes=passes,
            device=device,
        )
