"""`repro.api` — the unified session layer over every simulation method.

One typed front door for the whole library: the CLI, the sweep subsystem,
the benchmark harness and user code all dispatch simulations through this
package instead of constructing simulator classes by hand::

    from repro.api import Session, simulate

    # one-shot
    result = simulate(circuit, noise={"channel": "depolarizing",
                                      "parameter": 0.001, "count": 8,
                                      "seed": 7},
                      backend="approximation", level=1)
    result.value, result.error_bound, result.config_hash

    # hot path: compile once, execute many times
    with Session(seed=7) as session:
        executable = session.compile(circuit, backend="approximation", level=1)
        results = [executable.run() for _ in range(1000)]   # no re-planning

    # async batch over one shared process pool
    with Session(workers=4, seed=7) as session:
        futures = [session.submit(circuit, backend=name, samples=10_000)
                   for name in ("trajectories", "trajectories_tn")]
        results = [future.result() for future in futures]

Every dispatch is a compile/execute split: :meth:`Session.compile` performs
the one-time work (noise binding, backend + capability resolution, seed
resolution, the backend's plan search) and returns an immutable
:class:`Executable`; ``run()``/``submit()``/``simulate()`` are thin wrappers
over compile-then-execute backed by a bounded LRU plan cache
(:meth:`Session.cache_stats`), so repeated traffic on one configuration pays
pure execution cost.  Every entry point returns a :class:`SimulationResult`
— value, standard error, Theorem-1 error bound (when available), wall-clock
time and full provenance (backend name, resolved seed, task config hash,
plan-cache hit) — so CLI tables, sweep JSONL records and ``BENCH_*`` perf
records serialize one schema, and :meth:`SimulationResult.from_dict`
rehydrates served/cached records.

Layering: ``repro.api`` sits directly on :mod:`repro.backends` (registry +
engine) and below :mod:`repro.sweeps` and :mod:`repro.cli`, which are both
implemented on top of it.
"""

from repro.api.executable import (
    PARAMETER_SHIFT_GATES,
    BoundExecutable,
    Executable,
    plan_cache_key,
)
from repro.api.noise import NOISE_CHANNELS, apply_noise, noise_model
from repro.api.result import SimulationResult, task_config_hash
from repro.api.session import Session, ideal_output_state, simulate
from repro.circuits.passes import PassConfig, PassStats

__all__ = [
    "BoundExecutable",
    "Executable",
    "NOISE_CHANNELS",
    "PARAMETER_SHIFT_GATES",
    "PassConfig",
    "PassStats",
    "Session",
    "SimulationResult",
    "apply_noise",
    "ideal_output_state",
    "noise_model",
    "plan_cache_key",
    "simulate",
    "task_config_hash",
]
