"""Noise resolution for the session layer.

:func:`apply_noise` turns the ``noise=...`` argument of
:func:`repro.api.simulate` / :meth:`repro.api.Session.run` into a concrete
noisy circuit using the paper's fault model (a channel appended after
randomly chosen gates).  It accepts

* ``None`` — the circuit is simulated as-is;
* a mapping ``{"channel": ..., "parameter": ..., "count": ..., "seed": ...}``
  naming one of the registered single-parameter channels or the
  calibration-style ``"superconducting"`` model.

Callers holding a custom :class:`~repro.noise.NoiseModel` inject it
themselves (``model.insert_random(circuit, count)``) and pass the resulting
noisy circuit directly.

The CLI's ``--channel/--parameter/--noises`` flags and the sweep subsystem's
noise axis both resolve through this module, so every layer injects noise
identically for identical seeds.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.circuits.circuit import Circuit
from repro.noise import CHANNEL_FACTORIES, NoiseModel, SYCAMORE_LIKE_SPEC
from repro.utils.validation import ValidationError

__all__ = ["NOISE_CHANNELS", "apply_noise", "noise_model"]

#: Channel names ``noise`` mappings may use: every single-parameter factory in
#: :data:`repro.noise.CHANNEL_FACTORIES` plus the superconducting model.
NOISE_CHANNELS = (*sorted(CHANNEL_FACTORIES), "superconducting")

_NOISE_KEYS = ("channel", "parameter", "count", "seed")


def noise_model(channel: str, parameter: float = 0.001, seed: int | None = None) -> NoiseModel:
    """Build the :class:`~repro.noise.NoiseModel` a channel name resolves to.

    >>> from repro.api.noise import noise_model
    >>> type(noise_model("depolarizing", 0.01, seed=3)).__name__
    'NoiseModel'
    """
    if channel == "superconducting":
        return NoiseModel(
            lambda arity, rng: SYCAMORE_LIKE_SPEC.gate_noise(arity, rng), seed=seed
        )
    if channel not in CHANNEL_FACTORIES:
        raise ValidationError(
            f"unknown noise channel {channel!r}; known: {', '.join(NOISE_CHANNELS)}"
        )
    return NoiseModel(CHANNEL_FACTORIES[channel](parameter), seed=seed)


def apply_noise(circuit: Circuit, noise: Any, seed: int | None = None) -> Circuit:
    """Return the noisy circuit ``noise`` describes (or ``circuit`` unchanged).

    ``seed`` is the fallback injection seed used when the noise mapping does
    not carry its own ``seed`` entry; the input circuit is never mutated.
    """
    if noise is None:
        return circuit
    if isinstance(noise, NoiseModel):
        raise ValidationError(
            "a bare NoiseModel does not say how many noises to inject; call "
            "model.insert_random(circuit, count) and pass the noisy circuit, "
            "or pass a mapping with 'channel' and 'count'"
        )
    noise = dict(_require_mapping(noise))
    unknown = sorted(set(noise) - set(_NOISE_KEYS))
    if unknown:
        raise ValidationError(
            f"unknown noise key(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(_NOISE_KEYS)}"
        )
    if "count" not in noise:
        # Defaulting to 0 would silently simulate the noiseless circuit.
        raise ValidationError("a noise mapping needs an explicit 'count'")
    count = int(noise["count"])
    if count < 0:
        raise ValidationError("noise count must be non-negative")
    if count == 0:
        return circuit
    channel = str(noise.get("channel", "depolarizing"))
    parameter = float(noise.get("parameter", 0.001))
    # An explicit "seed": None means "unseeded" was *not* decided — fall back,
    # exactly as if the key were absent, so the session's resolved seed wins.
    injection_seed = noise.get("seed")
    if injection_seed is None:
        injection_seed = seed
    model = noise_model(channel, parameter, seed=injection_seed)
    return model.insert_random(circuit, count)


def _require_mapping(value: Any) -> Mapping:
    if not isinstance(value, Mapping):
        raise ValidationError(
            f"noise must be None or a mapping with keys {', '.join(_NOISE_KEYS)}, "
            f"got {type(value).__name__}"
        )
    return value
