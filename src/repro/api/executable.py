"""Compiled simulations: the execute half of the compile/execute split.

:meth:`repro.api.Session.compile` performs every piece of one-time work a
simulation needs — noise binding, backend and capability resolution, seed
resolution, boundary-state materialisation and the backend's own plan
construction (contraction-schedule recording, trajectory-context
preparation, SVD decompositions) — and returns an :class:`Executable`: an
immutable handle whose :meth:`Executable.run` / :meth:`Executable.submit`
pay only the pure execution cost.  ``run()``/``submit()``/``simulate()`` on
the session are thin wrappers over compile-then-execute with a transparent
bounded LRU plan cache, so hot-path serving of a repeated configuration
skips the one-time work automatically.

:func:`plan_cache_key` is the cache identity: it covers everything a
backend's plan can depend on (the exact circuit structure, the backend and
its options, the boundary states) and deliberately *excludes* the per-call
knobs (``seed``, ``num_samples``, ``keep_samples``, ``workers``/``executor``
and the approximation ``level``), so e.g. two trajectory tasks that differ
only in their sampling seed share one compiled plan.
"""

from __future__ import annotations

import dataclasses
import math
import threading
from concurrent.futures import Future
from typing import Any, Dict, Mapping

from repro.api.result import (
    SimulationResult,
    hash_payload,
    structural_config_payload,
    task_config_hash,
)
from repro.backends.base import SimulationBackend, SimulationTask
from repro.backends.engine import WorkerPoolError
from repro.circuits.circuit import Circuit
from repro.circuits.parameters import (
    UnboundParameterError,
    circuit_parameters,
    normalize_binding,
    substitute,
)
from repro.utils.validation import ValidationError

__all__ = ["BoundExecutable", "Executable", "PARAMETER_SHIFT_GATES", "plan_cache_key"]

#: Gates the two-term parameter-shift rule is exact for: their generator has
#: two eigenvalues with gap 1 (in the ``exp(-i θ G / 2)`` convention), so
#: ``∂θ f = [f(θ+π/2) − f(θ−π/2)] / 2``.  ``p``/``cp`` differ from ``rz``/a
#: controlled ``rz`` only by a global phase, which every figure of merit the
#: backends report is insensitive to.  ``givens``/``crz``/``fsim``/``u3``
#: have three or more distinct generator eigenvalues (or several angles with
#: coupled generators) and are excluded — shifting them needs a multi-term
#: rule this helper does not implement.
PARAMETER_SHIFT_GATES = frozenset({"rx", "ry", "rz", "p", "cp", "zzphase", "xxphase"})


def plan_cache_key(
    backend: str,
    circuit: Circuit,
    task: SimulationTask,
    backend_options: Mapping[str, Any] | None = None,
) -> str:
    """Identity of a compiled plan: structure in, per-call knobs out.

    Two configurations share a plan iff they agree on the backend (name and
    construction options), the exact circuit structure (gate and Kraus tensor
    bytes, see :meth:`repro.circuits.Circuit.fingerprint`), the boundary
    states and the structural task options.  The session keys on the circuit
    *after* the optimizing pass pipeline has run, so no separate pass-config
    token is needed: pass-on and pass-off compiles either produce the same
    optimized circuit (and correctly share a plan) or different fingerprints.  ``seed``, ``num_samples``,
    ``keep_samples`` and the approximation ``level`` never change what a
    backend precomputes, so they are excluded — a sweep over seeds, sample
    counts or levels compiles once.  Of the execution plumbing, only the
    pooled-vs-in-process *regime* bit (``workers > 1``) enters the key —
    never the worker count or the executor handle — because a multi-process
    run prepares its per-circuit context inside each worker and therefore
    compiles to a different (empty) plan than an in-process run.

    >>> from repro.backends import SimulationTask
    >>> from repro.circuits.library import ghz_circuit
    >>> key = plan_cache_key("tn", ghz_circuit(2), SimulationTask(seed=1))
    >>> key == plan_cache_key(
    ...     "tn", ghz_circuit(2), SimulationTask(seed=2, num_samples=9, level=3)
    ... )
    True
    >>> key == plan_cache_key("tn", ghz_circuit(3), SimulationTask(seed=1))
    False
    >>> key == plan_cache_key("tdd", ghz_circuit(2), SimulationTask(seed=1))
    False

    Parametric circuits key on the :meth:`~repro.circuits.Circuit.\
structural_fingerprint` — parameter *names*, expression coefficients and
    gate structure enter the key, bound *values* and parameter-shift offsets
    do not — so N bindings of one parametric circuit share a single plan
    (for literal circuits the structural fingerprint equals the exact one,
    leaving every pre-existing key unchanged).
    """
    payload = structural_config_payload(backend, task, backend_options)
    payload["circuit"] = circuit.structural_fingerprint()
    payload["pooled"] = task.workers is not None and task.workers > 1
    return hash_payload(payload)


def one_shot_result(executable: "Executable") -> SimulationResult:
    """Execute a freshly compiled executable as a one-shot dispatch.

    When the plan was compiled for this very call (cache miss), the compile
    time is billed into the result's ``elapsed_seconds`` — that is the cost
    the caller actually paid — so one-shot timings (sweep records, CLI
    tables, verify reports) stay comparable with records produced before the
    compile/execute split.  On a cache hit the result is the pure execution
    cost, exactly like :meth:`Executable.run`.
    """
    result = executable.run()
    if not executable.cache_hit and executable.compile_seconds > 0.0:
        result = dataclasses.replace(
            result,
            elapsed_seconds=result.elapsed_seconds + executable.compile_seconds,
        )
    return result


class Executable:
    """An immutable compiled simulation, ready for repeated hot-path execution.

    Produced by :meth:`repro.api.Session.compile`; holds the fully resolved
    circuit (noise bound, boundary states materialised), the resolved backend
    adapter, the resolved task and the backend's precompiled plan.  Each
    :meth:`run`/:meth:`submit` call pays only the pure execution cost;
    ``num_samples`` and ``seed`` may be overridden per call (they are
    per-call knobs the plan does not depend on), everything else is fixed at
    compile time — including the noise *placement*, which was bound using the
    compile-time seed.

    The handle stays valid until its session closes; afterwards
    :meth:`run`/:meth:`submit` raise a
    :class:`~repro.utils.validation.ValidationError`.
    """

    __slots__ = (
        "_session",
        "_backend",
        "_circuit",
        "_task",
        "_backend_options",
        "_config_hash",
        "_plan",
        "_plan_key",
        "_cache_hit",
        "_compile_seconds",
        "_pass_info",
        "_coalesced",
        "_lock",
        "_executions",
    )

    def __init__(
        self,
        session,
        backend: SimulationBackend,
        circuit: Circuit,
        task: SimulationTask,
        backend_options: Mapping[str, Any] | None,
        config_hash: str,
        plan: Any,
        plan_key: str,
        cache_hit: bool,
        compile_seconds: float,
        pass_info: Mapping[str, Any] | None = None,
        coalesced: bool = False,
    ) -> None:
        self._session = session
        self._backend = backend
        self._circuit = circuit
        self._task = task
        self._backend_options = dict(backend_options or {})
        self._config_hash = config_hash
        self._plan = plan
        self._plan_key = plan_key
        self._cache_hit = cache_hit
        self._compile_seconds = compile_seconds
        self._pass_info = dict(pass_info) if pass_info is not None else None
        self._coalesced = coalesced
        self._lock = threading.Lock()
        self._executions = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """Canonical name of the resolved backend."""
        return self._backend.name

    @property
    def circuit(self) -> Circuit:
        """The fully resolved (noise-bound) circuit this executable runs."""
        return self._circuit

    @property
    def task(self) -> SimulationTask:
        """The resolved task (frozen; per-call overrides never mutate it)."""
        return self._task

    @property
    def config_hash(self) -> str:
        """Provenance hash of the compiled configuration (seed included)."""
        return self._config_hash

    @property
    def plan_key(self) -> str:
        """Session plan-cache key (seed/samples/level excluded)."""
        return self._plan_key

    @property
    def cache_hit(self) -> bool:
        """True when compilation reused a plan from the session cache."""
        return self._cache_hit

    @property
    def compile_seconds(self) -> float:
        """Wall-clock cost of the plan search (0.0 on a cache hit).

        For a coalesced compile this is the time spent waiting on the
        concurrent owner's plan search, not a second search.
        """
        return self._compile_seconds

    @property
    def coalesced(self) -> bool:
        """True when this compile shared a concurrent in-flight plan search.

        A coalesced compile found the same ``plan_key`` already being
        compiled by another thread and waited for that single search instead
        of starting its own; it also reports ``cache_hit=True`` because the
        one-time work was not repeated for this call.
        """
        return self._coalesced

    def describe(self) -> Dict[str, Any]:
        """Plan cost, cache provenance and pass report of this configuration.

        The ``"passes"`` entry reports the optimizing pipeline's outcome:
        ``{"config": {...}, "stats": {...}, "seconds": float}``, where
        ``stats`` holds the counters of
        :class:`repro.circuits.passes.PassStats` (``gates_fused``,
        ``channels_folded``, ``sites_pruned`` and the before/after gate and
        noise counts) and is ``None`` when every pass was disabled.  The
        pipeline's wall-clock cost is reported here, *not* in
        ``compile_seconds``, which stays the backend plan search alone.
        """
        plan_info = None
        describe = getattr(self._plan, "describe", None)
        if callable(describe):
            plan_info = describe()
        elif self._plan is not None:
            plan_info = type(self._plan).__name__
        return {
            "backend": self._backend.name,
            "circuit": self._circuit.summary(),
            "config_hash": self._config_hash,
            "plan_key": self._plan_key,
            "cache_hit": self._cache_hit,
            "coalesced": self._coalesced,
            "compile_seconds": self._compile_seconds,
            "executions": self._executions,
            "seed": self._task.seed,
            "device": self._task.device or "cpu",
            "num_samples": self._task.num_samples,
            "level": self._task.level,
            "plan": plan_info,
            "passes": dict(self._pass_info) if self._pass_info is not None else None,
            "bound_params": self.bound_params,
            "free_parameters": sorted(circuit_parameters(self._circuit)),
        }

    @property
    def bound_params(self) -> Dict[str, float] | None:
        """The parameter binding of a :meth:`bind` result (None otherwise)."""
        return None

    # ------------------------------------------------------------------
    # Parameter binding
    # ------------------------------------------------------------------
    def _check_binding(self, params: Mapping) -> Dict[str, float]:
        """Validate ``params`` against this executable's free parameters."""
        normalized = normalize_binding(params)
        free = circuit_parameters(self._circuit)
        missing = sorted(free - frozenset(normalized))
        if missing:
            raise UnboundParameterError(
                f"bind() is missing values for parameters {missing}"
            )
        unknown = sorted(frozenset(normalized) - free)
        if unknown:
            raise ValidationError(
                f"bind() got unknown parameters {unknown} "
                f"(this executable's parameters: {sorted(free)})"
            )
        return normalized

    def _rebind(self, bound_circuit: Circuit, bound_params: Dict[str, float]) -> "BoundExecutable":
        """Plan lookup + :class:`BoundExecutable` construction (no plan search).

        With the plan cache enabled this goes through the session's
        :meth:`~repro.api.Session._finish_compile`: the bound circuit's
        structural fingerprint equals the parent's, so the lookup is a cache
        *hit* that reuses the one plan recorded at compile time (a re-record
        happens only if the plan was evicted in between).  With caching
        disabled (``plan_cache_size=0``) the parent's plan is reused
        directly — it is value-independent by construction — without
        touching the cache counters.
        """
        config_hash = task_config_hash(
            self._backend.name, self._task, self._backend_options,
            bound_params=bound_params,
        )
        if self._session._plan_capacity > 0:
            inner = self._session._finish_compile(
                self._backend, bound_circuit, self._task, self._backend_options,
                config_hash, self._pass_info,
            )
            plan = inner._plan
            plan_key = inner._plan_key
            cache_hit = inner._cache_hit
            compile_seconds = inner._compile_seconds
            coalesced = inner._coalesced
        else:
            plan, plan_key = self._plan, self._plan_key
            cache_hit, compile_seconds, coalesced = True, 0.0, False
        return BoundExecutable(
            session=self._session,
            backend=self._backend,
            circuit=bound_circuit,
            task=self._task,
            backend_options=self._backend_options,
            config_hash=config_hash,
            plan=plan,
            plan_key=plan_key,
            cache_hit=cache_hit,
            compile_seconds=compile_seconds,
            pass_info=self._pass_info,
            coalesced=coalesced,
            parent=self,
            bound_params=bound_params,
        )

    def bind(self, params: Mapping) -> "BoundExecutable":
        """Bind every free parameter; return a runnable :class:`BoundExecutable`.

        This is the cheap half of the compile/bind split: all
        structure-dependent work (passes, noise binding, the backend's plan
        search) happened once at :meth:`~repro.api.Session.compile` time, and
        binding only substitutes tensor *values* into the optimized circuit —
        an optimizer iteration costs one execute and zero plan searches.
        ``params`` maps parameter names (or :class:`~repro.circuits.\
parameters.Parameter` objects) to floats and must cover the free parameters
        exactly: missing names raise
        :class:`~repro.circuits.parameters.UnboundParameterError`, unknown
        names raise :class:`~repro.utils.validation.ValidationError`.  Raises
        after the owning session closes, like :meth:`run` does.
        """
        self._session._check_open()
        normalized = self._check_binding(params)
        bound_circuit = substitute(self._circuit, normalized)
        return self._rebind(bound_circuit, normalized)

    # ------------------------------------------------------------------
    # Parameter-shift gradients
    # ------------------------------------------------------------------
    def _shift_occurrences(self):
        """Every (instruction index, slot, expression) a gradient must shift.

        Validates eligibility: a free parameter reaching a gate outside
        :data:`PARAMETER_SHIFT_GATES` has no exact two-term shift rule.
        """
        occurrences = []
        for index, inst in enumerate(self._circuit):
            operation = inst.operation
            if not getattr(operation, "is_parametric_gate", False):
                continue
            for slot, expr in enumerate(operation.expressions):
                if not (expr.parameters & operation.free_parameters):
                    continue
                if operation.name not in PARAMETER_SHIFT_GATES:
                    raise ValidationError(
                        f"gate {operation.name!r} has no exact two-term "
                        f"parameter-shift rule (supported: "
                        f"{sorted(PARAMETER_SHIFT_GATES)})"
                    )
                occurrences.append((index, slot, expr))
        return occurrences

    @staticmethod
    def _shifted_circuit(bound_circuit: Circuit, index: int, slot: int, delta: float) -> Circuit:
        """Copy of ``bound_circuit`` with one gate occurrence's angle shifted."""
        shifted = Circuit(bound_circuit.num_qubits, name=bound_circuit.name)
        for i, inst in enumerate(bound_circuit):
            operation = inst.operation
            if i == index:
                operation = operation.shifted(slot, delta)
            shifted.append(operation, inst.qubits)
        return shifted

    def gradient(
        self, params: Mapping, observable: Any = None
    ) -> Dict[str, float]:
        """Parameter-shift gradient of the figure of merit at ``params``.

        For every gate occurrence whose angle depends on a free parameter,
        the exact two-term rule ``∂θ f = [f(θ+π/2) − f(θ−π/2)] / 2`` is
        applied through the occurrence's post-evaluation angle offset
        (:meth:`~repro.circuits.parameters.ParametricGate.shifted`), and the
        chain rule over the linear angle expression accumulates
        ``coeff · ∂θ f`` into each parameter's entry.  Offsets are excluded
        from the structural fingerprint, so all ``2K`` shifted evaluations
        replay the one compiled plan (cache hits, no plan searches).

        With ``observable=None`` the differentiated objective is the
        compiled task's own figure of merit — ``bind(p).run().value`` with
        the compiled seed, evaluated concurrently via :meth:`submit`
        batching.  With an observable (anything
        :meth:`repro.simulators.TNSimulator.expectation` accepts) the
        objective is that operator's expectation on the bound circuit's
        output state; this path contracts per evaluation rather than
        replaying the compiled plan.

        Returns ``{parameter name: partial derivative}`` over the free
        parameters.
        """
        self._session._check_open()
        normalized = self._check_binding(params)
        occurrences = self._shift_occurrences()
        bound_circuit = substitute(self._circuit, normalized)

        evaluations: list = []
        if observable is None:
            futures = []
            for index, slot, _ in occurrences:
                for sign in (1.0, -1.0):
                    shifted = self._shifted_circuit(
                        bound_circuit, index, slot, sign * math.pi / 2.0
                    )
                    futures.append(self._rebind(shifted, normalized).submit())
            evaluations = [future.result().value for future in futures]
        else:
            from repro.simulators import TNSimulator

            simulator = TNSimulator()
            for index, slot, _ in occurrences:
                for sign in (1.0, -1.0):
                    shifted = self._shifted_circuit(
                        bound_circuit, index, slot, sign * math.pi / 2.0
                    )
                    evaluations.append(
                        float(
                            simulator.expectation(
                                shifted,
                                observable,
                                input_state=self._task.input_state,
                            )
                        )
                    )

        grad = {name: 0.0 for name in sorted(circuit_parameters(self._circuit))}
        for k, (index, slot, expr) in enumerate(occurrences):
            plus, minus = evaluations[2 * k], evaluations[2 * k + 1]
            partial = (plus - minus) / 2.0
            for name, coeff in expr.terms:
                if name in grad:
                    grad[name] += coeff * partial
        return grad

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _resolve_call(self, num_samples: int | None, seed: int | None):
        """Per-call task + provenance; counts the execution for cache_hit."""
        self._session._check_open()
        free = sorted(circuit_parameters(self._circuit))
        if free:
            raise UnboundParameterError(
                f"executable has unbound parameters {free}; call "
                "bind({name: value, ...}) and run the bound executable"
            )
        task = self._task
        if num_samples is not None:
            if num_samples <= 0:
                raise ValidationError("num_samples must be positive")
            task = dataclasses.replace(task, num_samples=int(num_samples))
        if seed is not None:
            task = dataclasses.replace(task, seed=int(seed))
        if task is self._task:
            config_hash = self._config_hash
        else:
            config_hash = task_config_hash(
                self._backend.name, task, self._backend_options,
                bound_params=self.bound_params,
            )
        with self._lock:
            reused = self._cache_hit or self._executions > 0
            self._executions += 1
        return task, config_hash, reused

    def run(
        self, *, num_samples: int | None = None, seed: int | None = None
    ) -> SimulationResult:
        """Execute the compiled simulation, blocking until the result.

        ``num_samples``/``seed`` override the compiled task's sampling budget
        and RNG seed for this call only (stochastic backends); with no
        overrides, every ``run()`` replays the exact compiled configuration —
        same seed, bit-identical value.
        """
        task, config_hash, reused = self._resolve_call(num_samples, seed)
        return self._execute(task, config_hash, reused)

    def _execute(self, task, config_hash, reused) -> SimulationResult:
        """Backend dispatch shared by run()/submit(), with pool recovery.

        A :class:`~repro.backends.WorkerPoolError` means the session's shared
        process pool lost a worker and is permanently broken; the session's
        pool is reset *before* re-raising, so the caller's retry — through
        this same executable, whose task holds an indirect pool handle —
        runs against a fresh pool.
        """
        try:
            outcome = self._backend.run(self._circuit, task, plan=self._plan)
        except WorkerPoolError:
            self._session.reset_pool()
            raise
        return SimulationResult.from_backend_result(
            outcome,
            seed=task.seed,
            config_hash=config_hash,
            cache_hit=reused,
            device=task.device,
        )

    def submit(
        self, *, num_samples: int | None = None, seed: int | None = None
    ) -> "Future[SimulationResult]":
        """Non-blocking :meth:`run`: dispatch on the session's thread pool."""
        task, config_hash, reused = self._resolve_call(num_samples, seed)

        def execute() -> SimulationResult:
            return self._execute(task, config_hash, reused)

        return self._session._dispatch_pool().submit(execute)

    # ------------------------------------------------------------------
    def samples_for_precision(
        self,
        target_standard_error: float,
        *,
        pilot_samples: int = 64,
        seed: int | None = None,
        max_samples: int = 1_000_000,
    ) -> int:
        """Trajectory count reaching ``target_standard_error``, via a pilot run.

        The pilot executes through this same executable (no recompilation),
        so the pilot and the final matched-precision run share one compiled
        plan; the post-pilot math is
        :func:`repro.simulators.trajectories.required_samples`.
        """
        from repro.simulators.trajectories import required_samples

        if target_standard_error <= 0:
            raise ValidationError("target_standard_error must be positive")
        if not self._backend.capabilities.stochastic:
            raise ValidationError(
                f"backend {self._backend.name!r} is not stochastic; "
                "samples_for_precision applies to the trajectory backends only"
            )
        pilot = self.run(num_samples=pilot_samples, seed=seed)
        return required_samples(
            pilot.value,
            pilot.standard_error,
            pilot_samples,
            target_standard_error,
            max_samples=max_samples,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Executable backend={self._backend.name!r} "
            f"config_hash={self._config_hash!r} cache_hit={self._cache_hit}>"
        )


class BoundExecutable(Executable):
    """A parametric executable with every parameter bound to a value.

    Produced by :meth:`Executable.bind`; behaves exactly like an
    :class:`Executable` (same ``run``/``submit``/``describe`` surface) whose
    circuit has the binding substituted in, and shares the parent's compiled
    plan — binding never repeats the structure-dependent work.  The binding
    is reported in ``describe()["bound_params"]`` and folded into
    :attr:`config_hash`, so two bindings of one structure are
    provenance-distinct while sharing one plan-cache entry.

    :meth:`bind` on a bound executable delegates to the *parent* parametric
    executable, so an optimizer loop can re-bind from whichever handle it
    holds.
    """

    __slots__ = ("_parent", "_bound_params")

    def __init__(self, *, parent: Executable, bound_params: Mapping[str, float], **kwargs) -> None:
        super().__init__(**kwargs)
        self._parent = parent
        self._bound_params = {
            str(name): float(value) for name, value in dict(bound_params).items()
        }

    @property
    def bound_params(self) -> Dict[str, float]:
        """The full parameter binding this executable runs under."""
        return dict(self._bound_params)

    @property
    def parent(self) -> Executable:
        """The parametric executable this binding came from."""
        return self._parent

    def bind(self, params: Mapping) -> "BoundExecutable":
        """Re-bind from the parent parametric executable (optimizer loops)."""
        return self._parent.bind(params)

    def gradient(self, params: Mapping, observable: Any = None) -> Dict[str, float]:
        """Parameter-shift gradient via the parent (see :meth:`Executable.gradient`)."""
        return self._parent.gradient(params, observable)

    def expectation(self, observable: Any) -> float:
        """Expectation of ``observable`` on this binding's output state.

        Contracts via :meth:`repro.simulators.TNSimulator.expectation`
        (lightcone-pruned per Pauli term); unlike :meth:`run` this does not
        replay the compiled plan, so it is the right tool for occasional
        energy readouts, not the hot loop.
        """
        from repro.simulators import TNSimulator

        self._session._check_open()
        return float(
            TNSimulator().expectation(
                self._circuit, observable, input_state=self._task.input_state
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ",".join(sorted(self._bound_params))
        return (
            f"<BoundExecutable backend={self._backend.name!r} "
            f"params=[{names}] config_hash={self._config_hash!r}>"
        )
