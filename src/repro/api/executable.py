"""Compiled simulations: the execute half of the compile/execute split.

:meth:`repro.api.Session.compile` performs every piece of one-time work a
simulation needs — noise binding, backend and capability resolution, seed
resolution, boundary-state materialisation and the backend's own plan
construction (contraction-schedule recording, trajectory-context
preparation, SVD decompositions) — and returns an :class:`Executable`: an
immutable handle whose :meth:`Executable.run` / :meth:`Executable.submit`
pay only the pure execution cost.  ``run()``/``submit()``/``simulate()`` on
the session are thin wrappers over compile-then-execute with a transparent
bounded LRU plan cache, so hot-path serving of a repeated configuration
skips the one-time work automatically.

:func:`plan_cache_key` is the cache identity: it covers everything a
backend's plan can depend on (the exact circuit structure, the backend and
its options, the boundary states) and deliberately *excludes* the per-call
knobs (``seed``, ``num_samples``, ``keep_samples``, ``workers``/``executor``
and the approximation ``level``), so e.g. two trajectory tasks that differ
only in their sampling seed share one compiled plan.
"""

from __future__ import annotations

import dataclasses
import threading
from concurrent.futures import Future
from typing import Any, Dict, Mapping

from repro.api.result import (
    SimulationResult,
    hash_payload,
    structural_config_payload,
    task_config_hash,
)
from repro.backends.base import SimulationBackend, SimulationTask
from repro.backends.engine import WorkerPoolError
from repro.circuits.circuit import Circuit
from repro.utils.validation import ValidationError

__all__ = ["Executable", "plan_cache_key"]


def plan_cache_key(
    backend: str,
    circuit: Circuit,
    task: SimulationTask,
    backend_options: Mapping[str, Any] | None = None,
) -> str:
    """Identity of a compiled plan: structure in, per-call knobs out.

    Two configurations share a plan iff they agree on the backend (name and
    construction options), the exact circuit structure (gate and Kraus tensor
    bytes, see :meth:`repro.circuits.Circuit.fingerprint`), the boundary
    states and the structural task options.  The session keys on the circuit
    *after* the optimizing pass pipeline has run, so no separate pass-config
    token is needed: pass-on and pass-off compiles either produce the same
    optimized circuit (and correctly share a plan) or different fingerprints.  ``seed``, ``num_samples``,
    ``keep_samples`` and the approximation ``level`` never change what a
    backend precomputes, so they are excluded — a sweep over seeds, sample
    counts or levels compiles once.  Of the execution plumbing, only the
    pooled-vs-in-process *regime* bit (``workers > 1``) enters the key —
    never the worker count or the executor handle — because a multi-process
    run prepares its per-circuit context inside each worker and therefore
    compiles to a different (empty) plan than an in-process run.

    >>> from repro.backends import SimulationTask
    >>> from repro.circuits.library import ghz_circuit
    >>> key = plan_cache_key("tn", ghz_circuit(2), SimulationTask(seed=1))
    >>> key == plan_cache_key(
    ...     "tn", ghz_circuit(2), SimulationTask(seed=2, num_samples=9, level=3)
    ... )
    True
    >>> key == plan_cache_key("tn", ghz_circuit(3), SimulationTask(seed=1))
    False
    >>> key == plan_cache_key("tdd", ghz_circuit(2), SimulationTask(seed=1))
    False
    """
    payload = structural_config_payload(backend, task, backend_options)
    payload["circuit"] = circuit.fingerprint()
    payload["pooled"] = task.workers is not None and task.workers > 1
    return hash_payload(payload)


def one_shot_result(executable: "Executable") -> SimulationResult:
    """Execute a freshly compiled executable as a one-shot dispatch.

    When the plan was compiled for this very call (cache miss), the compile
    time is billed into the result's ``elapsed_seconds`` — that is the cost
    the caller actually paid — so one-shot timings (sweep records, CLI
    tables, verify reports) stay comparable with records produced before the
    compile/execute split.  On a cache hit the result is the pure execution
    cost, exactly like :meth:`Executable.run`.
    """
    result = executable.run()
    if not executable.cache_hit and executable.compile_seconds > 0.0:
        result = dataclasses.replace(
            result,
            elapsed_seconds=result.elapsed_seconds + executable.compile_seconds,
        )
    return result


class Executable:
    """An immutable compiled simulation, ready for repeated hot-path execution.

    Produced by :meth:`repro.api.Session.compile`; holds the fully resolved
    circuit (noise bound, boundary states materialised), the resolved backend
    adapter, the resolved task and the backend's precompiled plan.  Each
    :meth:`run`/:meth:`submit` call pays only the pure execution cost;
    ``num_samples`` and ``seed`` may be overridden per call (they are
    per-call knobs the plan does not depend on), everything else is fixed at
    compile time — including the noise *placement*, which was bound using the
    compile-time seed.

    The handle stays valid until its session closes; afterwards
    :meth:`run`/:meth:`submit` raise a
    :class:`~repro.utils.validation.ValidationError`.
    """

    __slots__ = (
        "_session",
        "_backend",
        "_circuit",
        "_task",
        "_backend_options",
        "_config_hash",
        "_plan",
        "_plan_key",
        "_cache_hit",
        "_compile_seconds",
        "_pass_info",
        "_coalesced",
        "_lock",
        "_executions",
    )

    def __init__(
        self,
        session,
        backend: SimulationBackend,
        circuit: Circuit,
        task: SimulationTask,
        backend_options: Mapping[str, Any] | None,
        config_hash: str,
        plan: Any,
        plan_key: str,
        cache_hit: bool,
        compile_seconds: float,
        pass_info: Mapping[str, Any] | None = None,
        coalesced: bool = False,
    ) -> None:
        self._session = session
        self._backend = backend
        self._circuit = circuit
        self._task = task
        self._backend_options = dict(backend_options or {})
        self._config_hash = config_hash
        self._plan = plan
        self._plan_key = plan_key
        self._cache_hit = cache_hit
        self._compile_seconds = compile_seconds
        self._pass_info = dict(pass_info) if pass_info is not None else None
        self._coalesced = coalesced
        self._lock = threading.Lock()
        self._executions = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """Canonical name of the resolved backend."""
        return self._backend.name

    @property
    def circuit(self) -> Circuit:
        """The fully resolved (noise-bound) circuit this executable runs."""
        return self._circuit

    @property
    def task(self) -> SimulationTask:
        """The resolved task (frozen; per-call overrides never mutate it)."""
        return self._task

    @property
    def config_hash(self) -> str:
        """Provenance hash of the compiled configuration (seed included)."""
        return self._config_hash

    @property
    def plan_key(self) -> str:
        """Session plan-cache key (seed/samples/level excluded)."""
        return self._plan_key

    @property
    def cache_hit(self) -> bool:
        """True when compilation reused a plan from the session cache."""
        return self._cache_hit

    @property
    def compile_seconds(self) -> float:
        """Wall-clock cost of the plan search (0.0 on a cache hit).

        For a coalesced compile this is the time spent waiting on the
        concurrent owner's plan search, not a second search.
        """
        return self._compile_seconds

    @property
    def coalesced(self) -> bool:
        """True when this compile shared a concurrent in-flight plan search.

        A coalesced compile found the same ``plan_key`` already being
        compiled by another thread and waited for that single search instead
        of starting its own; it also reports ``cache_hit=True`` because the
        one-time work was not repeated for this call.
        """
        return self._coalesced

    def describe(self) -> Dict[str, Any]:
        """Plan cost, cache provenance and pass report of this configuration.

        The ``"passes"`` entry reports the optimizing pipeline's outcome:
        ``{"config": {...}, "stats": {...}, "seconds": float}``, where
        ``stats`` holds the counters of
        :class:`repro.circuits.passes.PassStats` (``gates_fused``,
        ``channels_folded``, ``sites_pruned`` and the before/after gate and
        noise counts) and is ``None`` when every pass was disabled.  The
        pipeline's wall-clock cost is reported here, *not* in
        ``compile_seconds``, which stays the backend plan search alone.
        """
        plan_info = None
        describe = getattr(self._plan, "describe", None)
        if callable(describe):
            plan_info = describe()
        elif self._plan is not None:
            plan_info = type(self._plan).__name__
        return {
            "backend": self._backend.name,
            "circuit": self._circuit.summary(),
            "config_hash": self._config_hash,
            "plan_key": self._plan_key,
            "cache_hit": self._cache_hit,
            "coalesced": self._coalesced,
            "compile_seconds": self._compile_seconds,
            "executions": self._executions,
            "seed": self._task.seed,
            "device": self._task.device or "cpu",
            "num_samples": self._task.num_samples,
            "level": self._task.level,
            "plan": plan_info,
            "passes": dict(self._pass_info) if self._pass_info is not None else None,
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _resolve_call(self, num_samples: int | None, seed: int | None):
        """Per-call task + provenance; counts the execution for cache_hit."""
        self._session._check_open()
        task = self._task
        if num_samples is not None:
            if num_samples <= 0:
                raise ValidationError("num_samples must be positive")
            task = dataclasses.replace(task, num_samples=int(num_samples))
        if seed is not None:
            task = dataclasses.replace(task, seed=int(seed))
        if task is self._task:
            config_hash = self._config_hash
        else:
            config_hash = task_config_hash(
                self._backend.name, task, self._backend_options
            )
        with self._lock:
            reused = self._cache_hit or self._executions > 0
            self._executions += 1
        return task, config_hash, reused

    def run(
        self, *, num_samples: int | None = None, seed: int | None = None
    ) -> SimulationResult:
        """Execute the compiled simulation, blocking until the result.

        ``num_samples``/``seed`` override the compiled task's sampling budget
        and RNG seed for this call only (stochastic backends); with no
        overrides, every ``run()`` replays the exact compiled configuration —
        same seed, bit-identical value.
        """
        task, config_hash, reused = self._resolve_call(num_samples, seed)
        return self._execute(task, config_hash, reused)

    def _execute(self, task, config_hash, reused) -> SimulationResult:
        """Backend dispatch shared by run()/submit(), with pool recovery.

        A :class:`~repro.backends.WorkerPoolError` means the session's shared
        process pool lost a worker and is permanently broken; the session's
        pool is reset *before* re-raising, so the caller's retry — through
        this same executable, whose task holds an indirect pool handle —
        runs against a fresh pool.
        """
        try:
            outcome = self._backend.run(self._circuit, task, plan=self._plan)
        except WorkerPoolError:
            self._session.reset_pool()
            raise
        return SimulationResult.from_backend_result(
            outcome,
            seed=task.seed,
            config_hash=config_hash,
            cache_hit=reused,
            device=task.device,
        )

    def submit(
        self, *, num_samples: int | None = None, seed: int | None = None
    ) -> "Future[SimulationResult]":
        """Non-blocking :meth:`run`: dispatch on the session's thread pool."""
        task, config_hash, reused = self._resolve_call(num_samples, seed)

        def execute() -> SimulationResult:
            return self._execute(task, config_hash, reused)

        return self._session._dispatch_pool().submit(execute)

    # ------------------------------------------------------------------
    def samples_for_precision(
        self,
        target_standard_error: float,
        *,
        pilot_samples: int = 64,
        seed: int | None = None,
        max_samples: int = 1_000_000,
    ) -> int:
        """Trajectory count reaching ``target_standard_error``, via a pilot run.

        The pilot executes through this same executable (no recompilation),
        so the pilot and the final matched-precision run share one compiled
        plan; the post-pilot math is
        :func:`repro.simulators.trajectories.required_samples`.
        """
        from repro.simulators.trajectories import required_samples

        if target_standard_error <= 0:
            raise ValidationError("target_standard_error must be positive")
        if not self._backend.capabilities.stochastic:
            raise ValidationError(
                f"backend {self._backend.name!r} is not stochastic; "
                "samples_for_precision applies to the trajectory backends only"
            )
        pilot = self.run(num_samples=pilot_samples, seed=seed)
        return required_samples(
            pilot.value,
            pilot.standard_error,
            pilot_samples,
            target_standard_error,
            max_samples=max_samples,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Executable backend={self._backend.name!r} "
            f"config_hash={self._config_hash!r} cache_hit={self._cache_hit}>"
        )
