"""The unified result schema every `repro.api` entry point returns.

:class:`SimulationResult` is a strict superset of the backend layer's
:class:`~repro.backends.BackendResult`: the same outcome fields (value,
standard error, timings, counters, metadata) plus the provenance the service
layers need — the resolved backend name, the resolved RNG seed, the paper's
Theorem-1 error bound (when the approximation backend ran) and a content hash
of the task configuration.  CLI tables, sweep JSONL records and ``BENCH_*``
perf records all serialize this one schema via :meth:`SimulationResult.to_dict`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

import numpy as np

from repro.backends.base import BackendResult, SimulationTask

__all__ = ["SimulationResult", "task_config_hash"]


def _state_token(value: Any) -> Any:
    """JSON-stable token for a task field (dense states hash, not dump)."""
    if isinstance(value, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest()[:12]
        return f"ndarray[{value.shape}]:{digest}"
    if isinstance(value, (list, tuple)):
        return [_state_token(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _state_token(val) for key, val in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def structural_config_payload(
    backend: str,
    task: SimulationTask,
    backend_options: Mapping[str, Any] | None = None,
) -> Dict[str, Any]:
    """The JSON-stable payload of a task's *structural* configuration.

    The fields every configuration identity shares: backend name and
    construction options, boundary states, bond-dimension ceiling and the
    per-run adapter options (minus the ``executor`` handle).  Both
    :func:`task_config_hash` (which adds the per-call fields) and
    :func:`repro.api.executable.plan_cache_key` (which adds the circuit
    fingerprint) extend this one builder, so a new task field cannot be
    added to one hash and silently forgotten in the other.

    ``device`` enters the payload only when it is set and not ``"cpu"`` (the
    session normalises a resolved cpu device back to ``None``), so every
    hash and plan-cache key minted before devices existed is unchanged.
    """
    payload = {
        "backend": backend,
        "backend_options": {
            str(key): _state_token(value)
            for key, value in dict(backend_options or {}).items()
        },
        "input_state": _state_token(task.input_state),
        "output_state": _state_token(task.output_state),
        "max_bond_dim": task.max_bond_dim,
        "options": {
            str(key): _state_token(value)
            for key, value in task.options.items()
            if key != "executor"
        },
    }
    if task.device not in (None, "cpu"):
        payload["device"] = task.device
    return payload


def hash_payload(payload: Mapping[str, Any]) -> str:
    """16-hex content hash of a JSON-stable payload (shared hash spelling)."""
    digest = hashlib.sha256(json.dumps(payload, sort_keys=True).encode())
    return digest.hexdigest()[:16]


def task_config_hash(
    backend: str,
    task: SimulationTask,
    backend_options: Mapping[str, Any] | None = None,
    bound_params: Mapping[str, float] | None = None,
) -> str:
    """Content hash of one task configuration (the provenance key).

    Covers the backend name, its construction options and every *semantic*
    task field.  The worker *count* and the executor handle are excluded —
    the engine's seeded block mode gives identical values for every
    ``workers=k`` — but the RNG regime bit (``workers=None``'s legacy serial
    stream vs the blocked mode) is included, because those two regimes
    compute different estimates for the same seed.

    ``bound_params`` is the parameter binding of a
    :meth:`repro.api.Executable.bind` executable; it enters the payload only
    when given (``None`` for ordinary tasks), so every hash minted before
    parametric circuits existed is unchanged while two bindings of one
    parametric executable hash differently.

    >>> from repro.backends import SimulationTask
    >>> a = task_config_hash("tn", SimulationTask(seed=7, workers=1))
    >>> a == task_config_hash("tn", SimulationTask(seed=7, workers=8))
    True
    >>> a == task_config_hash("tn", SimulationTask(seed=7, workers=None))
    False
    >>> a == task_config_hash("tn", SimulationTask(seed=8, workers=1))
    False
    >>> b = task_config_hash("tn", SimulationTask(seed=7, workers=1),
    ...                      bound_params={"gamma0": 0.5})
    >>> b != a
    True
    """
    payload = structural_config_payload(backend, task, backend_options)
    payload.update(
        {
            "num_samples": task.num_samples,
            "level": task.level,
            "seed": task.seed,
            "rng_regime": "serial" if task.workers is None else "blocked",
            "keep_samples": task.keep_samples,
        }
    )
    if bound_params is not None:
        payload["bound_params"] = {
            str(name): float(value) for name, value in dict(bound_params).items()
        }
    return hash_payload(payload)


@dataclass(frozen=True)
class SimulationResult:
    """Uniform outcome of one simulation dispatched through :mod:`repro.api`."""

    #: Canonical name of the backend that produced the value.
    backend: str
    #: The fidelity value (estimate for stochastic backends).
    value: float
    #: Statistical standard error (0 for deterministic backends).
    standard_error: float = 0.0
    #: Theorem-1 a-priori bound on the approximation error (None when the
    #: backend provides no such guarantee).
    error_bound: float | None = None
    #: Wall-clock time of the run.
    elapsed_seconds: float = 0.0
    #: Monte-Carlo samples drawn (None for deterministic backends).
    num_samples: int | None = None
    #: Tensor-network contractions performed (None when not applicable).
    num_contractions: int | None = None
    #: The RNG seed that actually drove the run (resolved by the session, so
    #: a recorded result can always be reproduced).
    seed: int | None = None
    #: Device the backend's hot path executed on ("cpu" unless a device-capable
    #: backend ran with an explicit or session-default device).
    device: str = "cpu"
    #: Content hash of the task configuration (see :func:`task_config_hash`).
    config_hash: str = ""
    #: True when the one-time work behind this result (plan search, noise
    #: binding, transpilation) was reused from a compiled
    #: :class:`~repro.api.Executable` rather than performed for this call.
    cache_hit: bool = False
    #: Backend-specific extras (level, bond dimensions, …).
    metadata: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def from_backend_result(
        cls,
        result: BackendResult,
        *,
        seed: int | None = None,
        config_hash: str = "",
        cache_hit: bool = False,
        device: str | None = None,
    ) -> "SimulationResult":
        """Lift a backend-layer result into the unified schema."""
        metadata = dict(result.metadata or {})
        error_bound = metadata.get("error_bound")
        return cls(
            backend=result.backend,
            value=result.value,
            standard_error=result.standard_error,
            error_bound=None if error_bound is None else float(error_bound),
            elapsed_seconds=result.elapsed_seconds,
            num_samples=result.num_samples,
            num_contractions=result.num_contractions,
            seed=seed,
            device=device or "cpu",
            config_hash=config_hash,
            cache_hit=cache_hit,
            metadata=metadata,
        )

    # Same normal-approximation interval as the backend layer (duck-typed on
    # value/standard_error), shared rather than re-implemented.
    confidence_interval = BackendResult.confidence_interval

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable view (the schema CLI/sweep/bench records share)."""
        return {
            "backend": self.backend,
            "value": self.value,
            "standard_error": self.standard_error,
            "error_bound": self.error_bound,
            "elapsed_seconds": self.elapsed_seconds,
            "num_samples": self.num_samples,
            "num_contractions": self.num_contractions,
            "seed": self.seed,
            "device": self.device,
            "config_hash": self.config_hash,
            "cache_hit": self.cache_hit,
            "metadata": {str(key): _state_token(value) for key, value in self.metadata.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SimulationResult":
        """Rehydrate a result from its :meth:`to_dict` payload (the inverse).

        Cached or served results stored as JSON come back as full
        :class:`SimulationResult` objects; unknown keys are ignored so newer
        payloads load under older schemas.  Dense-state metadata values were
        reduced to hash tokens by :meth:`to_dict` and stay tokens — the
        round trip is exact on the serialised view:

        >>> result = SimulationResult(backend="tn", value=0.5, seed=7)
        >>> SimulationResult.from_dict(result.to_dict()) == result
        True
        """
        if "backend" not in payload or "value" not in payload:
            raise ValueError("a SimulationResult payload needs 'backend' and 'value'")
        error_bound = payload.get("error_bound")
        num_samples = payload.get("num_samples")
        num_contractions = payload.get("num_contractions")
        seed = payload.get("seed")
        return cls(
            backend=str(payload["backend"]),
            value=float(payload["value"]),
            standard_error=float(payload.get("standard_error", 0.0)),
            error_bound=None if error_bound is None else float(error_bound),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            num_samples=None if num_samples is None else int(num_samples),
            num_contractions=None if num_contractions is None else int(num_contractions),
            seed=None if seed is None else int(seed),
            device=str(payload.get("device", "cpu")),
            config_hash=str(payload.get("config_hash", "")),
            cache_hit=bool(payload.get("cache_hit", False)),
            metadata=dict(payload.get("metadata", {})),
        )
