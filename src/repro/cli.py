"""Command-line interface.

Provides a small reproducibility tool around the library's main entry points::

    python -m repro.cli simulate      --circuit qaoa_9 --noises 6 --level 1
    python -m repro.cli compare       --circuit hf_6   --noises 4 --backends all
    python -m repro.cli list-backends
    python -m repro.cli verify        --families all --cases 200 --seed 7
    python -m repro.cli sweep run     benchmarks/specs/table3.yaml
    python -m repro.cli sweep run     benchmarks/specs/table3_large.yaml --shards 4
    python -m repro.cli sweep run     spec.yaml --shard 2/4 --out part2.jsonl
    python -m repro.cli sweep merge   merged.jsonl part1.jsonl part2.jsonl
    python -m repro.cli sweep digest  merged.jsonl
    python -m repro.cli sweep list
    python -m repro.cli sweep report  sweep_results/table3.jsonl
    python -m repro.cli sweep report  part1.jsonl part2.jsonl
    python -m repro.cli replay        verify_artifacts/<artifact>.json
    python -m repro.cli decompose     --channel depolarizing --parameter 0.01
    python -m repro.cli bound         --noises 20 --rate 0.001 --level 1
    python -m repro.cli serve         --port 8780 --max-inflight 4
    python -m repro.cli serve         --smoke 5

``simulate`` runs the approximation algorithm on a benchmark circuit with the
paper's fault model, ``compare`` batch-dispatches the selected registered
backends on the same instance through one :class:`repro.api.Session`,
``list-backends`` prints the registry's capability table, ``verify`` runs
the differential conformance harness (:mod:`repro.verify`) and ``replay``
re-checks one of its failure artifacts, ``sweep`` runs/lists/reports
declarative experiment grids (:mod:`repro.sweeps`), ``decompose`` prints the
SVD decomposition of a noise channel, ``bound`` evaluates the Theorem-1
formulas without any simulation, and ``serve`` runs the multi-tenant HTTP
serving layer (:mod:`repro.serve`; ``--smoke SECONDS`` self-drives a short
load drill and exits nonzero on any hard error).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.analysis import format_table
from repro.api import Session, apply_noise
from repro.backends import capability_table, get_backend, resolve_backends
from repro.circuits.library import benchmark_circuit
from repro.core import contraction_count, decompose_noise, theorem1_error_bound
from repro.noise import CHANNEL_FACTORIES as _CHANNEL_FACTORIES
from repro.noise import SYCAMORE_LIKE_SPEC

__all__ = ["main", "build_parser"]


def _make_noisy_circuit(args) -> object:
    circuit = benchmark_circuit(
        args.circuit,
        seed=args.seed,
        native_gates=not args.composite_gates,
        parametric=getattr(args, "parametric", False),
    )
    if args.noises <= 0:
        return circuit
    return apply_noise(
        circuit,
        {
            "channel": args.channel,
            "parameter": args.parameter,
            "count": args.noises,
            "seed": args.seed,
        },
    )


def _resolve_binding(circuit, args) -> dict:
    """Parse ``--param name=value`` flags and check them against the circuit.

    Fails fast (before any compile) when parameters are missing or the flags
    are malformed, so both ``simulate`` and ``compare`` report one clear
    error instead of a per-backend failure table.
    """
    from repro.circuits.parameters import circuit_parameters
    from repro.utils.validation import ValidationError

    binding = {}
    for entry in getattr(args, "param", None) or []:
        name, sep, value = entry.partition("=")
        if not sep or not name:
            raise ValidationError(f"--param expects NAME=VALUE, got {entry!r}")
        try:
            binding[name] = float(value)
        except ValueError as exc:
            raise ValidationError(f"--param {name}: invalid value {value!r}") from exc
    free = sorted(circuit_parameters(circuit))
    if binding and not free:
        raise ValidationError(
            "--param given but the circuit has no free parameters "
            "(use --parametric with a qaoa_N or hf_N benchmark)"
        )
    missing = sorted(set(free) - set(binding))
    if missing:
        raise ValidationError(
            f"circuit has free parameters {free}; bind them with "
            f"--param name=value (missing: {', '.join(missing)})"
        )
    return binding


def _cmd_simulate(args) -> int:
    import time

    circuit = _make_noisy_circuit(args)
    binding = _resolve_binding(circuit, args)
    print(circuit.summary())
    passes = not args.no_passes
    with Session(passes=passes, device=args.device) as session:
        start = time.perf_counter()
        executable = session.compile(circuit, backend="approximation", level=args.level)
        if binding:
            # Structure-dependent work is done; bind swaps in the values.
            executable = executable.bind(binding)
        compile_seconds = time.perf_counter() - start
        pass_info = executable.describe().get("passes") or {}
        stats = pass_info.get("stats")
        if stats:
            print(
                f"passes           = fused {stats['gates_fused']}, "
                f"folded {stats['channels_folded']}, pruned {stats['sites_pruned']} "
                f"({stats['gates_before']}g/{stats['noises_before']}n -> "
                f"{stats['gates_after']}g/{stats['noises_after']}n, "
                f"{pass_info['seconds']:.3f} s)"
            )
        elif not passes:
            print("passes           = disabled (--no-passes)")
        result = executable.run()
        print(f"A({result.metadata['level']})            = {result.value:.10f}")
        print(f"Theorem-1 bound  = {result.error_bound:.3e}")
        print(f"contractions     = {result.num_contractions}")
        print(f"compile          = {compile_seconds:.3f} s (one-time)")
        print(f"elapsed          = {result.elapsed_seconds:.3f} s")
        if args.repeat > 1:
            # Hot path: the compiled executable serves every further request.
            cached_start = time.perf_counter()
            for _ in range(args.repeat - 1):
                repeat = executable.run()
                assert repeat.value == result.value  # bit-identical serving
            cached = (time.perf_counter() - cached_start) / (args.repeat - 1)
            # Cold path: what each request costs when every call recompiles.
            if binding:
                from repro.circuits.parameters import substitute

                cold_circuit = substitute(circuit, binding)
            else:
                cold_circuit = circuit
            with Session(plan_cache_size=0, passes=passes, device=args.device) as cold:
                uncached_start = time.perf_counter()
                for _ in range(args.repeat - 1):
                    cold.run(cold_circuit, backend="approximation", level=args.level)
                uncached = (time.perf_counter() - uncached_start) / (args.repeat - 1)
            print(f"\nrepeated execution x{args.repeat} (compile once, then run):")
            print(f"  per call, compiled   = {cached:.4f} s")
            print(f"  per call, recompiled = {uncached:.4f} s")
            print(f"  amortised speedup    = {uncached / max(cached, 1e-12):.1f}x")
    return 0


def _cmd_compare(args) -> int:
    circuit = _make_noisy_circuit(args)
    binding = _resolve_binding(circuit, args)
    print(circuit.summary())
    names = resolve_backends(args.backends, circuit)
    if not names:
        print("error: no backends selected (see 'list-backends' for the registry)",
              file=sys.stderr)
        return 2
    rows = []
    # max_parallel=1 keeps the Time(s) column meaningful: each backend is
    # timed alone (as the old sequential loop did), while the submit() batch
    # still exercises the session's async front door end to end.
    with Session(
        workers=args.workers,
        max_parallel=1,
        passes=not args.no_passes,
        device=args.device,
    ) as session:
        futures = []
        for name in names:
            stochastic = get_backend(name).capabilities.stochastic
            try:
                # Compile eagerly (fail-fast, one plan per backend shared with
                # any later dispatch of the same configuration), execute async.
                executable = session.compile(
                    circuit,
                    backend=name,
                    level=args.level,
                    samples=args.samples,
                    seed=args.seed,
                    workers=args.workers,
                )
                if binding:
                    executable = executable.bind(binding)
                future = executable.submit()
            except Exception as exc:  # noqa: BLE001 - report and continue
                futures.append((name, stochastic, None, None, exc))
                continue
            futures.append((name, stochastic, executable, future, None))
        for name, stochastic, executable, future, error in futures:
            if future is not None:
                try:
                    result = future.result()
                except Exception as exc:  # noqa: BLE001 - report and continue
                    error = exc
            if error is not None:
                rows.append([name, f"failed ({type(error).__name__})", None, None])
                continue
            stderr = result.standard_error if stochastic else None
            # One-shot timing (the old sequential-loop semantics): the
            # backend's compile share counts toward its Time(s) column.
            elapsed = result.elapsed_seconds + executable.compile_seconds
            rows.append([name, result.value, stderr, elapsed])
    print(
        format_table(
            ["Backend", "Fidelity", "Std. error", "Time (s)"],
            rows,
            title="Backend comparison (registry dispatch)",
        )
    )
    return 0


def _cmd_list_backends(args) -> int:
    print(
        format_table(
            ["Backend", "Noisy", "Exact", "Stochastic", "Max qubits",
             "Product states only", "Device"],
            capability_table(),
            title="Registered simulation backends",
        )
    )
    return 0


def _cmd_verify(args) -> int:
    from repro.verify import ConformanceRunner

    runner = ConformanceRunner(
        families=args.families,
        cases=args.cases,
        seed=args.seed,
        samples=args.samples,
        level=args.level,
        workers=args.workers,
        artifact_dir=args.artifacts,
        shrink=not args.no_shrink,
        passes=not args.no_passes,
        device=args.device,
    )
    report = runner.run(progress=print if not args.quiet else None)
    print(report.summary_table())
    if report.violations:
        print(f"\n{len(report.violations)} violation(s); artifacts:", file=sys.stderr)
        for path in report.artifacts:
            print(f"  {path}", file=sys.stderr)
        return 1
    print(f"\nall {report.checks} checks passed ({report.skipped} skipped)")
    return 0


def _cmd_replay(args) -> int:
    from repro.verify import load_artifact, replay_artifact

    failing = 0
    for path in args.artifacts:
        artifact = load_artifact(path)
        still = replay_artifact(artifact)
        status = "STILL FAILING" if still else "fixed"
        print(f"{path}: {artifact['oracle']} {artifact['family']}#{artifact['case_index']} "
              f"-> {status}")
        failing += int(still)
    return 1 if failing else 0


#: Directories ``sweep list`` searches when no paths are given.
_DEFAULT_SPEC_DIRS = ("benchmarks/specs", "examples/specs")


def _parse_inject_crash(entries) -> dict:
    """Parse repeated ``--inject-crash SHARD:AFTER`` flags (testing hook)."""
    from repro.utils.validation import ValidationError

    inject = {}
    for entry in entries or []:
        shard, sep, after = str(entry).partition(":")
        if not sep:
            raise ValidationError(f"--inject-crash expects SHARD:AFTER, got {entry!r}")
        try:
            inject[int(shard)] = int(after)
        except ValueError as exc:
            raise ValidationError(f"--inject-crash expects integers, got {entry!r}") from exc
    return inject


def _cmd_sweep_run(args) -> int:
    from repro.sweeps import load_spec, pivot_table, summary_table, SweepRunner

    if args.shards is not None:
        return _sweep_run_sharded(args)
    spec = load_spec(args.spec)
    out = Path(args.out) if args.out else Path("sweep_results") / f"{spec.name}.jsonl"
    runner = SweepRunner(
        spec,
        out_path=out,
        workers=args.workers,
        resume=not args.fresh,
        max_cells=args.max_cells,
        shard=args.shard,
        crash_after=args.crash_after,
    )
    if args.shard is not None:
        print(f"sweep {spec.name!r} shard {runner.shard}: "
              f"{len(runner.cells())}/{len(spec.cells())} cells -> {out}")
    else:
        print(f"sweep {spec.name!r}: {len(spec.cells())} cells -> {out}")
    result = runner.run(progress=print)
    print()
    print(
        summary_table(
            result.records,
            reference=spec.reference,
            title=f"Sweep {spec.name}: {spec.description or 'summary'}",
        )
    )
    if spec.reference is not None:
        print()
        print(
            pivot_table(
                result.records,
                metric="precision",
                reference=spec.reference,
                title=f"Precision (TVD vs {spec.reference})",
            )
        )
    print(f"\nrecords: {result.path} ({result.executed} executed, {result.skipped} resumed)")
    if result.plan_cache:
        print(
            f"plan cache: {result.plan_cache['hits']} hits, "
            f"{result.plan_cache['misses']} misses, "
            f"{result.plan_cache['evictions']} evictions"
        )
    failed = [record for record in result.records if record.get("status") == "failed"]
    if failed:
        print(f"error: {len(failed)} cell(s) failed; re-running 'sweep run' retries them",
              file=sys.stderr)
        return 1
    return 0


def _sweep_run_sharded(args) -> int:
    """Coordinator mode: dispatch N shard workers, re-dispatch crashes, merge."""
    from repro.dist import DistCoordinator, DistError
    from repro.sweeps import load_spec, summary_table

    spec = load_spec(args.spec)
    out = Path(args.out) if args.out else Path("sweep_results") / f"{spec.name}.jsonl"
    if args.fresh:
        for stale in out.parent.glob(f"{out.stem}.shard-*-of-{args.shards}.jsonl"):
            stale.unlink()
    coordinator = DistCoordinator(
        args.spec,
        args.shards,
        out_path=out,
        workers_per_shard=args.workers,
        max_rounds=args.max_rounds,
        inject_crash=_parse_inject_crash(args.inject_crash),
    )
    print(f"sweep {spec.name!r}: {len(spec.cells())} cells as {args.shards} shards -> {out}")
    try:
        result = coordinator.run(progress=print)
    except DistError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print()
    print(
        summary_table(
            list(result.records.values()),
            reference=spec.reference,
            title=f"Sweep {spec.name}: {spec.description or 'summary'}",
        )
    )
    attempts = {str(state.shard): state.attempts for state in result.shards}
    print(f"\nrecords: {result.out_path} ({result.rounds} round(s), "
          f"attempts per shard: {attempts})")
    failed = [r for r in result.records.values() if r.get("status") == "failed"]
    if failed:
        print(f"error: {len(failed)} cell(s) failed after {args.max_rounds} round(s)",
              file=sys.stderr)
        return 1
    return 0


def _cmd_sweep_merge(args) -> int:
    from repro.dist import merge_records

    result = merge_records(args.inputs, args.out)
    print(f"merged {len(result.cells)} record(s) from {len(args.inputs)} file(s) "
          f"-> {result.path}")
    if result.duplicates:
        print(f"deduplicated {len(result.duplicates)} identical duplicate record(s)")
    if result.missing:
        print(f"note: {len(result.missing)} cell(s) of the grid not recorded yet "
              "(merge again with more shard files, or 'sweep run' the merged "
              "file to fill them in)")
    return 0


def _cmd_sweep_digest(args) -> int:
    from repro.dist import records_digest

    for path in args.records:
        print(f"{records_digest(path)}  {path}")
    return 0


def _spec_files(directory: Path) -> list:
    return sorted(
        path for suffix in ("*.yaml", "*.yml", "*.json") for path in directory.glob(suffix)
    )


def _cmd_sweep_list(args) -> int:
    from repro.sweeps import load_spec

    paths = []
    if args.paths:
        for entry in args.paths:
            path = Path(entry)
            if path.is_dir():
                paths.extend(_spec_files(path))
            else:
                paths.append(path)
    else:
        for directory in _DEFAULT_SPEC_DIRS:
            path = Path(directory)
            if path.is_dir():
                paths.extend(_spec_files(path))
    if not paths:
        print("no sweep specs found (searched: " + ", ".join(_DEFAULT_SPEC_DIRS) + ")",
              file=sys.stderr)
        return 2
    rows = []
    invalid = 0
    for path in paths:
        try:
            spec = load_spec(path)
        except Exception as exc:  # noqa: BLE001 - a broken spec should not hide the rest
            rows.append([str(path), "-", "-", f"invalid: {exc}"])
            invalid += 1
            continue
        rows.append([str(path), spec.name, len(spec.cells()), spec.description])
    print(format_table(["Spec", "Name", "Cells", "Description"], rows,
                       title="Sweep specifications"))
    return 1 if invalid else 0


def _cmd_sweep_report(args) -> int:
    from repro.dist.merge import combine_scans
    from repro.sweeps import pivot_table, scan_records, shard_table, summary_table

    # One or many record files (shard parts, a merged file, or any mix of the
    # same spec): combine with the merge layer's validation, so mismatched
    # specs or conflicting duplicates fail here instead of rendering nonsense.
    scans = [scan_records(path) for path in args.records]
    spec, cells, _ = combine_scans(scans)
    records = list(cells.values())
    reference = spec.reference
    print(
        summary_table(
            records,
            reference=reference,
            title=f"Sweep {spec.name}: {spec.description or 'summary'}",
        )
    )
    print()
    print(
        pivot_table(
            records,
            metric=args.pivot,
            reference=reference,
            title=f"Per-backend {args.pivot}",
        )
    )
    sharded = any(record.get("shard") for record in records) or any(
        scan.header.get("shard") for scan in scans
    )
    if sharded:
        print()
        print(shard_table(spec, records))
    for scan in scans:
        if scan.torn_offset is not None:
            print(f"\nnote: {scan.path} has a torn final line (crashed worker); "
                  "its cell re-runs on resume")
    missing = len(spec.cells()) - len(records)
    if missing > 0:
        print(f"\nnote: {missing} cell(s) not recorded yet (run 'sweep run' to resume)")
    return 0


def _cmd_decompose(args) -> int:
    if args.channel == "superconducting":
        channel = SYCAMORE_LIKE_SPEC.gate_noise(1, rng=args.seed)
    else:
        channel = _CHANNEL_FACTORIES[args.channel](args.parameter)
    decomposition = decompose_noise(channel)
    print(f"channel          : {channel.name}")
    print(f"noise rate       : {decomposition.noise_rate:.6e}")
    print(f"singular values  : {[f'{v:.6f}' for v in decomposition.singular_values]}")
    print(f"dominant error   : {decomposition.dominant_error():.6e}  (Lemma-2 bound "
          f"{4 * decomposition.noise_rate:.6e})")
    if args.verbose:
        for index, (u, v) in enumerate(decomposition.terms):
            print(f"-- term {index}: U =\n{np.round(u, 6)}\nV =\n{np.round(v, 6)}")
    return 0


def _cmd_bound(args) -> int:
    rows = []
    for level in range(args.max_level + 1):
        rows.append(
            [
                level,
                theorem1_error_bound(args.noises, args.rate, level),
                contraction_count(args.noises, level),
            ]
        )
    print(
        format_table(
            ["Level", "Theorem-1 bound", "Contractions"],
            rows,
            title=f"N = {args.noises} noises, rate p = {args.rate:g}",
        )
    )
    return 0


def _serve_smoke(args) -> int:
    import concurrent.futures
    import threading
    import time

    from repro.serve import BackgroundServer

    duration = args.smoke
    clients = args.smoke_clients
    counts: dict = {}
    lock = threading.Lock()
    with BackgroundServer(
        host=args.host,
        port=args.port,
        seed=args.seed,
        workers=args.workers,
        max_inflight=args.max_inflight,
        queue_limit=args.queue_limit,
        default_timeout=args.timeout,
        plan_cache_size=args.plan_cache_size,
    ) as bg:
        print(f"smoke: {clients} client(s) x {duration:g}s against {bg.url}")
        deadline = time.perf_counter() + duration

        def drive(index: int) -> int:
            sent = 0
            payload = {
                "circuit": args.smoke_circuit,
                "backend": "statevector",
                "tenant": f"smoke-{index}",
            }
            while time.perf_counter() < deadline:
                _, response = bg.request(payload)
                with lock:
                    status = response.get("status", "error")
                    counts[status] = counts.get(status, 0) + 1
                sent += 1
            return sent

        with concurrent.futures.ThreadPoolExecutor(max_workers=clients) as pool:
            total = sum(pool.map(drive, range(clients)))
        stats = bg.stats()
    ok = counts.get("ok", 0)
    errors = total - ok
    latency = stats["server"]["latency_ms"]
    cache = stats["plan_cache"]
    print(f"requests         = {total} ({counts})")
    print(f"throughput       = {ok / duration:.1f} ok req/s")
    print(f"latency          = p50 {latency['p50_ms']:.2f} ms, "
          f"p99 {latency['p99_ms']:.2f} ms")
    print(f"plan cache       = {cache['hits']} hits, {cache['misses']} misses, "
          f"{cache['coalesced']} coalesced")
    if ok == 0 or errors:
        print(f"error: smoke failed ({ok} ok, {errors} non-ok)", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve import ReproServer

    if args.smoke is not None:
        return _serve_smoke(args)

    async def _run() -> None:
        server = ReproServer(
            seed=args.seed,
            workers=args.workers,
            max_inflight=args.max_inflight,
            queue_limit=args.queue_limit,
            default_timeout=args.timeout,
            plan_cache_size=args.plan_cache_size,
            max_requests=args.max_requests,
        )
        host, port = await server.start_http(args.host, args.port)
        print(f"serving on http://{host}:{port} "
              f"(POST /simulate, GET /stats, GET /healthz)")
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("\nshutdown requested")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_circuit_options(sub):
        sub.add_argument("--circuit", default="qaoa_9",
                         help="benchmark name: qaoa_N, hf_N, inst_RxC_D, ghz_N, qft_N")
        sub.add_argument("--noises", type=int, default=6, help="number of injected noises")
        sub.add_argument("--channel", default="superconducting",
                         choices=sorted(_CHANNEL_FACTORIES) + ["superconducting"])
        sub.add_argument("--parameter", type=float, default=0.001,
                         help="channel parameter (ignored for the superconducting model)")
        sub.add_argument("--seed", type=int, default=7)
        sub.add_argument("--no-passes", action="store_true",
                         help="skip the optimizing compiler passes (fusion, "
                              "noise folding, lightcone pruning)")
        sub.add_argument("--composite-gates", action="store_true",
                         help="use composite gates (ZZ/Givens) instead of the native decomposition")
        sub.add_argument("--parametric", action="store_true",
                         help="build the benchmark with symbolic parameters "
                              "(qaoa_N / hf_N); bind them with --param")
        sub.add_argument("--param", action="append", metavar="NAME=VALUE",
                         help="bind one parameter of a --parametric circuit "
                              "(repeatable, e.g. --param gamma0=0.3)")
        sub.add_argument("--device", default=None,
                         help="execution device for device-capable backends "
                              "(cpu, fake_gpu, cuda, auto; default: REPRO_DEVICE or cpu)")

    simulate = subparsers.add_parser("simulate", help="run the approximation algorithm")
    add_circuit_options(simulate)
    simulate.add_argument("--level", type=int, default=1)
    simulate.add_argument("--repeat", type=int, default=1,
                          help="run the compiled instance N times and report "
                               "compile-once vs recompile-per-call timings")
    simulate.set_defaults(func=_cmd_simulate)

    compare = subparsers.add_parser(
        "compare", help="run registered backends on the same instance"
    )
    add_circuit_options(compare)
    compare.add_argument("--level", type=int, default=1,
                         help="approximation level for the 'approximation' backend")
    compare.add_argument("--backends", default="all",
                         help="comma-separated registry names, or 'all' for every "
                              "backend applicable to the circuit")
    compare.add_argument("--samples", type=int, default=1000,
                         help="trajectory count for the stochastic backends")
    compare.add_argument("--workers", type=int, default=None,
                         help="process count for the batched trajectory engine")
    compare.set_defaults(func=_cmd_compare)

    list_backends = subparsers.add_parser(
        "list-backends", help="print the backend registry's capability table"
    )
    list_backends.set_defaults(func=_cmd_list_backends)

    verify = subparsers.add_parser(
        "verify", help="run the differential conformance harness (repro.verify)"
    )
    verify.add_argument("--families", default="all",
                        help="comma-separated workload families, or 'all' "
                             "(brickwork, clifford_t, qaoa_like, ghz_ladder, "
                             "deep_narrow, wide_shallow)")
    verify.add_argument("--cases", type=int, default=50,
                        help="number of generated workloads (round-robin over families)")
    verify.add_argument("--seed", type=int, default=7,
                        help="base seed; the whole run is reproducible from it")
    verify.add_argument("--samples", type=int, default=320,
                        help="trajectory count for the stochastic checks")
    verify.add_argument("--level", type=int, default=1,
                        help="approximation level for the approximation backend")
    verify.add_argument("--workers", type=int, default=2,
                        help="shared process-pool size (>= 2; also the alternate "
                             "worker count of the determinism oracle)")
    verify.add_argument("--artifacts", default="verify_artifacts",
                        help="directory for failure artifacts (created on demand)")
    verify.add_argument("--no-shrink", action="store_true",
                        help="skip minimising failing circuits")
    verify.add_argument("--no-passes", action="store_true",
                        help="run the oracles against the raw (unoptimized) pipeline")
    verify.add_argument("--quiet", action="store_true",
                        help="suppress per-case progress lines")
    verify.add_argument("--device", default=None,
                        help="session device for device-capable backends "
                             "(cpu, fake_gpu, cuda, auto; default: REPRO_DEVICE or cpu)")
    verify.set_defaults(func=_cmd_verify)

    replay = subparsers.add_parser(
        "replay", help="re-check conformance failure artifacts"
    )
    replay.add_argument("artifacts", nargs="+", help="artifact JSON file(s)")
    replay.set_defaults(func=_cmd_replay)

    sweep = subparsers.add_parser(
        "sweep", help="run/list/report declarative experiment sweeps (repro.sweeps)"
    )
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)

    sweep_run = sweep_sub.add_parser("run", help="execute a sweep spec (YAML/JSON)")
    sweep_run.add_argument("spec", help="path to the sweep spec file")
    sweep_run.add_argument("--out", default=None,
                           help="JSONL record file (default: sweep_results/<name>.jsonl)")
    sweep_run.add_argument("--workers", type=int, default=None,
                           help="shared process-pool size for the stochastic backends "
                                "(values are identical for every setting)")
    sweep_run.add_argument("--fresh", action="store_true",
                           help="ignore existing records and start over")
    sweep_run.add_argument("--max-cells", type=int, default=None,
                           help="stop after this many pending cells (smoke runs)")
    sharding = sweep_run.add_mutually_exclusive_group()
    sharding.add_argument("--shard", default=None, metavar="K/N",
                          help="worker mode: execute only shard K of an N-way "
                               "deterministic partition of the grid (combine "
                               "the partial files with 'sweep merge')")
    sharding.add_argument("--shards", type=int, default=None, metavar="N",
                          help="coordinator mode: run the grid as N local "
                               "worker processes with crash-safe re-dispatch, "
                               "then merge into --out")
    sweep_run.add_argument("--max-rounds", type=int, default=3,
                           help="dispatch rounds before --shards gives up on a "
                                "crashing shard (default: 3)")
    # Fault-injection hooks for the crash-safety drills (tests, CI smoke).
    sweep_run.add_argument("--crash-after", type=int, default=None,
                           help=argparse.SUPPRESS)
    sweep_run.add_argument("--inject-crash", action="append", metavar="SHARD:AFTER",
                           help=argparse.SUPPRESS)
    sweep_run.set_defaults(func=_cmd_sweep_run)

    sweep_list = sweep_sub.add_parser("list", help="list available sweep specs")
    sweep_list.add_argument("paths", nargs="*",
                            help="spec files or directories (default: "
                                 + ", ".join(_DEFAULT_SPEC_DIRS) + ")")
    sweep_list.set_defaults(func=_cmd_sweep_list)

    sweep_report = sweep_sub.add_parser(
        "report", help="summarise a sweep's JSONL records"
    )
    sweep_report.add_argument("records", nargs="+",
                              help="JSONL record file(s): one sweep output, or "
                                   "several shard/partial files of one spec")
    sweep_report.add_argument("--pivot", choices=("runtime", "precision"), default="runtime",
                              help="metric of the per-backend pivot table")
    sweep_report.set_defaults(func=_cmd_sweep_report)

    sweep_merge = sweep_sub.add_parser(
        "merge", help="merge shard/partial record files into one canonical file"
    )
    sweep_merge.add_argument("out", help="merged JSONL output file")
    sweep_merge.add_argument("inputs", nargs="+",
                             help="partial record files (shard outputs, resumed "
                                  "partials, or previously merged files)")
    sweep_merge.set_defaults(func=_cmd_sweep_merge)

    sweep_digest = sweep_sub.add_parser(
        "digest", help="content digest of record files (volatile fields stripped)"
    )
    sweep_digest.add_argument("records", nargs="+", help="JSONL record file(s)")
    sweep_digest.set_defaults(func=_cmd_sweep_digest)

    decompose = subparsers.add_parser("decompose", help="SVD-decompose a noise channel")
    decompose.add_argument("--channel", default="depolarizing",
                           choices=sorted(_CHANNEL_FACTORIES) + ["superconducting"])
    decompose.add_argument("--parameter", type=float, default=0.01)
    decompose.add_argument("--seed", type=int, default=7)
    decompose.add_argument("--verbose", action="store_true")
    decompose.set_defaults(func=_cmd_decompose)

    serve = subparsers.add_parser(
        "serve", help="run the multi-tenant HTTP serving layer (repro.serve)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8780,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--seed", type=int, default=0,
                       help="server seed: root of every tenant's deterministic "
                            "seed stream")
    serve.add_argument("--workers", type=int, default=None,
                       help="process-pool size for the stochastic backends")
    serve.add_argument("--max-inflight", type=int, default=4,
                       help="concurrent executions (worker thread count)")
    serve.add_argument("--queue-limit", type=int, default=16,
                       help="admitted requests held beyond --max-inflight before "
                            "shedding with 'overloaded'")
    serve.add_argument("--timeout", type=float, default=30.0,
                       help="default per-request budget in seconds")
    serve.add_argument("--plan-cache-size", type=int, default=128)
    serve.add_argument("--max-requests", type=int, default=None,
                       help="shut down after this many responses (drills)")
    serve.add_argument("--smoke", type=float, default=None, metavar="SECONDS",
                       help="instead of serving, self-drive a load drill for "
                            "SECONDS and exit nonzero on any non-ok response")
    serve.add_argument("--smoke-clients", type=int, default=4,
                       help="concurrent clients of the --smoke drill")
    serve.add_argument("--smoke-circuit", default="ghz_10",
                       help="benchmark circuit of the --smoke drill")
    serve.set_defaults(func=_cmd_serve)

    bound = subparsers.add_parser("bound", help="evaluate the Theorem-1 bound")
    bound.add_argument("--noises", type=int, required=True)
    bound.add_argument("--rate", type=float, required=True)
    bound.add_argument("--max-level", type=int, default=3)
    bound.set_defaults(func=_cmd_bound)
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    from repro.utils.validation import ValidationError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. `... | head`: exit quietly like other CLIs
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
