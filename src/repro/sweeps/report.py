"""Summary tables over sweep records (the paper's table layouts).

Two views over a list of cell records:

* :func:`summary_table` — one row per cell with fidelity, standard error,
  total-variation distance to the spec's reference backend and runtime
  (the generic "what did this sweep measure" view);
* :func:`pivot_table` — one row per (circuit, noise) with one column per
  backend, holding runtime or precision — the layout of Tables II and III
  (``MO`` marks memory-out cells, as in the paper).

Both render through :func:`repro.analysis.format_table`; the precision
column is the total-variation distance of the Bernoulli distributions
induced by the fidelities (:func:`repro.analysis.total_variation_distance`),
which for scalar fidelities reduces to the absolute error ``|v − r|`` the
paper reports — computed in that closed form here.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.analysis import format_seconds, format_table

__all__ = ["pivot_table", "reference_values", "shard_table", "summary_table"]

_STATUS_MARKS = {"memory_out": "MO", "unsupported": "MO", "failed": "FAILED"}


def _row_key(record: Mapping[str, Any]) -> Tuple[str, str]:
    return (record["circuit"], record["noise"])


def reference_values(
    records: Sequence[Mapping[str, Any]], reference: str | None
) -> Dict[Tuple[str, str], float]:
    """Fidelity of the reference backend per (circuit, noise) row, when present."""
    values: Dict[Tuple[str, str], float] = {}
    if reference is None:
        return values
    for record in records:
        if record.get("backend") == reference and record.get("status") == "ok":
            values.setdefault(_row_key(record), record["value"])
    return values


def _precision(record: Mapping[str, Any], references: Mapping[Tuple[str, str], float]):
    if record.get("status") != "ok":
        return None
    reference = references.get(_row_key(record))
    if reference is None:
        return None
    # TVD of the Bernoulli pairs [v, 1-v] vs [r, 1-r] reduces to |v - r|;
    # computed directly so estimates that legitimately overshoot 1 (the
    # approximation within its Theorem-1 bound, importance-weighted TN
    # trajectories) cannot trip the distribution validator.
    return abs(record["value"] - reference)


def summary_table(
    records: Sequence[Mapping[str, Any]],
    reference: str | None = None,
    title: str | None = None,
) -> str:
    """Per-cell summary: fidelity / std error / TVD vs reference / runtime.

    Records carrying ``shard`` dispatch provenance (``--shard K/N`` workers,
    merged distributed runs) get an extra Shard column; unsharded sweeps
    render exactly as before.
    """
    references = reference_values(records, reference)
    sharded = any(record.get("shard") for record in records)
    rows: List[List[Any]] = []
    for record in records:
        status = record.get("status")
        if status == "ok":
            value = record.get("value")
            stderr = record.get("standard_error") or None
            elapsed = format_seconds(record.get("elapsed_seconds"))
        else:
            value = _STATUS_MARKS.get(status, status)
            stderr = None
            elapsed = "-"
        rows.append(
            [
                record["circuit"],
                record["noise"],
                record.get("backend_label", record.get("backend")),
                record.get("level"),
                record.get("samples"),
                value,
                stderr,
                _precision(record, references),
                elapsed,
            ]
            + ([record.get("shard", "-")] if sharded else [])
        )
    headers = [
        "Circuit",
        "Noise",
        "Backend",
        "Level",
        "Samples",
        "Fidelity",
        "Std. error",
        f"TVD vs {reference}" if reference else "TVD vs ref",
        "Time (s)",
    ] + (["Shard"] if sharded else [])
    return format_table(headers, rows, title=title)


def shard_table(
    spec,
    records: Sequence[Mapping[str, Any]],
    title: str | None = None,
) -> str:
    """Per-shard completion/progress summary of a (partially) sharded sweep.

    One row per shard seen in the records (plus ``-`` for records written by
    unsharded runs): how many of the shard's assigned cells are recorded,
    split by status, and how many are still missing — so a distributed sweep
    is inspectable mid-flight from whatever partial files exist.
    """
    from repro.dist.partition import ShardSpec, shard_index

    spec_hash = spec.spec_hash()
    grid_ids = [cell.cell_id for cell in spec.cells()]
    by_shard: Dict[str, List[Mapping[str, Any]]] = {}
    for record in records:
        by_shard.setdefault(record.get("shard") or "-", []).append(record)

    def sort_key(label: str) -> Tuple[int, str]:
        return (0, label) if label == "-" else (1, label)

    rows: List[List[Any]] = []
    for label in sorted(by_shard, key=sort_key):
        group = by_shard[label]
        counts: Dict[str, int] = {}
        for record in group:
            status = record.get("status", "?")
            counts[status] = counts.get(status, 0) + 1
        if label == "-":
            # Unsharded records own whatever no shard claims; "missing" is
            # only meaningful against the whole grid, reported by the caller.
            assigned: Any = "-"
            missing: Any = "-"
        else:
            shard = ShardSpec.parse(label)
            expected = [
                cell_id
                for cell_id in grid_ids
                if shard_index(cell_id, shard.count, spec_hash) == shard.index
            ]
            recorded = {record["cell_id"] for record in group}
            assigned = len(expected)
            missing = len([cell_id for cell_id in expected if cell_id not in recorded])
        rows.append(
            [
                label,
                assigned,
                len(group),
                counts.get("ok", 0),
                counts.get("memory_out", 0) + counts.get("unsupported", 0),
                counts.get("failed", 0),
                missing,
            ]
        )
    headers = ["Shard", "Assigned", "Recorded", "ok", "MO", "failed", "Missing"]
    return format_table(headers, rows, title=title or "Per-shard progress")


def pivot_table(
    records: Sequence[Mapping[str, Any]],
    metric: str = "runtime",
    reference: str | None = None,
    title: str | None = None,
) -> str:
    """Backend-per-column table of ``runtime`` or ``precision`` per grid row.

    This is the shape of the paper's Table II (runtimes, ``MO`` = memory out)
    and of the precision half of Table III.  When several (level, samples)
    variants of a backend exist in a row, the first record wins.
    """
    if metric not in ("runtime", "precision"):
        raise ValueError(f"unknown pivot metric {metric!r}")
    references = reference_values(records, reference)
    backends: List[str] = []
    cells: Dict[Tuple[str, str], Dict[str, Any]] = {}
    meta: Dict[Tuple[str, str], Mapping[str, Any]] = {}
    for record in records:
        label = record.get("backend_label", record.get("backend"))
        if label not in backends:
            backends.append(label)
        key = _row_key(record)
        meta.setdefault(key, record)
        row = cells.setdefault(key, {})
        if label in row:
            continue
        status = record.get("status")
        if status != "ok":
            row[label] = _STATUS_MARKS.get(status, status)
        elif metric == "runtime":
            row[label] = format_seconds(record.get("elapsed_seconds"))
        else:
            row[label] = _precision(record, references)
    has_family = any(meta[key].get("family") for key in cells)
    rows = []
    for key, row in cells.items():
        prefix = ([meta[key].get("family") or ""] if has_family else []) + [key[0], key[1]]
        rows.append(prefix + [row.get(label) for label in backends])
    headers = (["Type"] if has_family else []) + ["Circuit", "Noise"] + backends
    return format_table(headers, rows, title=title)
