"""Declarative sweep specifications: the grid a sweep runs over.

A sweep spec is a plain dict (or a YAML/JSON file holding one) naming a grid
over circuit families, noise models, registered backends, approximation
levels and sample counts.  :func:`load_spec` parses and validates it into a
:class:`SweepSpec`, and :meth:`SweepSpec.cells` expands the grid into the
deterministic list of :class:`SweepCell` instances the runner executes::

    >>> from repro.sweeps import load_spec
    >>> spec = load_spec({
    ...     "name": "demo",
    ...     "grid": {"circuit": "ghz_2", "backend": "statevector"},
    ... })
    >>> [cell.cell_id for cell in spec.cells()]
    ['ghz_2/noiseless/statevector/level=1/samples=1000']

Every grid axis accepts either a scalar or a list; cells are the Cartesian
product in the fixed order circuit x noise x backend x level x samples, so
the cell sequence (and with it the JSONL record order) is reproducible.
Per-cell seeds are derived from the spec's base ``seed`` and the cell's
identity (not its position), so adding a grid point never changes the seeds
of existing cells.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.backends import SimulationTask, resolve_backends
from repro.circuits.circuit import Circuit
from repro.circuits.library import benchmark_circuit
from repro.circuits.qasm import from_qasm
from repro.noise import CHANNEL_FACTORIES as _CHANNEL_FACTORIES
from repro.utils.validation import ValidationError
from repro.xp import KNOWN_DEVICES

__all__ = [
    "BackendSpec",
    "CircuitSpec",
    "NoiseSpec",
    "SweepCell",
    "SweepSpec",
    "load_spec",
    "stable_seed",
]

#: Channels a noise axis entry may name: "none", every single-parameter
#: factory in :data:`repro.noise.CHANNEL_FACTORIES`, and the calibration-style
#: superconducting model (resolved in :mod:`repro.sweeps.runner`).
NOISE_CHANNELS = ("none", *sorted(_CHANNEL_FACTORIES), "superconducting")

_OUTPUT_STATES = ("zero", "ideal")


def stable_seed(*parts: object) -> int:
    """Deterministic 63-bit seed derived from the string forms of ``parts``.

    Stable across processes and Python versions (unlike ``hash``), so sweep
    cells keep their seeds when a grid is extended or records are resumed.
    """
    digest = hashlib.sha256("\x1f".join(str(part) for part in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") % (2**63)


def _require_mapping(value: Any, what: str) -> Mapping:
    if not isinstance(value, Mapping):
        raise ValidationError(f"{what} must be a mapping, got {type(value).__name__}")
    return value


def _check_keys(mapping: Mapping, allowed: Sequence[str], what: str) -> None:
    unknown = sorted(set(mapping) - set(allowed))
    if unknown:
        raise ValidationError(
            f"unknown {what} key(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )


def _as_list(value: Any) -> List:
    if value is None:
        return []
    if isinstance(value, (list, tuple)):
        return list(value)
    return [value]


@dataclass(frozen=True)
class CircuitSpec:
    """One entry of the ``circuit`` axis: a benchmark name or a QASM file.

    ``name`` resolves through :func:`repro.circuits.library.benchmark_circuit`
    (``qaoa_N``, ``hf_N``, ``inst_RxC_D``, ``ghz_N``, ``qft_N``); ``qasm``
    loads an OpenQASM 2.0 file (path relative to the spec file).  ``family``
    is a free-form reporting tag (e.g. the "Type" column of Table II).
    """

    name: str | None = None
    qasm: str | None = None
    seed: int | None = None
    native_gates: bool = True
    family: str | None = None
    parametric: bool = False

    @classmethod
    def parse(cls, entry: Any) -> "CircuitSpec":
        if isinstance(entry, str):
            if entry.endswith(".qasm"):
                return cls(qasm=entry)
            return cls(name=entry)
        entry = _require_mapping(entry, "circuit entry")
        _check_keys(
            entry,
            ("name", "qasm", "seed", "native_gates", "family", "parametric"),
            "circuit",
        )
        spec = cls(
            name=entry.get("name"),
            qasm=entry.get("qasm"),
            seed=None if entry.get("seed") is None else int(entry["seed"]),
            native_gates=bool(entry.get("native_gates", True)),
            family=entry.get("family"),
            parametric=bool(entry.get("parametric", False)),
        )
        if (spec.name is None) == (spec.qasm is None):
            raise ValidationError("a circuit entry needs exactly one of 'name' or 'qasm'")
        if spec.parametric and spec.qasm is not None:
            # QASM files carry their own symbols (rz(2.0*gamma0) parses to a
            # parametric gate); the flag only drives the library builders.
            raise ValidationError(
                "'parametric' applies to named benchmark circuits only; QASM "
                "files are parametric when they contain symbolic parameters"
            )
        return spec

    @property
    def label(self) -> str:
        """Stable reporting/cell-id label (no '/' so cell ids stay parseable)."""
        if self.name is not None:
            return self.name
        return Path(self.qasm).stem

    def build(self, default_seed: int, base_dir: Path | None = None) -> Circuit:
        """Construct the ideal circuit this entry names."""
        if self.qasm is not None:
            path = Path(self.qasm)
            if not path.is_absolute() and base_dir is not None:
                path = base_dir / path
            if not path.exists():
                raise ValidationError(f"QASM file not found: {path}")
            circuit = from_qasm(path.read_text())
            circuit.name = self.label
            return circuit
        seed = default_seed if self.seed is None else self.seed
        return benchmark_circuit(
            self.name,
            seed=seed,
            native_gates=self.native_gates,
            parametric=self.parametric,
        )


@dataclass(frozen=True)
class NoiseSpec:
    """One entry of the ``noise`` axis: which channel to inject, how often.

    ``count`` noises are appended after randomly chosen gates (the paper's
    fault model, :meth:`repro.noise.NoiseModel.insert_random`); ``seed``
    fixes the injection points so every backend of a row sees the *same*
    noisy circuit (defaults to a seed derived from the spec seed).
    """

    channel: str = "none"
    parameter: float = 0.001
    count: int = 0
    seed: int | None = None

    @classmethod
    def parse(cls, entry: Any) -> "NoiseSpec":
        if isinstance(entry, str):
            entry = {"channel": entry}
        entry = _require_mapping(entry, "noise entry")
        _check_keys(entry, ("channel", "parameter", "count", "seed"), "noise")
        spec = cls(
            channel=str(entry.get("channel", "none")),
            parameter=float(entry.get("parameter", 0.001)),
            count=int(entry.get("count", 0)),
            seed=None if entry.get("seed") is None else int(entry["seed"]),
        )
        if spec.channel not in NOISE_CHANNELS:
            raise ValidationError(
                f"unknown noise channel {spec.channel!r}; known: {', '.join(NOISE_CHANNELS)}"
            )
        if spec.channel != "none" and "count" not in entry:
            # Defaulting to 0 would silently run the noiseless circuit.
            raise ValidationError(
                f"a {spec.channel!r} noise entry needs an explicit 'count' "
                "(use channel 'none' for a noiseless row)"
            )
        if spec.count < 0:
            raise ValidationError("noise count must be non-negative")
        return spec

    @property
    def is_noiseless(self) -> bool:
        return self.channel == "none" or self.count == 0

    @property
    def label(self) -> str:
        if self.is_noiseless:
            return "noiseless"
        if self.channel == "superconducting":
            return f"superconducting-x{self.count}"
        return f"{self.channel}-p{self.parameter:g}-x{self.count}"


@dataclass(frozen=True)
class BackendSpec:
    """One entry of the ``backend`` axis: a registry name plus adapter options.

    ``options`` are forwarded to :func:`repro.backends.get_backend` (e.g. the
    scaled-down ``max_qubits`` / ``max_nodes`` memory budgets of Table II);
    ``label`` overrides the reporting name (e.g. ``MM`` for
    ``density_matrix``).
    """

    name: str
    label: str = ""
    options: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def parse(cls, entry: Any) -> "BackendSpec":
        if isinstance(entry, str):
            entry = {"name": entry}
        entry = _require_mapping(entry, "backend entry")
        _check_keys(entry, ("name", "label", "options"), "backend")
        if "name" not in entry:
            raise ValidationError("a backend entry needs a 'name'")
        # Canonicalise through the registry so aliases resolve and unknown
        # names fail at parse time, not mid-sweep.
        canonical = resolve_backends(str(entry["name"]))[0]
        options = dict(_require_mapping(entry.get("options", {}), "backend options"))
        return cls(name=canonical, label=str(entry.get("label") or canonical), options=options)


def _params_label(params: Tuple[Tuple[str, float], ...]) -> str:
    """Stable reporting label of one ``params`` axis entry (sorted by name)."""
    return ",".join(f"{name}={value:g}" for name, value in params)


@dataclass(frozen=True)
class SweepCell:
    """One grid point: (circuit, noise, backend, level, samples) plus its seed.

    ``seed`` is derived from the spec seed and the cell's identity via
    :func:`stable_seed`; it drives the stochastic backends through
    :meth:`task`.  ``params`` is one binding of the ``params`` grid axis (a
    sorted name/value tuple; empty for non-parametric sweeps): the runner
    compiles the parametric circuit once per row and serves each binding via
    :meth:`repro.api.Executable.bind` — one plan search for the whole axis.
    """

    circuit: CircuitSpec
    noise: NoiseSpec
    backend: BackendSpec
    level: int
    samples: int
    seed: int
    params: Tuple[Tuple[str, float], ...] = ()

    @property
    def cell_id(self) -> str:
        """Stable identifier used as the JSONL resume key."""
        base = (
            f"{self.circuit.label}/{self.noise.label}/{self.backend.label}"
            f"/level={self.level}/samples={self.samples}"
        )
        if self.params:
            # Appended only for parametric cells, so pre-existing sweep files
            # (whose ids never mentioned params) keep resuming cleanly.
            base += f"/params={_params_label(self.params)}"
        return base

    def task(
        self,
        workers: int | None = None,
        output_state: Any = None,
        executor: Any = None,
    ) -> SimulationTask:
        """Build the :class:`~repro.backends.SimulationTask` for this cell.

        ``workers``/``executor`` configure the batched trajectory engine
        through the task's typed fields, so one process pool is shared across
        all cells of a sweep (the session layer injects its own pool when
        ``executor`` is left unset).  The backend's adapter options are *not*
        copied into ``task.options``: they are applied exactly once, through
        the adapter constructor (``backend_options`` at the dispatch site).
        """
        return SimulationTask(
            level=self.level,
            num_samples=self.samples,
            seed=self.seed,
            workers=workers,
            output_state=output_state,
            executor=executor,
        )

    def record_params(self) -> Dict[str, Any]:
        """The deterministic cell parameters stored in each JSONL record."""
        record = {
            "circuit": self.circuit.label,
            "family": self.circuit.family,
            "noise": self.noise.label,
            "backend": self.backend.name,
            "backend_label": self.backend.label,
            "level": self.level,
            "samples": self.samples,
            "seed": self.seed,
        }
        if self.params:
            record["params"] = dict(self.params)
        return record


@dataclass(frozen=True)
class SweepSpec:
    """A validated sweep specification (see :func:`load_spec`)."""

    name: str
    description: str = ""
    seed: int = 7
    reference: str | None = None
    output_state: str = "zero"
    workers: int | None = None
    passes: bool = True
    device: str | None = None
    circuits: Tuple[CircuitSpec, ...] = ()
    noises: Tuple[NoiseSpec, ...] = (NoiseSpec(),)
    backends: Tuple[BackendSpec, ...] = ()
    levels: Tuple[int, ...] = (1,)
    samples: Tuple[int, ...] = (1000,)
    #: Entries of the ``params`` axis: one sorted name/value binding per
    #: entry.  The default single empty binding keeps non-parametric grids
    #: identical to the pre-params expansion.
    params: Tuple[Tuple[Tuple[str, float], ...], ...] = ((),)
    base_dir: Path | None = None

    def cells(self) -> List[SweepCell]:
        """Expand the grid into its deterministic cell list."""
        cells = []
        for circuit, noise, backend, level, num_samples, params in itertools.product(
            self.circuits, self.noises, self.backends, self.levels, self.samples,
            self.params,
        ):
            cell = SweepCell(
                circuit, noise, backend, level, num_samples, seed=0, params=params
            )
            cells.append(
                dataclasses.replace(
                    cell, seed=stable_seed(self.seed, "cell", cell.cell_id)
                )
            )
        return cells

    def to_dict(self) -> Dict[str, Any]:
        """Canonical plain-dict form (what the JSONL header stores and hashes)."""
        payload: Dict[str, Any] = {
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "reference": self.reference,
            "output_state": self.output_state,
        }
        if not self.passes:
            # Emitted only when disabled so pre-existing spec hashes (which
            # never mentioned passes) remain stable for resumed JSONL files.
            payload["passes"] = False
        if self.device is not None:
            # Same stability idiom: cpu-default sweeps hash as before devices.
            payload["device"] = self.device
        payload["grid"] = {
            "circuit": [
                {
                    "name": c.name,
                    "qasm": c.qasm,
                    "seed": c.seed,
                    "native_gates": c.native_gates,
                    "family": c.family,
                    # Emitted only when set, keeping pre-params spec hashes
                    # (which never mentioned the key) stable on resume.
                    **({"parametric": True} if c.parametric else {}),
                }
                for c in self.circuits
            ],
            "noise": [
                {
                    "channel": n.channel,
                    "parameter": n.parameter,
                    "count": n.count,
                    "seed": n.seed,
                }
                for n in self.noises
            ],
            "backend": [
                {"name": b.name, "label": b.label, "options": dict(b.options)}
                for b in self.backends
            ],
            "level": list(self.levels),
            "samples": list(self.samples),
        }
        if self.params != ((),):
            # Emitted only for parametric grids, so pre-params spec hashes
            # (which never mentioned the axis) remain stable for resumes.
            payload["grid"]["params"] = [dict(binding) for binding in self.params]
        return payload

    def spec_hash(self) -> str:
        """Content hash used to guard resumed JSONL files against spec drift."""
        payload = json.dumps(self.to_dict(), sort_keys=True, default=str)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


_SPEC_KEYS = (
    "name",
    "description",
    "seed",
    "reference",
    "output_state",
    "workers",
    "passes",
    "device",
    "grid",
)
_GRID_KEYS = ("circuit", "noise", "backend", "level", "samples", "params")


def _parse_spec(data: Mapping, base_dir: Path | None) -> SweepSpec:
    data = _require_mapping(data, "sweep spec")
    _check_keys(data, _SPEC_KEYS, "sweep spec")
    if not data.get("name"):
        raise ValidationError("a sweep spec needs a non-empty 'name'")
    grid = _require_mapping(data.get("grid", {}), "'grid'")
    _check_keys(grid, _GRID_KEYS, "grid")

    circuits = tuple(CircuitSpec.parse(e) for e in _as_list(grid.get("circuit")))
    if not circuits:
        raise ValidationError("the grid needs at least one 'circuit' entry")
    backends = tuple(BackendSpec.parse(e) for e in _as_list(grid.get("backend")))
    if not backends:
        raise ValidationError("the grid needs at least one 'backend' entry")
    noise_entries = _as_list(grid.get("noise"))
    noises = tuple(NoiseSpec.parse(e) for e in noise_entries) or (NoiseSpec(),)
    levels = tuple(int(level) for level in _as_list(grid.get("level"))) or (1,)
    samples = tuple(int(count) for count in _as_list(grid.get("samples"))) or (1000,)
    if any(level < 0 for level in levels):
        raise ValidationError("levels must be non-negative")
    if any(count <= 0 for count in samples):
        raise ValidationError("sample counts must be positive")

    params_entries = _as_list(grid.get("params"))
    params: Tuple[Tuple[Tuple[str, float], ...], ...] = ((),)
    if params_entries:
        bindings = []
        for entry in params_entries:
            entry = _require_mapping(entry, "params entry")
            if not entry:
                raise ValidationError(
                    "a params entry must bind at least one parameter "
                    "(omit the axis for non-parametric sweeps)"
                )
            bindings.append(
                tuple(sorted((str(name), float(value)) for name, value in entry.items()))
            )
        params = tuple(bindings)
        # QASM entries may carry symbols that only surface at load time, so
        # the axis is rejected here only when no entry could be parametric.
        if not any(c.parametric or c.qasm is not None for c in circuits):
            raise ValidationError(
                "a 'params' axis needs at least one parametric circuit entry "
                "(set parametric: true on a named benchmark, or load a QASM "
                "file with symbolic parameters)"
            )

    # Axis labels are the cell-id / cache / resume keys, so duplicates would
    # silently alias distinct grid points onto one record.
    for axis, entries in (
        ("backend", [b.label for b in backends]),
        ("circuit", [c.label for c in circuits]),
        ("noise", [n.label for n in noises]),
        ("params", [_params_label(binding) for binding in params if binding]),
    ):
        duplicates = sorted({label for label in entries if entries.count(label) > 1})
        if duplicates:
            raise ValidationError(
                f"{axis} labels must be unique within a sweep "
                f"(duplicated: {', '.join(duplicates)})"
            )

    reference = data.get("reference")
    if reference is not None:
        reference = resolve_backends(str(reference))[0]
    output_state = str(data.get("output_state", "zero"))
    if output_state not in _OUTPUT_STATES:
        raise ValidationError(
            f"output_state must be one of {', '.join(_OUTPUT_STATES)}, got {output_state!r}"
        )
    if output_state == "ideal" and any(c.parametric for c in circuits):
        # The ideal output state depends on the parameter values, so a
        # value-free compile cannot produce it; fail at parse time instead of
        # per cell.
        raise ValidationError(
            "output_state: ideal is incompatible with parametric circuit "
            "entries (the ideal state depends on the bound parameter values)"
        )
    device = None if data.get("device") is None else str(data["device"])
    if device is not None and device not in KNOWN_DEVICES:
        # Known-name check at parse time; *availability* (e.g. cuda without
        # CuPy/torch) is checked when the runner opens its session.
        raise ValidationError(
            f"unknown device {device!r}; known: {', '.join(KNOWN_DEVICES)}"
        )

    return SweepSpec(
        name=str(data["name"]),
        description=str(data.get("description", "")),
        seed=int(data.get("seed", 7)),
        reference=reference,
        output_state=output_state,
        workers=None if data.get("workers") is None else int(data["workers"]),
        passes=bool(data.get("passes", True)),
        device=device,
        circuits=circuits,
        noises=noises,
        backends=backends,
        levels=levels,
        samples=samples,
        params=params,
        base_dir=base_dir,
    )


def _load_file(path: Path) -> Mapping:
    text = path.read_text()
    if path.suffix in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - yaml is normally available
            raise ValidationError(
                f"PyYAML is not installed; convert {path.name} to JSON or install pyyaml"
            ) from exc
        try:
            return yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ValidationError(f"invalid YAML in {path}: {exc}") from exc
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"invalid JSON in {path}: {exc}") from exc


def load_spec(source: Mapping | str | Path) -> SweepSpec:
    """Parse a sweep spec from a dict or a YAML/JSON file path.

    Raises :class:`~repro.utils.validation.ValidationError` on unknown keys,
    unknown backends/channels, empty axes, or malformed files, so errors
    surface before any simulation starts.
    """
    if isinstance(source, Mapping):
        return _parse_spec(source, base_dir=None)
    path = Path(source)
    if not path.exists():
        raise ValidationError(f"sweep spec file not found: {path}")
    data = _load_file(path)
    if data is None:
        raise ValidationError(f"sweep spec file {path} is empty")
    return _parse_spec(data, base_dir=path.resolve().parent)
