"""Sweep execution: compiled-plan reuse and cell dispatch.

:class:`SweepRunner` walks the cell list of a :class:`~repro.sweeps.spec.SweepSpec`,
compiling every cell through one shared :class:`repro.api.Session`
(:meth:`~repro.api.Session.compile` → :class:`~repro.api.Executable`) with a
:class:`~repro.backends.SimulationTask` built from the cell's parameters:

* the one-time work of a (circuit, noise, backend) configuration — noise
  binding, contraction-plan search, trajectory-context preparation, noise
  SVD decompositions, ideal output states — lives in the session's plan
  cache, whose key excludes seeds, sample counts and approximation levels:
  a grid of L levels × S sample counts per row compiles once, not L×S times
  (ideal circuit construction itself is memoised per spec label);
* the stochastic backends share the session's
  :class:`~concurrent.futures.ProcessPoolExecutor` across all cells instead
  of spawning a fresh pool per cell;
* results stream to a resumable JSONL file (:mod:`repro.sweeps.records`):
  re-running an interrupted sweep executes only the missing cells and the
  surviving records are byte-identical apart from wall-clock timings.

Every stochastic cell runs in the engine's seeded block mode (``workers >= 1``),
so a sweep's values are deterministic for a fixed spec seed regardless of the
``--workers`` setting used to produce them.

A runner given ``shard=ShardSpec(k, n)`` executes only the cells the
deterministic partitioner (:mod:`repro.dist.partition`) assigns to shard
``k/n``, stamping the shard into the file header and every record; N such
workers cover the grid exactly once and their outputs merge back into the
single-process result (:mod:`repro.dist.merge`).  ``crash_after=N`` is the
fault-injection hook behind the crash-safety guarantee: the runner dies via
``os._exit`` mid-write after N cells, leaving a torn-tail record file for
resume/re-dispatch to recover.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from repro.api import Session, apply_noise, ideal_output_state
from repro.api import noise_model as _api_noise_model
from repro.api.executable import one_shot_result
from repro.backends import BackendUnsupportedError, get_backend
from repro.circuits.circuit import Circuit
from repro.noise import NoiseModel
from repro.sweeps.records import SweepRecords, cell_record, load_records
from repro.sweeps.spec import NoiseSpec, SweepCell, SweepSpec, stable_seed
from repro.tensornetwork import ContractionMemoryError
from repro.utils.validation import ValidationError

__all__ = ["CRASH_EXIT_CODE", "CircuitCache", "SweepResult", "SweepRunner", "run_sweep"]

#: Exit status of a worker killed by the ``crash_after`` fault-injection hook
#: (distinct from argparse's 2 and pytest's 1, so drills can assert on it).
CRASH_EXIT_CODE = 32

def noise_model_for(noise: NoiseSpec, seed: int) -> NoiseModel:
    """Deprecated shim: build the model a noise-axis entry names.

    The implementation moved to :func:`repro.api.noise.noise_model`; this
    wrapper stays so seed-era callers keep working.
    """
    warnings.warn(
        "repro.sweeps.runner.noise_model_for is deprecated; use "
        "repro.api.noise_model (or apply_noise) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _api_noise_model(noise.channel, noise.parameter, seed=seed)


class CircuitCache:
    """Caches ideal circuits, noisy circuits and ideal output states per spec.

    Keys are the stable axis labels, so all cells of a (circuit, noise) row —
    every backend, level and sample count — share one constructed instance.
    The injection seed is the noise entry's own seed when given, else derived
    from the spec seed and the row labels, so the injected positions do not
    depend on which backend asks first.

    The runner itself now routes noise binding and ideal output states
    through :meth:`repro.api.Session.compile` (whose plan cache shares that
    work by content, not by label) and uses only :meth:`ideal`; the noisy /
    output-state helpers remain for callers that build the same instances
    outside a session, e.g. the Table II/III benchmark harnesses comparing
    against externally computed references.
    """

    def __init__(self, spec: SweepSpec):
        self.spec = spec
        self._ideal: Dict[str, Circuit] = {}
        self._noisy: Dict[Tuple[str, str], Circuit] = {}
        self._outputs: Dict[str, np.ndarray] = {}

    def ideal(self, cell: SweepCell) -> Circuit:
        label = cell.circuit.label
        if label not in self._ideal:
            self._ideal[label] = cell.circuit.build(self.spec.seed, self.spec.base_dir)
        return self._ideal[label]

    def circuit(self, cell: SweepCell) -> Circuit:
        """The (possibly noisy) circuit this cell simulates."""
        key = (cell.circuit.label, cell.noise.label)
        if key not in self._noisy:
            ideal = self.ideal(cell)
            if cell.noise.is_noiseless:
                self._noisy[key] = ideal
            else:
                seed = cell.noise.seed
                if seed is None:
                    seed = stable_seed(self.spec.seed, "noise", *key)
                self._noisy[key] = apply_noise(
                    ideal,
                    {
                        "channel": cell.noise.channel,
                        "parameter": cell.noise.parameter,
                        "count": cell.noise.count,
                        "seed": seed,
                    },
                )
        return self._noisy[key]

    def output_state(self, cell: SweepCell):
        """Dense ideal output state when the spec asks for ``output_state: ideal``."""
        if self.spec.output_state != "ideal":
            return None
        label = cell.circuit.label
        if label not in self._outputs:
            self._outputs[label] = ideal_output_state(self.ideal(cell))
        return self._outputs[label]


@dataclass
class SweepResult:
    """Outcome of one :meth:`SweepRunner.run` call."""

    spec: SweepSpec
    path: Path
    records: List[Dict[str, Any]] = field(default_factory=list)
    executed: int = 0
    skipped: int = 0
    elapsed_seconds: float = 0.0
    #: Session plan-cache counters (hits/misses/evictions) of this run.
    plan_cache: Dict[str, int] = field(default_factory=dict)
    #: ``"K/N"`` when this run executed one shard of a partition, else None.
    shard: str | None = None

    def by_cell(self) -> Dict[str, Dict[str, Any]]:
        return {record["cell_id"]: record for record in self.records}


class SweepRunner:
    """Execute a sweep spec, streaming results to a resumable JSONL file.

    Parameters
    ----------
    spec:
        The parsed sweep specification.
    out_path:
        JSONL output file (``sweep_results/<name>.jsonl`` by default).
    workers:
        Process count for the stochastic backends' shared pool.  Values are
        identical for every setting (the engine's seeded block mode);
        defaults to the spec's ``workers`` entry, else 1.
    resume:
        Re-use final records already present in ``out_path`` (default).
        ``resume=False`` truncates and starts over.
    max_cells:
        Execute at most this many *pending* cells, then stop (useful for
        smoke runs; the JSONL stays resumable).
    shard:
        A :class:`repro.dist.partition.ShardSpec` (or its ``"K/N"`` string
        form): execute only the cells the deterministic partitioner assigns
        to this shard, and stamp the shard into the header and every record.
    crash_after:
        Fault injection for the crash-safety drills: after this many executed
        cells, flush a torn partial record and die via ``os._exit``
        (:data:`CRASH_EXIT_CODE`) — exactly what a worker killed mid-cell
        looks like to resume and merge.
    """

    def __init__(
        self,
        spec: SweepSpec,
        out_path: str | Path | None = None,
        workers: int | None = None,
        resume: bool = True,
        max_cells: int | None = None,
        shard=None,
        crash_after: int | None = None,
    ):
        from repro.dist.partition import ShardSpec

        self.spec = spec
        self.out_path = Path(
            out_path if out_path is not None else Path("sweep_results") / f"{spec.name}.jsonl"
        )
        self.workers = workers if workers is not None else (spec.workers or 1)
        if self.workers < 1:
            raise ValidationError("workers must be >= 1")
        self.resume = resume
        self.max_cells = max_cells
        if shard is not None and not isinstance(shard, ShardSpec):
            shard = ShardSpec.parse(shard)
        self.shard = shard
        if crash_after is not None and crash_after < 0:
            raise ValidationError("crash_after must be >= 0")
        self.crash_after = crash_after

    # ------------------------------------------------------------------
    def cells(self) -> List[SweepCell]:
        """The cells this runner owns: the full grid, or its shard's slice."""
        if self.shard is None:
            return self.spec.cells()
        from repro.dist.partition import shard_cells

        return shard_cells(self.spec, self.shard)

    def run(self, progress: Callable[[str], None] | None = None) -> SweepResult:
        """Run all pending cells; returns the merged (previous + new) records."""
        start = time.perf_counter()
        note = progress or (lambda message: None)
        cells = self.cells()
        shard_label = str(self.shard) if self.shard is not None else None
        cache = CircuitCache(self.spec)
        result = SweepResult(self.spec, self.out_path, shard=shard_label)
        # The session owns the shared process pool for the stochastic cells;
        # it is created lazily on first use, so a fully-resumed re-run never
        # pays the pool start-up cost.
        with Session(
            workers=self.workers if self.workers > 1 else None,
            passes=self.spec.passes,
            device=self.spec.device,
        ) as session:
            with SweepRecords.open_for(
                self.spec, self.out_path, resume=self.resume, shard=shard_label
            ) as records:
                pending = [cell for cell in cells if cell.cell_id not in records.completed]
                result.skipped = len(cells) - len(pending)
                if result.skipped:
                    note(f"resuming: {result.skipped}/{len(cells)} cells already recorded")
                if self.max_cells is not None:
                    pending = pending[: self.max_cells]
                for index, cell in enumerate(pending, start=1):
                    if self.crash_after is not None and result.executed >= self.crash_after:
                        records.tear()
                        os._exit(CRASH_EXIT_CODE)
                    record = self._run_cell(cell, cache, session)
                    if shard_label is not None:
                        record["shard"] = shard_label
                    records.append(record)
                    result.executed += 1
                    note(self._progress_line(index, len(pending), record))
            result.plan_cache = session.cache_stats()
        # Re-read the file so the returned records are exactly what resumes see.
        _, by_cell = load_records(self.out_path)
        result.records = [
            by_cell[cell.cell_id] for cell in cells if cell.cell_id in by_cell
        ]
        result.elapsed_seconds = time.perf_counter() - start
        return result

    # ------------------------------------------------------------------
    def _noise_mapping(self, cell: SweepCell) -> Dict[str, Any] | None:
        """The ``noise=`` argument binding this cell's noise inside compile().

        The injection seed is pinned (the entry's own, else derived from the
        spec seed and the row labels exactly as :class:`CircuitCache` pins
        it), so every backend/level/samples cell of a row compiles the same
        noisy structure — and therefore shares one cached plan.
        """
        if cell.noise.is_noiseless:
            return None
        seed = cell.noise.seed
        if seed is None:
            seed = stable_seed(self.spec.seed, "noise", cell.circuit.label, cell.noise.label)
        return {
            "channel": cell.noise.channel,
            "parameter": cell.noise.parameter,
            "count": cell.noise.count,
            "seed": seed,
        }

    def _run_cell(self, cell: SweepCell, cache: CircuitCache, session: Session) -> Dict[str, Any]:
        try:
            stochastic = get_backend(cell.backend.name).capabilities.stochastic
            task = cell.task(
                workers=self.workers if stochastic else None,
                output_state="ideal" if self.spec.output_state == "ideal" else None,
            )
            executable = session.compile(
                cache.ideal(cell),
                backend=cell.backend.name,
                noise=self._noise_mapping(cell),
                backend_options=cell.backend.options,
                task=task,
            )
            if cell.params:
                # All bindings of a row share the parent's cached plan: the
                # params axis costs one plan search, then one bind per cell.
                executable = executable.bind(dict(cell.params))
            # One-shot semantics for the record: a cache miss bills its
            # compile time into elapsed_seconds (what this cell actually
            # cost), a hit records the pure serving cost.
            outcome = one_shot_result(executable)
        except BackendUnsupportedError as exc:
            return cell_record(cell, "unsupported", error=str(exc))
        except (MemoryError, ContractionMemoryError) as exc:
            return cell_record(cell, "memory_out", error=str(exc))
        except Exception as exc:  # noqa: BLE001 - recorded and retried on resume
            return cell_record(cell, "failed", error=f"{type(exc).__name__}: {exc}")
        return cell_record(cell, "ok", result=outcome)

    @staticmethod
    def _progress_line(index: int, total: int, record: Dict[str, Any]) -> str:
        status = record["status"]
        if status == "ok":
            detail = (
                f"F={record['value']:.6f}  ({record['elapsed_seconds']:.2f}s)"
            )
        else:
            detail = status.upper()
        return f"[{index}/{total}] {record['cell_id']}: {detail}"


def run_sweep(
    spec: SweepSpec | dict | str | Path,
    out_path: str | Path | None = None,
    workers: int | None = None,
    resume: bool = True,
    max_cells: int | None = None,
    shard=None,
    progress: Callable[[str], None] | None = None,
) -> SweepResult:
    """One-call convenience wrapper: load (if needed), run, return the result."""
    from repro.sweeps.spec import load_spec

    if not isinstance(spec, SweepSpec):
        spec = load_spec(spec)
    runner = SweepRunner(
        spec,
        out_path=out_path,
        workers=workers,
        resume=resume,
        max_cells=max_cells,
        shard=shard,
    )
    return runner.run(progress=progress)
