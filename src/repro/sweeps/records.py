"""Resumable JSONL record streams for sweep runs.

A sweep's output file is a stream of one JSON object per line:

* line 1 is a ``header`` record carrying the spec (and its content hash, so
  a resumed run refuses to append to records produced by a *different* spec);
* every further line is a ``cell`` record with the cell's deterministic
  parameters and its outcome.

Records are appended and flushed cell by cell, so an interrupted run keeps
everything it already computed; :func:`load_records` returns the last record
per cell id, which is exactly the resume state.

A worker killed mid-write (power loss, ``kill -9``, the distributed
coordinator's crash-injection drill) leaves a *torn* final line: a trailing
chunk without a terminating newline and/or that is not valid JSON.  Torn
tails are deliberate partial state, not corruption: :func:`scan_records`
detects them, :func:`load_records` drops them (the cell simply re-runs on
resume), and :meth:`SweepRecords.open_for` truncates the file back to the
last complete record before appending, so a resumed stream never embeds
garbage mid-file.  Invalid JSON anywhere *before* the final line still
raises — that is real corruption, not a crash artifact.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Dict, List, Mapping, Tuple

from repro.utils.validation import ValidationError

__all__ = [
    "RecordError",
    "RecordScan",
    "SweepRecords",
    "cell_record",
    "load_records",
    "scan_records",
]

#: Cell statuses that are final (a resumed run does not re-execute them).
#: ``failed`` — an unexpected exception — is retried on resume.
FINAL_STATUSES = ("ok", "memory_out", "unsupported")


class RecordError(ValidationError):
    """Raised for malformed or mismatched sweep record files."""


def cell_record(cell, status: str, result=None, error: str | None = None) -> Dict[str, Any]:
    """Build the JSON payload for one executed cell.

    Everything except ``elapsed_seconds`` (and the ``shard`` dispatch
    provenance a ``--shard K/N`` worker stamps on afterwards) is
    deterministic for a fixed spec seed, which is what the resume tests —
    and the distributed merge's bit-identity guarantee — assert.
    """
    record: Dict[str, Any] = {"kind": "cell", "cell_id": cell.cell_id}
    record.update(cell.record_params())
    record["status"] = status
    if result is not None:
        record["value"] = result.value
        record["standard_error"] = result.standard_error
        record["elapsed_seconds"] = result.elapsed_seconds
        record["num_samples"] = result.num_samples
        record["num_contractions"] = result.num_contractions
        # Per-cell device provenance (a soft sweep-level device applies only
        # to device-capable backends, so cells can differ).  Emitted only for
        # non-cpu devices, keeping pre-device record streams byte-identical.
        if result.device != "cpu":
            record["device"] = result.device
        # "workers" is runtime configuration, not an outcome: dropping it keeps
        # records identical across --workers settings.
        record["metadata"] = {
            key: value for key, value in dict(result.metadata or {}).items()
            if key != "workers"
        }
    if error is not None:
        record["error"] = error
    return record


@dataclass
class _Header:
    spec: Mapping[str, Any]
    spec_hash: str


def _parse_chunk(chunk: bytes, path: Path, number: int) -> Dict[str, Any]:
    try:
        record = json.loads(chunk.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise RecordError(f"{path}:{number}: invalid JSON record: {exc}") from exc
    if not isinstance(record, dict) or "kind" not in record:
        raise RecordError(f"{path}:{number}: not a sweep record (missing 'kind')")
    return record


@dataclass
class RecordScan:
    """Everything :func:`scan_records` learns about one JSONL file.

    ``torn_offset`` is the byte offset of a torn trailing line (a crashed
    worker's partial final write), or ``None`` when the file ends cleanly;
    truncating the file to that offset restores a valid append point.
    """

    path: Path
    header: Dict[str, Any]
    cells: Dict[str, Dict[str, Any]]
    torn_offset: int | None = None
    torn_line: str | None = None


def scan_records(path: str | Path) -> RecordScan:
    """Read a sweep JSONL file, tolerating (and reporting) a torn final line.

    The append-and-flush writer terminates every record with a newline, so a
    trailing chunk *without* one — or whose bytes are not a complete JSON
    record — can only be the partial last write of a worker that died
    mid-cell.  That chunk is dropped (its cell re-runs on resume) and
    reported via ``torn_offset``/``torn_line``.  A malformed line anywhere
    before the tail still raises :class:`RecordError`: suffix loss is the
    only corruption a crash can produce, so mid-file damage is a real error.
    """
    path = Path(path)
    if not path.exists():
        raise RecordError(f"sweep record file not found: {path}")
    raw = path.read_bytes()
    header: Dict[str, Any] | None = None
    cells: Dict[str, Dict[str, Any]] = {}
    torn_offset: int | None = None
    torn_line: str | None = None
    offset = 0
    number = 0
    while offset < len(raw):
        number += 1
        newline = raw.find(b"\n", offset)
        end = len(raw) if newline < 0 else newline
        chunk = raw[offset:end].strip()
        next_offset = end + (0 if newline < 0 else 1)
        is_tail = newline < 0 or not raw[next_offset:].strip()
        if chunk:
            record: Dict[str, Any] | None
            if newline < 0:
                # No terminating newline: a partial final write, even if the
                # bytes happen to parse — appending after it would glue two
                # records onto one line.
                record = None
            else:
                try:
                    record = _parse_chunk(chunk, path, number)
                except RecordError:
                    if not is_tail:
                        raise
                    record = None
            if record is None:
                torn_offset = offset
                torn_line = chunk.decode("utf-8", errors="replace")
                break
            if record["kind"] == "header":
                if header is None:
                    header = record
            elif record["kind"] == "cell":
                cells[record["cell_id"]] = record
        offset = next_offset
    if header is None:
        raise RecordError(f"{path} has no header record (not a sweep output file?)")
    return RecordScan(path, header, cells, torn_offset=torn_offset, torn_line=torn_line)


def load_records(path: str | Path) -> Tuple[Dict[str, Any], Dict[str, Dict[str, Any]]]:
    """Read a sweep JSONL file into ``(header, {cell_id: last record})``.

    A torn final line (crashed worker) is silently dropped — see
    :func:`scan_records` for the scan that reports it.
    """
    scan = scan_records(path)
    return scan.header, scan.cells


class SweepRecords:
    """Append-only JSONL writer with resume support.

    ``open_for(spec, path, resume=True)`` either creates the file with a
    header or validates the existing header's spec hash and reopens the
    stream for appending.
    """

    def __init__(self, path: Path, handle: IO[str], completed: Dict[str, Dict[str, Any]]):
        self.path = path
        self._handle = handle
        #: Final records from a previous run, keyed by cell id.
        self.completed = completed

    @classmethod
    def open_for(
        cls,
        spec,
        path: str | Path,
        resume: bool = True,
        shard: str | None = None,
    ) -> "SweepRecords":
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        completed: Dict[str, Dict[str, Any]] = {}
        if path.exists() and resume:
            scan = scan_records(path)
            header = scan.header
            if header.get("spec_hash") != spec.spec_hash():
                raise RecordError(
                    f"{path} was produced by a different spec "
                    f"(hash {header.get('spec_hash')} != {spec.spec_hash()}); "
                    "use a fresh output file or pass --fresh to overwrite"
                )
            if header.get("shard") != shard:
                # A shard file resumed under a different K/N would silently
                # execute (and record) another shard's cells into it.
                raise RecordError(
                    f"{path} belongs to shard {header.get('shard') or 'none'} "
                    f"(this run is shard {shard or 'none'}); "
                    "use a fresh output file per shard"
                )
            if scan.torn_offset is not None:
                # Crash artifact: cut the partial final write so the stream
                # stays one valid record per line; its cell re-runs below.
                os.truncate(path, scan.torn_offset)
            completed = {
                cell_id: record
                for cell_id, record in scan.cells.items()
                if record.get("status") in FINAL_STATUSES
            }
            handle = path.open("a")
        else:
            handle = path.open("w")
            header = {
                "kind": "header",
                "name": spec.name,
                "spec_hash": spec.spec_hash(),
                "spec": spec.to_dict(),
            }
            if shard is not None:
                header["shard"] = shard
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            handle.flush()
        return cls(path, handle, completed)

    def append(self, record: Mapping[str, Any]) -> None:
        """Write one record and flush, so interruption never loses a finished cell."""
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def tear(self) -> None:
        """Fault injection: flush a partial record with no terminating newline.

        Reproduces exactly what a worker killed mid-cell leaves behind; the
        crash drills (``--crash-after``, the CI sharded smoke) call this just
        before ``os._exit`` so resume and merge face a genuinely torn tail.
        """
        self._handle.write('{"kind": "cell", "cell_id": "torn-mid-write')
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "SweepRecords":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
