"""Resumable JSONL record streams for sweep runs.

A sweep's output file is a stream of one JSON object per line:

* line 1 is a ``header`` record carrying the spec (and its content hash, so
  a resumed run refuses to append to records produced by a *different* spec);
* every further line is a ``cell`` record with the cell's deterministic
  parameters and its outcome.

Records are appended and flushed cell by cell, so an interrupted run keeps
everything it already computed; :func:`load_records` returns the last record
per cell id, which is exactly the resume state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Dict, List, Mapping, Tuple

from repro.utils.validation import ValidationError

__all__ = [
    "RecordError",
    "SweepRecords",
    "cell_record",
    "load_records",
]

#: Cell statuses that are final (a resumed run does not re-execute them).
#: ``failed`` — an unexpected exception — is retried on resume.
FINAL_STATUSES = ("ok", "memory_out", "unsupported")


class RecordError(ValidationError):
    """Raised for malformed or mismatched sweep record files."""


def cell_record(cell, status: str, result=None, error: str | None = None) -> Dict[str, Any]:
    """Build the JSON payload for one executed cell.

    Everything except ``elapsed_seconds`` is deterministic for a fixed spec
    seed, which is what the resume tests assert.
    """
    record: Dict[str, Any] = {"kind": "cell", "cell_id": cell.cell_id}
    record.update(cell.record_params())
    record["status"] = status
    if result is not None:
        record["value"] = result.value
        record["standard_error"] = result.standard_error
        record["elapsed_seconds"] = result.elapsed_seconds
        record["num_samples"] = result.num_samples
        record["num_contractions"] = result.num_contractions
        # Per-cell device provenance (a soft sweep-level device applies only
        # to device-capable backends, so cells can differ).  Emitted only for
        # non-cpu devices, keeping pre-device record streams byte-identical.
        if result.device != "cpu":
            record["device"] = result.device
        # "workers" is runtime configuration, not an outcome: dropping it keeps
        # records identical across --workers settings.
        record["metadata"] = {
            key: value for key, value in dict(result.metadata or {}).items()
            if key != "workers"
        }
    if error is not None:
        record["error"] = error
    return record


@dataclass
class _Header:
    spec: Mapping[str, Any]
    spec_hash: str


def _parse_line(line: str, path: Path, number: int) -> Dict[str, Any]:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise RecordError(f"{path}:{number}: invalid JSON record: {exc}") from exc
    if not isinstance(record, dict) or "kind" not in record:
        raise RecordError(f"{path}:{number}: not a sweep record (missing 'kind')")
    return record


def load_records(path: str | Path) -> Tuple[Dict[str, Any], Dict[str, Dict[str, Any]]]:
    """Read a sweep JSONL file into ``(header, {cell_id: last record})``."""
    path = Path(path)
    if not path.exists():
        raise RecordError(f"sweep record file not found: {path}")
    header: Dict[str, Any] | None = None
    cells: Dict[str, Dict[str, Any]] = {}
    with path.open() as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = _parse_line(line, path, number)
            if record["kind"] == "header":
                if header is None:
                    header = record
                continue
            if record["kind"] == "cell":
                cells[record["cell_id"]] = record
    if header is None:
        raise RecordError(f"{path} has no header record (not a sweep output file?)")
    return header, cells


class SweepRecords:
    """Append-only JSONL writer with resume support.

    ``open_for(spec, path, resume=True)`` either creates the file with a
    header or validates the existing header's spec hash and reopens the
    stream for appending.
    """

    def __init__(self, path: Path, handle: IO[str], completed: Dict[str, Dict[str, Any]]):
        self.path = path
        self._handle = handle
        #: Final records from a previous run, keyed by cell id.
        self.completed = completed

    @classmethod
    def open_for(cls, spec, path: str | Path, resume: bool = True) -> "SweepRecords":
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        completed: Dict[str, Dict[str, Any]] = {}
        if path.exists() and resume:
            header, cells = load_records(path)
            if header.get("spec_hash") != spec.spec_hash():
                raise RecordError(
                    f"{path} was produced by a different spec "
                    f"(hash {header.get('spec_hash')} != {spec.spec_hash()}); "
                    "use a fresh output file or pass --fresh to overwrite"
                )
            completed = {
                cell_id: record
                for cell_id, record in cells.items()
                if record.get("status") in FINAL_STATUSES
            }
            handle = path.open("a")
        else:
            handle = path.open("w")
            header = {
                "kind": "header",
                "name": spec.name,
                "spec_hash": spec.spec_hash(),
                "spec": spec.to_dict(),
            }
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            handle.flush()
        return cls(path, handle, completed)

    def append(self, record: Mapping[str, Any]) -> None:
        """Write one record and flush, so interruption never loses a finished cell."""
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "SweepRecords":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
