"""Declarative experiment sweeps: config-driven grids over the backend registry.

A sweep spec (Python dict or YAML/JSON file) names a grid over circuit
families, noise models, registered backends, approximation levels and sample
counts; the runner expands the grid, dispatches every cell through
:func:`repro.backends.get_backend` (the stochastic cells through the batched
trajectory engine with one shared process pool), caches constructed circuits
across cells, and streams results to a resumable JSONL file::

    from repro.sweeps import run_sweep

    result = run_sweep("benchmarks/specs/table3.yaml", workers=4)
    print(result.path, result.executed, "cells")

or from the command line::

    python -m repro.cli sweep run benchmarks/specs/table3.yaml
    python -m repro.cli sweep report sweep_results/table3.jsonl

See ``docs/sweep-spec.md`` for the full spec reference.
"""

from repro.sweeps.records import (
    FINAL_STATUSES,
    RecordError,
    RecordScan,
    SweepRecords,
    cell_record,
    load_records,
    scan_records,
)
from repro.sweeps.report import pivot_table, reference_values, shard_table, summary_table
from repro.sweeps.runner import (
    CRASH_EXIT_CODE,
    CircuitCache,
    SweepResult,
    SweepRunner,
    run_sweep,
)
from repro.sweeps.spec import (
    BackendSpec,
    CircuitSpec,
    NoiseSpec,
    SweepCell,
    SweepSpec,
    load_spec,
    stable_seed,
)

__all__ = [
    "BackendSpec",
    "CRASH_EXIT_CODE",
    "CircuitCache",
    "CircuitSpec",
    "FINAL_STATUSES",
    "NoiseSpec",
    "RecordError",
    "RecordScan",
    "SweepCell",
    "SweepRecords",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "cell_record",
    "load_records",
    "load_spec",
    "pivot_table",
    "reference_values",
    "run_sweep",
    "scan_records",
    "shard_table",
    "stable_seed",
    "summary_table",
]
