"""Serving metrics: request counters and log-bucketed latency histograms.

Everything the ``/stats`` surface reports lives here.  The histogram uses
fixed geometric buckets (factor 2 from 0.1 ms), so percentile estimates are
exact to within one bucket (≤ 2x relative error), memory is constant, and
recording is O(log buckets) — fit for the per-request hot path.
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import Any, Dict

from repro.serve.protocol import STATUSES

__all__ = ["LatencyHistogram", "ServerStats"]

#: Bucket upper bounds in seconds: 0.1 ms · 2^i, out to ~1.7 hours.
_BOUNDS = tuple(0.0001 * (2.0**i) for i in range(26))


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile estimates."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * (len(_BOUNDS) + 1)
        self._total = 0
        self._sum = 0.0
        self._max = 0.0

    def record(self, seconds: float) -> None:
        index = bisect.bisect_left(_BOUNDS, seconds)
        with self._lock:
            self._counts[index] += 1
            self._total += 1
            self._sum += seconds
            self._max = max(self._max, seconds)

    def percentile(self, fraction: float) -> float:
        """Upper bound of the bucket holding the ``fraction`` quantile (seconds)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        with self._lock:
            if self._total == 0:
                return 0.0
            rank = max(1, int(round(fraction * self._total)))
            seen = 0
            for index, count in enumerate(self._counts):
                seen += count
                if seen >= rank:
                    return _BOUNDS[index] if index < len(_BOUNDS) else self._max
            return self._max  # pragma: no cover - unreachable

    def snapshot(self) -> Dict[str, float]:
        """Summary in milliseconds (the ``/stats`` latency schema)."""
        p50, p90, p99 = (self.percentile(f) for f in (0.50, 0.90, 0.99))
        with self._lock:
            total, mean = self._total, (self._sum / self._total if self._total else 0.0)
            peak = self._max
        return {
            "count": total,
            "mean_ms": mean * 1000.0,
            "p50_ms": p50 * 1000.0,
            "p90_ms": p90 * 1000.0,
            "p99_ms": p99 * 1000.0,
            "max_ms": peak * 1000.0,
        }


class ServerStats:
    """Per-status request counters + latency histograms (ok and end-to-end)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._by_status = {status: 0 for status in STATUSES}
        self._coalesced = 0
        self._pool_resets = 0
        self.ok_latency = LatencyHistogram()
        self.queue_wait = LatencyHistogram()

    def count(self, status: str, *, coalesced: bool = False) -> None:
        with self._lock:
            self._by_status[status] += 1
            if coalesced:
                self._coalesced += 1

    def count_pool_reset(self) -> None:
        with self._lock:
            self._pool_resets += 1

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            by_status = dict(self._by_status)
            coalesced = self._coalesced
            pool_resets = self._pool_resets
            uptime = time.monotonic() - self._started
        return {
            "uptime_seconds": uptime,
            "requests_total": sum(by_status.values()),
            "by_status": by_status,
            "coalesced_requests": coalesced,
            "pool_resets": pool_resets,
            "latency_ms": self.ok_latency.snapshot(),
            "queue_wait_ms": self.queue_wait.snapshot(),
        }
