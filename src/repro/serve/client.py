"""Clients for the serving layer: in-process, asyncio HTTP, and background.

Three ways to talk to a :class:`~repro.serve.server.ReproServer`:

* :class:`ServeClient` — in-process: awaits ``server.handle`` directly on
  the server's event loop.  No sockets, no serialisation; this is what the
  concurrency/fault test harness uses, so failures point at the serving
  logic rather than at HTTP plumbing.
* :class:`HttpServeClient` — a minimal asyncio HTTP/1.1 client with
  keep-alive, for load generation against the real socket front end.
* :class:`BackgroundServer` — a context manager running a full server (HTTP
  included) on a daemon thread with its own event loop, with synchronous
  ``http.client`` helpers.  Used by the CLI smoke mode, the throughput
  benchmark, and the HTTP integration tests.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from typing import Any, Dict, Optional, Tuple

from repro.serve.server import ReproServer

__all__ = ["ServeClient", "HttpServeClient", "BackgroundServer"]


class ServeClient:
    """In-process client: drives the server's request path with no sockets."""

    def __init__(self, server: ReproServer) -> None:
        self._server = server

    async def request(self, **fields: Any) -> Dict[str, Any]:
        """Submit one request payload (protocol fields as keywords)."""
        return await self._server.handle(fields)

    async def stats(self) -> Dict[str, Any]:
        """The server's ``/stats`` document."""
        return self._server.stats()


class HttpServeClient:
    """A keep-alive asyncio HTTP client for one serving connection.

    One instance equals one TCP connection (opened lazily, reused across
    requests) — the shape a load generator wants: N concurrent clients means
    N instances.
    """

    def __init__(self, host: str, port: int) -> None:
        self._host = host
        self._port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connection(self) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self._host, self._port
            )
        assert self._reader is not None and self._writer is not None
        return self._reader, self._writer

    async def _round_trip(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        reader, writer = await self._connection()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self._host}:{self._port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        )
        writer.write(head.encode("latin1") + body)
        await writer.drain()
        status_line = await reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split()[1])
        length = 0
        close_after = False
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
            elif name.strip().lower() == "connection":
                close_after = value.strip().lower() == "close"
        payload = json.loads(await reader.readexactly(length)) if length else {}
        if close_after:
            await self.aclose()
        return status, payload

    async def request(self, payload: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """POST ``/simulate``; returns ``(http_status, response_dict)``."""
        return await self._round_trip(
            "POST", "/simulate", json.dumps(payload).encode("utf-8")
        )

    async def get(self, path: str) -> Tuple[int, Dict[str, Any]]:
        """GET an endpoint (``/stats``, ``/healthz``)."""
        return await self._round_trip("GET", path, b"")

    async def aclose(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass
            self._reader = self._writer = None


class BackgroundServer:
    """A full serving stack on a daemon thread, for synchronous callers.

    ``with BackgroundServer(seed=0) as bg:`` starts a :class:`ReproServer`
    plus its HTTP endpoint on a private event loop; ``bg.host``/``bg.port``
    name the bound socket, and :meth:`request`/:meth:`stats` are blocking
    conveniences over ``http.client``.  Exiting the context shuts the server
    down and joins the thread.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, **server_kwargs: Any):
        self._host_arg = host
        self._port_arg = port
        self._server_kwargs = server_kwargs
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.server: Optional[ReproServer] = None
        self.host: str = host
        self.port: int = 0

    # ------------------------------------------------------------------
    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._main, name="repro-serve-bg", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("background server failed to start within 30s")
        if self._startup_error is not None:
            raise RuntimeError("background server failed to start") from self._startup_error
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self.server is not None:
            self.server.request_shutdown()
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # pragma: no cover - surfaced via __enter__
            self._startup_error = exc
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.server = ReproServer(**self._server_kwargs)
        self.host, self.port = await self.server.start_http(
            self._host_arg, self._port_arg
        )
        self._ready.set()
        await self.server.serve_forever()

    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _sync_round_trip(
        self, method: str, path: str, payload: Optional[Dict[str, Any]], timeout: float
    ) -> Tuple[int, Dict[str, Any]]:
        connection = http.client.HTTPConnection(self.host, self.port, timeout=timeout)
        try:
            body = json.dumps(payload).encode("utf-8") if payload is not None else None
            connection.request(
                method, path, body=body, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            data = response.read()
            return response.status, (json.loads(data) if data else {})
        finally:
            connection.close()

    def request(
        self, payload: Dict[str, Any], timeout: float = 60.0
    ) -> Tuple[int, Dict[str, Any]]:
        """Blocking POST ``/simulate``; returns ``(http_status, response)``."""
        return self._sync_round_trip("POST", "/simulate", payload, timeout)

    def stats(self, timeout: float = 30.0) -> Dict[str, Any]:
        """Blocking GET ``/stats``."""
        status, payload = self._sync_round_trip("GET", "/stats", None, timeout)
        if status != 200:  # pragma: no cover - would be a server bug
            raise RuntimeError(f"/stats returned HTTP {status}")
        return payload
