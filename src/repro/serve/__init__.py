"""Multi-tenant serving layer over the compile/execute split.

One shared :class:`~repro.api.Session` (plan cache, process pool, dispatch
layer) behind an asyncio server with request coalescing, per-tenant
deterministic seed streams, bounded admission control, per-request
deadlines, worker-fault recovery and a ``/stats`` surface — see
:mod:`repro.serve.server` for the full design and ``docs/serving.md`` for
the operator view.
"""

from repro.serve.admission import AdmissionController
from repro.serve.client import BackgroundServer, HttpServeClient, ServeClient
from repro.serve.faults import FaultInjector, WorkerCrash, crash, hang
from repro.serve.protocol import (
    HTTP_STATUS,
    STATUSES,
    ProtocolError,
    ServeRequest,
    error_response,
    ok_response,
)
from repro.serve.server import ReproServer
from repro.serve.stats import LatencyHistogram, ServerStats
from repro.serve.tenancy import TenantRegistry, tenant_request_seed

__all__ = [
    "AdmissionController",
    "BackgroundServer",
    "FaultInjector",
    "HTTP_STATUS",
    "HttpServeClient",
    "LatencyHistogram",
    "ProtocolError",
    "ReproServer",
    "STATUSES",
    "ServeClient",
    "ServeRequest",
    "ServerStats",
    "TenantRegistry",
    "WorkerCrash",
    "crash",
    "hang",
    "error_response",
    "ok_response",
    "tenant_request_seed",
]
