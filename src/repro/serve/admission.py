"""Admission control: a bounded queue that sheds load instead of stalling.

The server executes at most ``max_inflight`` requests concurrently (the size
of its worker thread pool) and holds at most ``queue_limit`` admitted
requests beyond that.  A request arriving with both tiers full is *shed*
immediately with a structured ``overloaded`` response — the server never
buffers unbounded work and never deadlocks behind a saturated process pool.

Slots are released when the underlying work actually finishes (or is
cancelled before it started), not when a response is sent: a request that
timed out but whose worker thread is still computing keeps its slot until
the thread returns, so ``in_flight`` always reflects real resource usage
and timeouts cannot oversubscribe the pool.
"""

from __future__ import annotations

import threading
from typing import Dict

__all__ = ["AdmissionController"]


class AdmissionController:
    """Two-tier bounded admission: running slots plus a bounded wait queue."""

    def __init__(self, max_inflight: int = 4, queue_limit: int = 16) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        self.max_inflight = int(max_inflight)
        self.queue_limit = int(queue_limit)
        self._lock = threading.Lock()
        self._active = 0      # admitted and not yet finished
        self._running = 0     # actually executing on a worker thread
        self._admitted = 0
        self._shed = 0
        self._completed = 0
        self._cancelled = 0
        self._queue_high_water = 0

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Total admitted requests the server will hold: running + queued."""
        return self.max_inflight + self.queue_limit

    def try_admit(self) -> bool:
        """Claim a slot; False means the request must be shed (no blocking)."""
        with self._lock:
            if self._active >= self.capacity:
                self._shed += 1
                return False
            self._active += 1
            self._admitted += 1
            queued = max(0, self._active - self.max_inflight)
            self._queue_high_water = max(self._queue_high_water, queued)
            return True

    def on_start(self) -> None:
        """The admitted request began executing on a worker thread."""
        with self._lock:
            self._running += 1

    def release(self, *, started: bool, cancelled: bool = False) -> None:
        """Return a claimed slot (exactly once per successful :meth:`try_admit`)."""
        with self._lock:
            self._active -= 1
            if started:
                self._running -= 1
            if cancelled:
                self._cancelled += 1
            else:
                self._completed += 1
            if self._active < 0 or self._running < 0:  # pragma: no cover - invariant
                raise AssertionError("admission slot released more often than claimed")

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, int]:
        """Counters for ``/stats``; consistent (taken under one lock)."""
        with self._lock:
            return {
                "in_flight": self._running,
                "queue_depth": max(0, self._active - self._running),
                "active": self._active,
                "max_inflight": self.max_inflight,
                "queue_limit": self.queue_limit,
                "admitted_total": self._admitted,
                "shed_total": self._shed,
                "completed_total": self._completed,
                "cancelled_total": self._cancelled,
                "queue_high_water": self._queue_high_water,
            }
