"""Deterministic failpoints for the serving fault-injection harness.

A :class:`FaultInjector` is handed to :class:`~repro.serve.server.ReproServer`
(production default: ``None`` — the hooks vanish) and armed by tests::

    injector = FaultInjector()
    injector.inject("execute", crash("worker segfault"), times=1)
    server = ReproServer(fault_injector=injector)

The server fires named points on its worker threads; an armed action either
raises (simulating a crashed worker / poisoned compile) or blocks
(simulating a hung worker), and disarms itself after ``times`` firings.
Points currently fired by the server: ``"compile"`` (before
``Session.compile``) and ``"execute"`` (before ``Executable.run``).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List

__all__ = ["FaultInjector", "WorkerCrash", "crash", "hang"]


class WorkerCrash(RuntimeError):
    """The injected stand-in for a worker dying mid-request."""


def crash(message: str = "injected worker crash") -> Callable[..., None]:
    """An action that raises :class:`WorkerCrash` at its failpoint."""

    def action(**context: Any) -> None:
        raise WorkerCrash(message)

    return action


def hang(seconds: float) -> Callable[..., None]:
    """An action that blocks the worker thread for ``seconds`` (a hung worker).

    Bounded on purpose: the thread eventually returns and its admission slot
    is reclaimed, which is exactly what the timeout/backpressure tests
    assert.
    """

    def action(**context: Any) -> None:
        time.sleep(seconds)

    return action


class FaultInjector:
    """Armable failpoints; thread-safe, firing in FIFO arm order per point."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._armed: Dict[str, List[List[Any]]] = {}
        self._fired: Dict[str, int] = {}

    def inject(
        self, point: str, action: Callable[..., None], *, times: int = 1
    ) -> None:
        """Arm ``action`` at ``point`` for the next ``times`` firings."""
        if times < 1:
            raise ValueError("times must be >= 1")
        with self._lock:
            self._armed.setdefault(point, []).append([action, times])

    def fire(self, point: str, **context: Any) -> None:
        """Trigger ``point``: runs (and consumes) the oldest armed action."""
        with self._lock:
            queue = self._armed.get(point, [])
            if not queue:
                return
            entry = queue[0]
            entry[1] -= 1
            if entry[1] <= 0:
                queue.pop(0)
            self._fired[point] = self._fired.get(point, 0) + 1
            action = entry[0]
        action(point=point, **context)

    def fired(self, point: str) -> int:
        """How many times ``point`` has actually triggered an action."""
        with self._lock:
            return self._fired.get(point, 0)

    def pending(self, point: str) -> int:
        """Remaining armed firings at ``point``."""
        with self._lock:
            return sum(entry[1] for entry in self._armed.get(point, []))
