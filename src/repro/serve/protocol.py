"""Wire schema of the serving layer: requests, responses, status codes.

One JSON object in, one JSON object out — the same schema whether a request
arrives over the HTTP front end (``POST /simulate``) or through the
in-process :class:`~repro.serve.client.ServeClient` the test harness uses.

A request names a benchmark circuit and the simulation knobs::

    {"tenant": "alice", "circuit": "qaoa_5", "backend": "tn",
     "noise": {"channel": "depolarizing", "parameter": 0.01, "count": 2},
     "samples": 200, "timeout": 5.0}

Every response carries ``status`` (one of :data:`STATUSES`) plus either the
``result`` payload (a serialized :class:`repro.api.SimulationResult`) and
serving provenance (``tenant_seq``, resolved ``seed``, ``coalesced``,
``cache_hit``), or a structured ``error`` object — never a hung connection
and never an unstructured traceback.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Mapping

__all__ = [
    "HTTP_STATUS",
    "ProtocolError",
    "STATUSES",
    "ServeRequest",
    "error_response",
    "ok_response",
]


class ProtocolError(ValueError):
    """A request payload that cannot be accepted (unknown/ill-typed fields)."""


#: Response statuses the server can emit.
STATUSES = ("ok", "invalid", "overloaded", "timeout", "worker_failed", "error")

#: HTTP status code of each response status (the HTTP front end's mapping).
HTTP_STATUS = {
    "ok": 200,
    "invalid": 400,
    "overloaded": 429,
    "timeout": 504,
    "worker_failed": 503,
    "error": 500,
}

#: Which error statuses an immediate client retry can reasonably fix:
#: ``overloaded`` clears when load drops, ``timeout`` may succeed with more
#: budget, and ``worker_failed`` triggers a pool reset before the response
#: is sent, so the retry runs against a fresh pool.
_RETRYABLE = {"overloaded", "timeout", "worker_failed"}


@dataclass(frozen=True)
class ServeRequest:
    """A validated simulation request (see module docs for the JSON form)."""

    #: Tenant identity: selects the deterministic per-tenant seed stream.
    tenant: str = "default"
    #: Benchmark circuit name (``qaoa_5``, ``ghz_4``, ``brickwork_6``, …).
    circuit: str = ""
    #: Seed of the circuit *construction* (benchmark families are seeded).
    circuit_seed: int = 7
    #: Use the native-gate decomposition of the parametrised families.
    native_gates: bool = True
    #: Noise mapping forwarded to :func:`repro.api.apply_noise` (optional).
    noise: Mapping[str, Any] | None = None
    #: Backend registry name, alias, or ``"auto"``.
    backend: str = "auto"
    #: Approximation level (``approximation`` backend).
    level: int | None = None
    #: Trajectory count (stochastic backends).
    samples: int | None = None
    #: MPS/MPDO bond-dimension ceiling.
    max_bond_dim: int | None = None
    #: Explicit RNG seed; ``None`` draws the tenant stream's next seed.
    seed: int | None = None
    #: Per-request wall-clock budget in seconds (``None``: server default).
    timeout: float | None = None
    #: Run the optimizing compiler passes.
    passes: bool = True

    _INT_FIELDS = ("circuit_seed", "level", "samples", "max_bond_dim", "seed")
    _BOOL_FIELDS = ("native_gates", "passes")

    @classmethod
    def from_payload(cls, payload: Any) -> "ServeRequest":
        """Validate a decoded JSON object into a request; raise :class:`ProtocolError`.

        Strict on field names (an unknown key is an error, not silently
        ignored — a typoed ``"sample"`` must not quietly run with defaults)
        and on the types of the fields it checks; everything downstream
        (backend names, noise mappings) is validated by the session layer,
        whose :class:`~repro.utils.validation.ValidationError` the server
        reports as an ``invalid`` response.
        """
        if not isinstance(payload, Mapping):
            raise ProtocolError("request body must be a JSON object")
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ProtocolError(
                f"unknown request field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        fields: Dict[str, Any] = dict(payload)
        circuit = fields.get("circuit")
        if not isinstance(circuit, str) or not circuit:
            raise ProtocolError("'circuit' is required and must be a benchmark name")
        tenant = fields.get("tenant", cls.tenant)
        if not isinstance(tenant, str) or not tenant:
            raise ProtocolError("'tenant' must be a non-empty string")
        backend = fields.get("backend", cls.backend)
        if not isinstance(backend, str) or not backend:
            raise ProtocolError("'backend' must be a non-empty string")
        for name in cls._INT_FIELDS:
            value = fields.get(name)
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, int):
                raise ProtocolError(f"'{name}' must be an integer")
        for name in cls._BOOL_FIELDS:
            value = fields.get(name)
            if value is not None and not isinstance(value, bool):
                raise ProtocolError(f"'{name}' must be a boolean")
        timeout = fields.get("timeout")
        if timeout is not None:
            if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
                raise ProtocolError("'timeout' must be a number of seconds")
            if timeout <= 0:
                raise ProtocolError("'timeout' must be positive")
            fields["timeout"] = float(timeout)
        noise = fields.get("noise")
        if noise is not None and not isinstance(noise, Mapping):
            raise ProtocolError("'noise' must be an object (channel/parameter/count/seed)")
        return cls(**fields)


def ok_response(
    request_id: int,
    request: ServeRequest,
    *,
    tenant_seq: int,
    seed: int | None,
    result: Mapping[str, Any],
    coalesced: bool,
    cache_hit: bool,
    compile_seconds: float,
    elapsed_seconds: float,
) -> Dict[str, Any]:
    """The success envelope: result payload plus serving provenance."""
    return {
        "status": "ok",
        "request_id": request_id,
        "tenant": request.tenant,
        "tenant_seq": tenant_seq,
        "seed": seed,
        "coalesced": coalesced,
        "cache_hit": cache_hit,
        "compile_seconds": compile_seconds,
        "elapsed_seconds": elapsed_seconds,
        "result": dict(result),
    }


def error_response(
    status: str,
    request_id: int,
    *,
    kind: str,
    message: str,
    tenant: str | None = None,
    tenant_seq: int | None = None,
    **extra: Any,
) -> Dict[str, Any]:
    """A structured failure envelope (never a traceback, never a hang).

    ``kind`` refines the status (e.g. ``"compile_error"`` vs
    ``"execution_error"`` under ``status="error"``); ``extra`` lands inside
    the ``error`` object (queue snapshots for ``overloaded``, the timeout
    budget for ``timeout``, …).
    """
    if status not in STATUSES or status == "ok":
        raise ValueError(f"not an error status: {status!r}")
    body: Dict[str, Any] = {
        "status": status,
        "request_id": request_id,
        "retryable": status in _RETRYABLE,
        "error": {"kind": kind, "message": message, **extra},
    }
    if tenant is not None:
        body["tenant"] = tenant
    if tenant_seq is not None:
        body["tenant_seq"] = tenant_seq
    return body
