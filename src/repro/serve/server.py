"""The multi-tenant serving layer: an asyncio front door over one Session.

:class:`ReproServer` turns the compile/execute split into a long-lived
service.  One :class:`repro.api.Session` (and therefore one plan cache, one
process pool, one dispatch layer) serves every tenant; the server adds the
concerns a shared service needs:

* **request coalescing** — concurrent requests compiling the same
  ``plan_cache_key`` deduplicate to a single in-flight plan search whose
  result fans out to all waiters (the session-level dedup of
  :meth:`repro.api.Session.compile`); K identical concurrent requests cost
  exactly one compile, observable via ``/stats``;
* **per-tenant determinism** — each tenant owns an independent seed stream
  (:mod:`repro.serve.tenancy`), so a tenant's result sequence is
  bit-identical to a serial replay no matter how other tenants' traffic
  interleaves with it;
* **admission control** — a bounded two-tier queue
  (:mod:`repro.serve.admission`) that sheds load with a structured
  ``overloaded`` response instead of stalling when the pool saturates;
* **timeouts and fault tolerance** — per-request deadlines with clean slot
  accounting, structured errors for crashed compiles, and automatic
  process-pool recovery (``worker_failed`` response + pool reset, so an
  immediate retry succeeds);
* **observability** — ``/stats`` reports request counters, coalescing
  counts, queue depth, latency histograms and the session's
  ``cache_stats()``.

The HTTP front end is a minimal stdlib ``asyncio`` HTTP/1.1 server
(``POST /simulate``, ``GET /stats``, ``GET /healthz``); the in-process
:class:`~repro.serve.client.ServeClient` drives :meth:`ReproServer.handle`
directly, which is what the concurrency and fault-injection test harness
uses.
"""

from __future__ import annotations

import asyncio
import collections
import json
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.api import Session
from repro.backends import WorkerPoolError
from repro.circuits.circuit import Circuit
from repro.circuits.library import benchmark_circuit
from repro.serve.admission import AdmissionController
from repro.serve.faults import FaultInjector, WorkerCrash
from repro.serve.protocol import (
    HTTP_STATUS,
    ProtocolError,
    ServeRequest,
    error_response,
    ok_response,
)
from repro.serve.stats import ServerStats
from repro.serve.tenancy import TenantRegistry
from repro.utils.validation import ValidationError

__all__ = ["ReproServer"]

#: Reason phrases for the status codes the HTTP front end emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Distinct (name, seed, native_gates) circuits the server keeps built.
_CIRCUIT_CACHE_SIZE = 64


class ReproServer:
    """A long-lived multi-tenant simulation service (see module docs).

    Parameters
    ----------
    session:
        An existing :class:`repro.api.Session` to serve from; by default the
        server creates and owns one (closed again by :meth:`aclose`).
    seed:
        Server seed: the root of every tenant's deterministic seed stream.
    workers:
        Process-pool size of the owned session (stochastic backends).
    max_inflight:
        Concurrent executions — also the size of the server's worker thread
        pool, so admission capacity and real threads always agree.
    queue_limit:
        Admitted requests held beyond ``max_inflight`` before shedding.
    default_timeout:
        Per-request budget in seconds when the request names none.
    plan_cache_size:
        Plan-cache capacity of the owned session.
    fault_injector:
        Optional :class:`~repro.serve.faults.FaultInjector` armed by the
        fault-injection test harness; ``None`` disables all failpoints.
    max_requests:
        After this many responses the server requests its own shutdown
        (smoke runs and CLI drills); ``None`` serves forever.
    """

    def __init__(
        self,
        session: Session | None = None,
        *,
        seed: int = 0,
        workers: int | None = None,
        max_inflight: int = 4,
        queue_limit: int = 16,
        default_timeout: float = 30.0,
        plan_cache_size: int = 128,
        fault_injector: FaultInjector | None = None,
        max_requests: int | None = None,
    ) -> None:
        if default_timeout <= 0:
            raise ValidationError("default_timeout must be positive")
        if max_requests is not None and max_requests < 1:
            raise ValidationError("max_requests must be >= 1 (or None)")
        self._owns_session = session is None
        self._session = session or Session(
            workers=workers,
            seed=seed,
            plan_cache_size=plan_cache_size,
            max_parallel=max_inflight,
        )
        self._tenants = TenantRegistry(seed)
        self._admission = AdmissionController(max_inflight, queue_limit)
        self._stats = ServerStats()
        self._faults = fault_injector or FaultInjector()
        self._default_timeout = float(default_timeout)
        self._max_requests = max_requests
        self._executor = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="repro-serve"
        )
        self._circuits: "collections.OrderedDict[Tuple, Circuit]" = (
            collections.OrderedDict()
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._http_server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self._closing = False
        self._next_request_id = 0
        self._responses = 0
        self.address: Tuple[str, int] | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def session(self) -> Session:
        """The session every tenant shares (plan cache, pools, seeds)."""
        return self._session

    def stats(self) -> Dict[str, Any]:
        """The ``/stats`` document: server, admission, tenants, plan cache."""
        return {
            "server": self._stats.snapshot(),
            "admission": self._admission.snapshot(),
            "tenants": {
                "count": len(self._tenants),
                "sequences": self._tenants.snapshot(),
            },
            "plan_cache": self._session.cache_stats(),
        }

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def _circuit_for(self, request: ServeRequest) -> Circuit:
        """Build (or reuse) the request's benchmark circuit; LRU-bounded."""
        key = (request.circuit, request.circuit_seed, request.native_gates)
        if key in self._circuits:
            self._circuits.move_to_end(key)
            return self._circuits[key]
        circuit = benchmark_circuit(
            request.circuit,
            seed=request.circuit_seed,
            native_gates=request.native_gates,
        )
        self._circuits[key] = circuit
        while len(self._circuits) > _CIRCUIT_CACHE_SIZE:
            self._circuits.popitem(last=False)
        return circuit

    def _job(
        self,
        request: ServeRequest,
        circuit: Circuit,
        seed: int,
        state: Dict[str, Any],
        admitted_at: float,
    ) -> Dict[str, Any]:
        """The worker-thread body: compile (deduplicated) then execute."""
        state["started"] = True
        self._admission.on_start()
        self._stats.queue_wait.record(time.perf_counter() - admitted_at)
        state["phase"] = "compile"
        self._faults.fire("compile", request=request)
        executable = self._session.compile(
            circuit,
            request.backend,
            noise=dict(request.noise) if request.noise is not None else None,
            level=request.level,
            samples=request.samples,
            seed=seed,
            max_bond_dim=request.max_bond_dim,
            passes=request.passes,
        )
        state["phase"] = "execute"
        self._faults.fire("execute", request=request)
        result = executable.run()
        return {
            "result": result.to_dict(),
            "coalesced": executable.coalesced,
            "cache_hit": executable.cache_hit,
            "compile_seconds": executable.compile_seconds,
        }

    def _run_job(
        self, job, future: "asyncio.Future", loop, state: Dict[str, Any]
    ) -> None:
        """Bridge a worker-thread job back onto the event loop, exactly once.

        The admission slot is released *before* the outcome is delivered, so
        by the time any response reaches a client the slot it occupied is
        free again (a timed-out request's slot stays held exactly as long as
        its worker thread actually runs — never shorter, never longer).
        """
        try:
            outcome = job()
        except BaseException as exc:  # noqa: BLE001 - routed to the awaiter
            result, error = None, exc
        else:
            result, error = outcome, None
        self._admission.release(started=state["started"])
        try:
            loop.call_soon_threadsafe(self._resolve, future, result, error)
        except RuntimeError:  # pragma: no cover - loop gone during shutdown
            pass

    @staticmethod
    def _resolve(future: "asyncio.Future", result, error) -> None:
        if future.done():  # the awaiter timed out; drop the late outcome
            return
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)

    async def handle(self, payload: Any) -> Dict[str, Any]:
        """Serve one decoded request payload; always returns a response dict.

        This is the whole request lifecycle — validation, admission, tenant
        seed allocation, deduplicated compile + execute on a worker thread,
        deadline enforcement, structured error classification — shared
        verbatim by the HTTP front end and the in-process client.
        """
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        arrival = time.perf_counter()
        request_id = self._next_request_id
        self._next_request_id += 1
        try:
            request = ServeRequest.from_payload(payload)
            circuit = self._circuit_for(request)
        except (ProtocolError, ValidationError) as exc:
            self._stats.count("invalid")
            return self._respond(
                error_response(
                    "invalid", request_id, kind="bad_request", message=str(exc)
                )
            )
        if self._closing or not self._admission.try_admit():
            self._stats.count("overloaded")
            snapshot = self._admission.snapshot()
            return self._respond(
                error_response(
                    "overloaded",
                    request_id,
                    kind="shutting_down" if self._closing else "queue_full",
                    message=(
                        "server is shutting down"
                        if self._closing
                        else (
                            f"admission queue full "
                            f"({snapshot['active']}/{self._admission.capacity} slots)"
                        )
                    ),
                    tenant=request.tenant,
                    admission=snapshot,
                )
            )
        # Seed allocation happens on the event loop, after admission: only
        # requests that will actually execute consume a slot of the tenant's
        # deterministic stream, in per-tenant arrival order.
        tenant_seq, stream_seed = self._tenants.allocate(request.tenant)
        seed = request.seed if request.seed is not None else stream_seed
        state: Dict[str, Any] = {"started": False, "phase": "compile"}
        future: "asyncio.Future" = loop.create_future()
        job = partial(self._job, request, circuit, seed, state, arrival)
        handle = self._executor.submit(self._run_job, job, future, loop, state)
        # A job cancelled before it started never reaches _run_job; its slot
        # is returned here (the only other release site).
        handle.add_done_callback(
            lambda f: self._admission.release(started=False, cancelled=True)
            if f.cancelled()
            else None
        )
        timeout = request.timeout if request.timeout is not None else self._default_timeout
        try:
            outcome = await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            cancelled = handle.cancel()
            self._stats.count("timeout")
            return self._respond(
                error_response(
                    "timeout",
                    request_id,
                    kind="deadline_exceeded",
                    message=f"request exceeded its {timeout:g}s budget",
                    tenant=request.tenant,
                    tenant_seq=tenant_seq,
                    timeout_seconds=timeout,
                    cancelled_before_start=cancelled,
                )
            )
        except (WorkerPoolError, BrokenProcessPool) as exc:
            # Executable.run already reset the session pool for
            # WorkerPoolError; reset again defensively (idempotent) so a
            # retry always starts from a fresh pool.
            self._session.reset_pool()
            self._stats.count_pool_reset()
            self._stats.count("worker_failed")
            return self._respond(
                error_response(
                    "worker_failed",
                    request_id,
                    kind="pool_broken",
                    message=f"{type(exc).__name__}: {exc}",
                    tenant=request.tenant,
                    tenant_seq=tenant_seq,
                )
            )
        except WorkerCrash as exc:
            self._stats.count("worker_failed")
            return self._respond(
                error_response(
                    "worker_failed",
                    request_id,
                    kind="worker_crash",
                    message=str(exc),
                    tenant=request.tenant,
                    tenant_seq=tenant_seq,
                )
            )
        except ValidationError as exc:
            self._stats.count("invalid")
            return self._respond(
                error_response(
                    "invalid",
                    request_id,
                    kind="validation_error",
                    message=str(exc),
                    tenant=request.tenant,
                    tenant_seq=tenant_seq,
                )
            )
        except Exception as exc:  # noqa: BLE001 - structured, never a traceback
            self._stats.count("error")
            return self._respond(
                error_response(
                    "error",
                    request_id,
                    kind=(
                        "compile_error"
                        if state["phase"] == "compile"
                        else "execution_error"
                    ),
                    message=f"{type(exc).__name__}: {exc}",
                    tenant=request.tenant,
                    tenant_seq=tenant_seq,
                )
            )
        elapsed = time.perf_counter() - arrival
        self._stats.count("ok", coalesced=outcome["coalesced"])
        self._stats.ok_latency.record(elapsed)
        return self._respond(
            ok_response(
                request_id,
                request,
                tenant_seq=tenant_seq,
                seed=seed,
                result=outcome["result"],
                coalesced=outcome["coalesced"],
                cache_hit=outcome["cache_hit"],
                compile_seconds=outcome["compile_seconds"],
                elapsed_seconds=elapsed,
            )
        )

    def _respond(self, response: Dict[str, Any]) -> Dict[str, Any]:
        """Count a sent response toward the optional ``max_requests`` drain."""
        self._responses += 1
        if self._max_requests is not None and self._responses >= self._max_requests:
            self.request_shutdown()
        return response

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def request_shutdown(self) -> None:
        """Ask :meth:`serve_forever` to return (safe from any thread)."""
        self._closing = True
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._shutdown.set)
        else:  # not yet bound to a loop: nothing is waiting
            self._shutdown.set()

    async def aclose(self) -> None:
        """Stop accepting work, drain worker threads, close owned resources."""
        self._closing = True
        if self._http_server is not None:
            self._http_server.close()
            await self._http_server.wait_closed()
            self._http_server = None
        # Bounded drain: in-flight worker threads finish (injected hangs are
        # bounded by construction), queued-but-unstarted jobs are cancelled.
        await asyncio.get_running_loop().run_in_executor(
            None, partial(self._executor.shutdown, wait=True, cancel_futures=True)
        )
        if self._owns_session:
            self._session.close()

    # ------------------------------------------------------------------
    # HTTP front end (stdlib asyncio, HTTP/1.1 with keep-alive)
    # ------------------------------------------------------------------
    async def start_http(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Bind the HTTP endpoint; returns the actual ``(host, port)``."""
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        self._http_server = await asyncio.start_server(
            self._serve_connection, host, port
        )
        sockname = self._http_server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def serve_forever(self) -> None:
        """Serve until :meth:`request_shutdown` (or ``max_requests``); then close."""
        try:
            await self._shutdown.wait()
        finally:
            await self.aclose()

    #: Largest accepted request body, in bytes.
    MAX_BODY_BYTES = 1 << 20

    async def _serve_connection(self, reader, writer) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or not request_line.strip():
                    break
                try:
                    method, path, version = request_line.decode("latin1").split()
                except ValueError:
                    writer.write(_http_bytes(400, _http_error("malformed request line"), False))
                    await writer.drain()
                    break
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if not line or line in (b"\r\n", b"\n"):
                        break
                    name, _, value = line.decode("latin1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    length = -1
                if length < 0 or length > self.MAX_BODY_BYTES:
                    writer.write(_http_bytes(413, _http_error("unacceptable content-length"), False))
                    await writer.drain()
                    break
                body = await reader.readexactly(length) if length else b""
                status, payload = await self._route(method, path, body)
                default_keep = "keep-alive" if version == "HTTP/1.1" else "close"
                keep_alive = (
                    headers.get("connection", default_keep).lower() != "close"
                    and not self._closing
                )
                writer.write(_http_bytes(status, payload, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # client went away mid-request; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Mapping[str, Any]]:
        if path == "/simulate":
            if method != "POST":
                return 405, _http_error(f"{method} not allowed on /simulate")
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, _http_error(f"request body is not valid JSON: {exc}")
            response = await self.handle(payload)
            return HTTP_STATUS[response["status"]], response
        if method != "GET":
            return 405, _http_error(f"{method} not allowed on {path}")
        if path == "/stats":
            return 200, self.stats()
        if path == "/healthz":
            return 200, {"status": "ok", "closing": self._closing}
        return 404, _http_error(f"no such route: {path}")


def _http_error(message: str) -> Dict[str, Any]:
    return {"status": "invalid", "error": {"kind": "http_error", "message": message}}


def _http_bytes(status: int, payload: Mapping[str, Any], keep_alive: bool) -> bytes:
    data = json.dumps(payload).encode("utf-8")
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(data)}\r\n"
        f"Connection: {connection}\r\n\r\n"
    )
    return head.encode("latin1") + data
