"""Per-tenant deterministic seed streams.

Every tenant owns an independent, deterministic RNG stream: request ``k`` of
tenant ``t`` on a server seeded with ``S`` always runs with the seed

    sha256(S, "tenant", t, "request", k)  (truncated to 63 bits)

No allocation ever depends on *other* tenants' traffic, so a tenant's result
sequence is bit-reproducible regardless of how the scheduler interleaves it
with concurrent tenants — the serial-replay oracle of the concurrency test
suite: replay one tenant's requests alone, in per-tenant order, against a
fresh server with the same server seed, and every value must match exactly.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, Tuple

__all__ = ["TenantRegistry", "tenant_request_seed"]


def _derive(*parts: object) -> int:
    """Deterministic 63-bit seed from parts (same scheme as the session layer)."""
    digest = hashlib.sha256("\x1f".join(str(part) for part in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") % (2**63)


def tenant_request_seed(server_seed: int, tenant: str, seq: int) -> int:
    """The seed of request ``seq`` (0-based) in ``tenant``'s stream.

    Pure function of ``(server_seed, tenant, seq)`` — the replay oracle
    computes expected seeds without a server.

    >>> a = tenant_request_seed(0, "alice", 0)
    >>> a == tenant_request_seed(0, "alice", 0)
    True
    >>> len({a, tenant_request_seed(0, "alice", 1),
    ...      tenant_request_seed(0, "bob", 0), tenant_request_seed(1, "alice", 0)})
    4
    """
    return _derive(server_seed, "tenant", tenant, "request", seq)


class TenantRegistry:
    """Allocates per-tenant sequence numbers and their deterministic seeds.

    Allocation order *within* a tenant is the server's arrival order for
    that tenant; allocations of different tenants never interact.  Safe to
    call from any thread (the server allocates on its event loop, tests may
    poke it directly).
    """

    def __init__(self, server_seed: int = 0) -> None:
        self.server_seed = int(server_seed)
        self._lock = threading.Lock()
        self._sequences: Dict[str, int] = {}

    def allocate(self, tenant: str) -> Tuple[int, int]:
        """Consume the tenant's next slot: returns ``(seq, seed)``."""
        with self._lock:
            seq = self._sequences.get(tenant, 0)
            self._sequences[tenant] = seq + 1
        return seq, tenant_request_seed(self.server_seed, tenant, seq)

    def snapshot(self) -> Dict[str, int]:
        """Requests allocated so far, per tenant (the ``/stats`` view)."""
        with self._lock:
            return dict(self._sequences)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sequences)
