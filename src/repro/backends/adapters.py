"""Adapter classes wrapping every simulator behind the uniform backend API.

Each adapter translates the :class:`~repro.backends.base.SimulationTask`
vocabulary into the wrapped simulator's own calling convention and packs the
outcome into a :class:`~repro.backends.base.BackendResult`.  Registration
happens at import time via :func:`~repro.backends.registry.register_backend`.

Adapters with expensive per-circuit one-time work implement the
compile/execute split (:meth:`~repro.backends.base.SimulationBackend.compile`
→ ``run(plan=...)``): the TN adapter records its contraction schedule once,
the trajectory adapters prepare the engine's per-circuit context (template
network, Kraus sampling distributions), the approximation adapter records the
split-network schedules all substituted terms replay, and the statevector
adapter resolves its dense boundary states.  Plan execution is bit-identical
to the plan-less path — a plan moves the one-time work, never the values.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import (
    BackendResult,
    BackendUnsupportedError,
    SimulationBackend,
    SimulationTask,
)
from repro.backends.engine import BatchedTrajectoryEngine
from repro.backends.registry import register_backend
from repro.circuits.circuit import Circuit
from repro.circuits.parameters import is_parametric
from repro.circuits.passes import PassProfile
from repro.core import ApproximateNoisySimulator
from repro.simulators import (
    DensityMatrixSimulator,
    MatrixProductState,
    MPDOSimulator,
    MPSSimulator,
    StatevectorSimulator,
    TDDSimulator,
    TNSimulator,
)
from repro.tensornetwork.circuit_to_tn import dense_product_state, resolve_product_state

__all__ = [
    "StatevectorBackend",
    "DensityMatrixBackend",
    "TNBackend",
    "TDDBackend",
    "MPSBackend",
    "MPDOBackend",
    "TrajectoryMMBackend",
    "TrajectoryTNBackend",
    "ApproximationBackend",
]


def _default_states(circuit: Circuit, task: SimulationTask):
    n = circuit.num_qubits
    input_state = "0" * n if task.input_state is None else task.input_state
    output_state = "0" * n if task.output_state is None else task.output_state
    return input_state, output_state


@register_backend(
    "statevector", noisy=False, exact=True, max_qubits=24, supports_device=True,
    aliases=("sv",),
)
class StatevectorBackend(SimulationBackend):
    """Dense noiseless simulation: ``|⟨v| C |ψ⟩|²``."""

    def __init__(self, max_qubits: int | None = None) -> None:
        self._max_qubits = max_qubits

    def max_qubits(self) -> int | None:
        return self._max_qubits if self._max_qubits is not None else self.capabilities.max_qubits

    def _compile(self, circuit: Circuit, task: SimulationTask):
        input_state, output_state = _default_states(circuit, task)
        n = circuit.num_qubits
        return (dense_product_state(input_state, n), dense_product_state(output_state, n))

    def _amplitude(self, circuit: Circuit, task: SimulationTask, psi: np.ndarray, v: np.ndarray):
        simulator = StatevectorSimulator(
            max_qubits=task.options.get("max_qubits", self.max_qubits()),
            device=task.device,
        )
        amplitude = simulator.amplitude(circuit, v, psi)
        return BackendResult(backend=self.name, value=float(abs(amplitude) ** 2))

    def _run(self, circuit: Circuit, task: SimulationTask) -> BackendResult:
        psi, v = self._compile(circuit, task)
        return self._amplitude(circuit, task, psi, v)

    def _run_plan(self, circuit: Circuit, task: SimulationTask, plan) -> BackendResult:
        psi, v = plan
        return self._amplitude(circuit, task, psi, v)


@register_backend(
    "density_matrix", noisy=True, exact=True, max_qubits=12, supports_device=True,
    aliases=("mm", "dm"),
)
class DensityMatrixBackend(SimulationBackend):
    """MM-based exact noisy simulation (the paper's Table II baseline)."""

    def __init__(self, max_qubits: int | None = None) -> None:
        self._max_qubits = max_qubits

    def max_qubits(self) -> int | None:
        return self._max_qubits if self._max_qubits is not None else self.capabilities.max_qubits

    def pass_profile(self) -> PassProfile:
        # Exact superoperator evolution: composing adjacent channels is exact.
        return PassProfile(merge_channels=True)

    def _run(self, circuit: Circuit, task: SimulationTask) -> BackendResult:
        input_state, output_state = _default_states(circuit, task)
        n = circuit.num_qubits
        simulator = DensityMatrixSimulator(
            max_qubits=task.options.get("max_qubits", self.max_qubits()),
            device=task.device,
        )
        value = simulator.fidelity(
            circuit,
            dense_product_state(output_state, n),
            dense_product_state(input_state, n),
        )
        return BackendResult(backend=self.name, value=float(value))


@register_backend("tn", noisy=True, exact=True, supports_device=True)
class TNBackend(SimulationBackend):
    """Exact contraction of the paper's doubled tensor-network diagram."""

    def __init__(
        self, max_intermediate_size: int | None = 2**26, strategy: str = "greedy"
    ) -> None:
        self.max_intermediate_size = max_intermediate_size
        self.strategy = strategy

    def pass_profile(self) -> PassProfile:
        # The doubled diagram inserts each channel's superoperator tensor
        # verbatim, so channel merging is an exact network rewrite here.
        return PassProfile(merge_channels=True)

    def _simulator(self, task: SimulationTask) -> TNSimulator:
        return TNSimulator(
            max_intermediate_size=task.options.get(
                "max_intermediate_size", self.max_intermediate_size
            ),
            strategy=task.options.get("strategy", self.strategy),
            device=task.device,
        )

    def _compile(self, circuit: Circuit, task: SimulationTask):
        input_state, output_state = _default_states(circuit, task)
        return self._simulator(task).prepare(circuit, input_state, output_state)

    def _run(self, circuit: Circuit, task: SimulationTask) -> BackendResult:
        input_state, output_state = _default_states(circuit, task)
        value = self._simulator(task).fidelity(circuit, input_state, output_state)
        return BackendResult(backend=self.name, value=float(value), num_contractions=1)

    def _run_plan(self, circuit: Circuit, task: SimulationTask, plan) -> BackendResult:
        if getattr(plan, "parametric", False):
            # Bind-slot template: replay the recorded schedule on tensors
            # rebuilt from the bound circuit actually being executed.
            return BackendResult(
                backend=self.name, value=plan.execute_bound(circuit), num_contractions=1
            )
        return BackendResult(
            backend=self.name, value=plan.execute(), num_contractions=1
        )


@register_backend("tdd", noisy=True, exact=True, max_qubits=16)
class TDDBackend(SimulationBackend):
    """Decision-diagram exact noisy simulation."""

    def __init__(self, max_qubits: int | None = None, max_nodes: int | None = 200_000) -> None:
        self._max_qubits = max_qubits
        self.max_nodes = max_nodes

    def max_qubits(self) -> int | None:
        return self._max_qubits if self._max_qubits is not None else self.capabilities.max_qubits

    def pass_profile(self) -> PassProfile:
        # Decision diagrams evolve the full superoperator exactly as well.
        return PassProfile(merge_channels=True)

    def _run(self, circuit: Circuit, task: SimulationTask) -> BackendResult:
        input_state, output_state = _default_states(circuit, task)
        n = circuit.num_qubits
        simulator = TDDSimulator(
            max_qubits=task.options.get("max_qubits", self.max_qubits()),
            max_nodes=task.options.get("max_nodes", self.max_nodes),
        )
        value = simulator.fidelity(
            circuit,
            dense_product_state(output_state, n),
            dense_product_state(input_state, n),
        )
        return BackendResult(
            backend=self.name, value=float(value), metadata={"max_nodes": self.max_nodes}
        )


@register_backend("mps", noisy=False, exact=False, needs_product_state=True)
class MPSBackend(SimulationBackend):
    """Matrix-product-state simulation of noiseless circuits (bond truncation)."""

    def __init__(
        self, max_bond_dim: int | None = None, truncation_threshold: float = 1e-12
    ) -> None:
        self.max_bond_dim = max_bond_dim
        self.truncation_threshold = truncation_threshold

    def _extra_supports(self, circuit: Circuit) -> str | None:
        if any(len(inst.qubits) > 2 for inst in circuit):
            return "mps supports 1- and 2-qubit gates only"
        return None

    def _run(self, circuit: Circuit, task: SimulationTask) -> BackendResult:
        input_state, output_state = _default_states(circuit, task)
        n = circuit.num_qubits
        if not (isinstance(input_state, str) and set(input_state) <= {"0"}):
            raise BackendUnsupportedError("mps backend starts from |0…0⟩ only")
        factors = resolve_product_state(output_state, n)
        if not isinstance(factors, list):
            raise BackendUnsupportedError("mps backend needs a product output state")
        max_bond = task.max_bond_dim if task.max_bond_dim is not None else self.max_bond_dim
        simulator = MPSSimulator(
            max_bond_dim=max_bond,
            truncation_threshold=task.options.get(
                "truncation_threshold", self.truncation_threshold
            ),
        )
        mps = simulator.run(circuit)
        overlap = MatrixProductState.from_product_state(factors).overlap(mps)
        value = float(abs(overlap) ** 2)
        return BackendResult(
            backend=self.name,
            value=value,
            metadata={
                "max_bond_dimension": mps.max_bond_dimension(),
                "discarded_weight": simulator.total_discarded_weight,
            },
        )


@register_backend("mpdo", noisy=True, exact=False, needs_product_state=True)
class MPDOBackend(SimulationBackend):
    """Matrix-product-density-operator noisy simulation (1-qubit channels)."""

    def __init__(
        self, max_bond_dim: int | None = None, truncation_threshold: float = 1e-12
    ) -> None:
        self.max_bond_dim = max_bond_dim
        self.truncation_threshold = truncation_threshold

    def _extra_supports(self, circuit: Circuit) -> str | None:
        for inst in circuit:
            if inst.is_noise and len(inst.qubits) != 1:
                return "mpdo supports single-qubit noise channels only"
            if inst.is_gate and len(inst.qubits) > 2:
                return "mpdo supports 1- and 2-qubit gates only"
        return None

    def pass_profile(self) -> PassProfile:
        # Channels are applied as exact local superoperators (truncation only
        # happens on two-qubit gates), and merging two single-qubit channels
        # yields another single-qubit channel, so the arity constraint holds.
        return PassProfile(merge_channels=True)

    def _run(self, circuit: Circuit, task: SimulationTask) -> BackendResult:
        input_state, output_state = _default_states(circuit, task)
        n = circuit.num_qubits
        if not (isinstance(input_state, str) and set(input_state) <= {"0"}):
            raise BackendUnsupportedError("mpdo backend starts from |0…0⟩ only")
        max_bond = task.max_bond_dim if task.max_bond_dim is not None else self.max_bond_dim
        simulator = MPDOSimulator(
            max_bond_dim=max_bond,
            truncation_threshold=task.options.get(
                "truncation_threshold", self.truncation_threshold
            ),
        )
        value = simulator.fidelity(circuit, output_state)
        return BackendResult(
            backend=self.name,
            value=float(value),
            metadata={"discarded_weight": simulator.total_discarded_weight},
        )


class _TrajectoryBackendBase(SimulationBackend):
    """Shared implementation of the two batched trajectory backends."""

    _engine_backend = "statevector"

    def __init__(
        self, max_intermediate_size: int | None = 2**26, device: str | None = None
    ) -> None:
        self.max_intermediate_size = max_intermediate_size
        self.engine = BatchedTrajectoryEngine(
            backend=self._engine_backend,
            max_intermediate_size=max_intermediate_size,
            device=device,
        )

    def _engine_for(self, task: SimulationTask) -> BatchedTrajectoryEngine:
        """The default engine, or a same-configuration one on ``task.device``.

        Engine construction is cheap (namespaces are cached by the registry)
        and the prepared context from :meth:`_compile` is engine-independent
        — it caches device tensors per namespace — so plans compiled on one
        device replay on another.
        """
        device = task.device if task.device is not None else self.engine.device
        if device == self.engine.device:
            return self.engine
        return BatchedTrajectoryEngine(
            backend=self._engine_backend,
            max_intermediate_size=self.max_intermediate_size,
            device=device,
        )

    def _compile(self, circuit: Circuit, task: SimulationTask):
        if task.workers is not None and task.workers > 1:
            # The multi-process path prepares a context inside each worker
            # process; a parent-side context would be dead weight (the plan
            # cache keys pooled and in-process regimes separately).
            return None
        input_state, output_state = _default_states(circuit, task)
        return self.engine.prepare(circuit, input_state, output_state)

    def _run(self, circuit: Circuit, task: SimulationTask, plan=None) -> BackendResult:
        input_state, output_state = _default_states(circuit, task)
        if plan is not None and getattr(plan, "parametric", False):
            # The compiled context is a bind-slot template (prepared from a
            # placeholder binding): swap in the bound circuit's gate values
            # while reusing the recorded contraction plan and the Kraus
            # sampling distributions, which are value-independent.
            plan = plan.rebound(circuit)
        result = self._engine_for(task).estimate_fidelity(
            circuit,
            task.num_samples,
            input_state,
            output_state,
            rng=task.seed,
            keep_samples=task.keep_samples,
            workers=task.workers,
            # A caller-owned process pool (e.g. a session's shared pool); the
            # engine reuses it without shutting it down.
            executor=task.resolved_executor(),
            # The prepared per-circuit context (template network, recorded
            # contraction plan, Kraus sampling distributions) when compiled.
            context=plan,
        )
        return BackendResult(
            backend=self.name,
            value=result.estimate,
            standard_error=result.standard_error,
            num_samples=result.num_samples,
            metadata={"workers": task.workers},
        )

    def _run_plan(self, circuit: Circuit, task: SimulationTask, plan) -> BackendResult:
        return self._run(circuit, task, plan=plan)

    def samples_for_precision(
        self,
        circuit: Circuit,
        target_standard_error: float,
        pilot_samples: int = 64,
        rng=None,
        max_samples: int = 1_000_000,
        input_state=None,
        output_state=None,
    ) -> int:
        """Trajectory count needed to reach ``target_standard_error``.

        Runs the per-sample reference simulator's short pilot with this
        backend's engine kind; used by the Table III / Fig. 5 harnesses (via
        :meth:`repro.api.Session.samples_for_precision`) to match the
        trajectories baseline to the approximation algorithm's accuracy.
        """
        from repro.simulators import TrajectorySimulator

        return TrajectorySimulator(self._engine_backend).samples_for_precision(
            circuit,
            target_standard_error,
            pilot_samples=pilot_samples,
            input_state=input_state,
            output_state=output_state,
            rng=rng,
            max_samples=max_samples,
        )


@register_backend(
    "trajectories", noisy=True, exact=False, stochastic=True, max_qubits=22,
    supports_device=True, aliases=("traj", "traj_mm"),
)
class TrajectoryMMBackend(_TrajectoryBackendBase):
    """Quantum trajectories on batched dense statevectors (Traj (MM))."""

    _engine_backend = "statevector"


@register_backend(
    "trajectories_tn", noisy=True, exact=False, stochastic=True, supports_device=True,
    aliases=("traj_tn",),
)
class TrajectoryTNBackend(_TrajectoryBackendBase):
    """Quantum trajectories as cached-plan tensor-network contractions (Traj (TN))."""

    _engine_backend = "tn"


@register_backend("approximation", noisy=True, exact=False, aliases=("ours", "approx"))
class ApproximationBackend(SimulationBackend):
    """The paper's approximation algorithm (Algorithm 1) at ``task.level``."""

    def __init__(
        self,
        max_intermediate_size: int | None = 2**26,
        backend: str = "tn",
        strategy: str = "greedy",
    ) -> None:
        self.max_intermediate_size = max_intermediate_size
        self.backend = backend
        self.strategy = strategy

    def _simulator(self, task: SimulationTask) -> ApproximateNoisySimulator:
        return ApproximateNoisySimulator(
            level=task.level,
            backend=task.options.get("backend", self.backend),
            max_intermediate_size=task.options.get(
                "max_intermediate_size", self.max_intermediate_size
            ),
            strategy=task.options.get("strategy", self.strategy),
        )

    def _compile(self, circuit: Circuit, task: SimulationTask):
        simulator = self._simulator(task)
        if simulator.backend != "tn":
            # The dense term evaluator has no plan to record.
            return None
        if is_parametric(circuit):
            # The approximation plan bakes gate tensors into its specialized
            # per-term schedules, which would freeze one binding's values;
            # parametric circuits use the plan-less path, which reads the
            # bound circuit on every run.
            return None
        input_state, output_state = _default_states(circuit, task)
        return simulator.prepare(circuit, input_state, output_state)

    def _execute(self, circuit: Circuit, task: SimulationTask, prepared) -> BackendResult:
        input_state, output_state = _default_states(circuit, task)
        simulator = self._simulator(task)
        result = simulator.fidelity(circuit, input_state, output_state, prepared=prepared)
        return BackendResult(
            backend=self.name,
            value=result.value,
            num_contractions=result.num_contractions,
            metadata={
                "level": result.level,
                "error_bound": result.error_bound,
                "num_terms": result.num_terms,
                "num_noises": result.num_noises,
            },
        )

    def _run(self, circuit: Circuit, task: SimulationTask) -> BackendResult:
        return self._execute(circuit, task, None)

    def _run_plan(self, circuit: Circuit, task: SimulationTask, plan) -> BackendResult:
        return self._execute(circuit, task, plan)
