"""Batched parallel trajectory execution engine.

Replaces the per-sample Python loop of the quantum-trajectories method with
two batched hot paths:

* **statevector** — a whole ``(batch, 2**n)`` array of trajectory states is
  evolved at once; gates are applied with one einsum-style ``tensordot`` per
  gate over the entire batch, and Kraus operators are drawn with their exact
  Born probabilities for all trajectories simultaneously.
* **tn** — the amplitude network of a trajectory has the same topology for
  every sample (only the sampled Kraus tensor *values* change), so the node /
  edge construction and the greedy contraction-ordering work are done once on
  a template and replayed per trajectory via
  :class:`repro.tensornetwork.plan.ContractionPlan` (state-independent Kraus
  sampling with importance weights, as in the original implementation).

Two RNG regimes are supported:

* ``workers=None`` (default) — a single RNG stream consumed in exactly the
  order of the historical per-sample loop (one uniform per (sample, channel),
  sample-major), so the engine reproduces the old loop's estimates for the
  same seed.
* ``workers=k`` — samples are split into fixed-size blocks of
  :data:`RNG_BLOCK` trajectories and block ``b`` uses the independent stream
  ``default_rng([seed, b])``.  Results are therefore identical for any worker
  count (1, 2, …), and blocks are executed by a ``concurrent.futures``
  process pool when ``k > 1``.

Both hot paths dispatch their dense math through an
:class:`repro.xp.ArrayNamespace` (``device=`` on the constructor).  Gate and
Kraus tensors are transferred once per prepared context and cached per
namespace; the per-slab result buffer comes from the namespace ``workspace``
cache; sampling decisions (Born probabilities, cdfs, choices) run on the host
from small transferred weight vectors, so the same uniforms produce the same
trajectories on every device.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.circuits.circuit import Circuit
from repro.circuits.parameters import is_parametric
from repro.simulators.statevector import apply_matrix
from repro.tensornetwork.circuit_to_tn import (
    StateLike,
    dense_product_state,
    operator_amplitude_network,
    resolve_product_state,
)
from repro.tensornetwork.plan import ContractionPlan
from repro.utils.validation import ValidationError
from repro.xp import declare_seam, get_namespace
from repro.xp import host as np

declare_seam(__name__, mode="dispatch")

__all__ = ["BatchedTrajectoryEngine", "RNG_BLOCK", "WorkerPoolError", "apply_matrix_batched"]


class WorkerPoolError(RuntimeError):
    """A caller-owned process pool broke mid-run (a worker process died).

    Raised instead of silently degrading to serial execution when the pool
    was supplied by the caller: a long-lived owner (e.g. a
    :class:`repro.api.Session` serving traffic) must learn that its pool is
    broken — a ``ProcessPoolExecutor`` never recovers once flagged — so it
    can tear the pool down, recreate it, and retry.  Self-created per-call
    pools keep the historical serial fallback, which is bit-identical
    because block seeding makes values independent of the distribution.
    """

#: Trajectories per RNG block in seeded (``workers``) mode.  Fixed — not a
#: tuning knob — so that results are reproducible across worker counts.
RNG_BLOCK = 256


def _apply_gate_tensor(tensor, gate_tensor, qubits: Sequence[int], num_qubits: int, xp):
    """Apply a reshaped gate tensor to a batched state, returning a lazy transpose view."""
    qubits = [int(q) for q in qubits]
    k = len(qubits)
    axes = [q + 1 for q in qubits]
    contracted = xp.tensordot(gate_tensor, tensor, axes=(list(range(k, 2 * k)), axes))
    order = list(axes) + [ax for ax in range(num_qubits + 1) if ax not in axes]
    return xp.transpose(contracted, np.argsort(order))


def apply_matrix_batched(
    states, matrix, qubits: Sequence[int], num_qubits: int, xp=None
):
    """Apply ``matrix`` to the given qubits of every state in a ``(batch, 2**n)`` array.

    The batched analogue of :func:`repro.simulators.statevector.apply_matrix`:
    one ``tensordot`` contracts the gate's input axes with the qubit axes of
    the whole batch at once.  ``matrix`` is host data; ``states`` must already
    live on ``xp``'s device (default: host numpy).
    """
    if xp is None:
        xp = get_namespace("cpu")
    matrix = np.asarray(matrix, dtype=complex)
    k = len(qubits)
    if matrix.shape != (2**k, 2**k):
        raise ValidationError(f"matrix shape {matrix.shape} does not match {k} qubits")
    batch = states.shape[0]
    gate_tensor = xp.asarray(matrix.reshape([2] * (2 * k)))
    tensor = xp.reshape(xp.asarray(states, dtype=xp.complex_dtype), [batch] + [2] * num_qubits)
    return xp.reshape(
        _apply_gate_tensor(tensor, gate_tensor, qubits, num_qubits, xp), (batch, -1)
    )


def _searchsorted_rows(cdf_rows: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
    """Per-row ``searchsorted(cdf, u, side="right")`` for a (batch, K) cdf array."""
    return np.minimum(
        (cdf_rows <= uniforms[:, None]).sum(axis=1), cdf_rows.shape[1] - 1
    )


@dataclass
class _StreamStats:
    """Streaming mean/variance accumulator (Chan's parallel merge).

    Keeps the estimate and ``ddof=1`` standard error exact without retaining
    the per-sample values, so million-sample runs do not hold a
    million-element array unless the caller asks for the samples.
    """

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def merge_values(self, values: np.ndarray) -> None:
        if values.size == 0:
            return
        chunk_count = int(values.size)
        chunk_mean = float(values.mean())
        chunk_m2 = float(((values - chunk_mean) ** 2).sum())
        if self.count == 0:
            self.count, self.mean, self.m2 = chunk_count, chunk_mean, chunk_m2
            return
        total = self.count + chunk_count
        delta = chunk_mean - self.mean
        self.mean += delta * chunk_count / total
        self.m2 += chunk_m2 + delta * delta * self.count * chunk_count / total
        self.count = total

    @property
    def standard_error(self) -> float:
        if self.count <= 1:
            return float("inf")
        return float(np.sqrt(self.m2 / (self.count - 1)) / np.sqrt(self.count))


class _TrajectoryContext:
    """Per-process prepared state: everything that is constant across samples."""

    def __init__(
        self,
        engine: "BatchedTrajectoryEngine",
        circuit: Circuit,
        input_state: StateLike,
        output_state: StateLike,
    ) -> None:
        self.circuit = circuit
        self.num_qubits = circuit.num_qubits
        self.num_channels = circuit.noise_count()
        #: True when the circuit carries parametric gates: the context is then
        #: a bind-slot template whose tensor values belong to whichever
        #: binding prepared it — :meth:`rebound` swaps in another binding's
        #: values without repeating the plan recording.
        self.parametric = is_parametric(circuit)
        self._engine = engine
        self._input_state = input_state
        self._output_state = output_state
        #: Per-namespace cache of device-resident operator tensors (see
        #: :meth:`device_tensors`); contexts are reusable across devices.
        self._device_cache = {}
        if engine.backend == "statevector":
            self.psi0 = dense_product_state(input_state, self.num_qubits)
            self.v = dense_product_state(output_state, self.num_qubits)
        else:
            self._prepare_tn(engine, circuit, input_state, output_state)

    # -- TN template -----------------------------------------------------
    def _build_template(
        self,
        engine: "BatchedTrajectoryEngine",
        circuit: Circuit,
        input_state: StateLike,
        output_state: StateLike,
    ):
        """Build the trajectory amplitude network for ``circuit``.

        Returns ``(template, template_tensors, noise_positions)``.  Shared by
        the initial preparation and :meth:`rebound`, which rebuilds only the
        tensors (same topology, different gate values) for a new binding.
        """
        n = circuit.num_qubits
        operations: List[Tuple[np.ndarray, Tuple[int, ...]]] = []
        noise_meta: List[Tuple[int, object]] = []  # (op index, instruction)
        for inst in circuit:
            if inst.is_gate:
                operations.append((inst.operation.matrix, inst.qubits))
            else:
                noise_meta.append((len(operations), inst))
                operations.append((inst.operation.kraus_operators[0], inst.qubits))
        template = operator_amplitude_network(
            n,
            operations,
            input_state,
            output_state,
            name="trajectory_template",
            max_intermediate_size=engine.max_intermediate_size,
        )
        # Boundary nodes precede the op nodes in insertion order: one node per
        # qubit for product states, a single node for a dense state.
        resolved_in = resolve_product_state(input_state, n)
        input_nodes = n if isinstance(resolved_in, list) else 1
        template_tensors = [node.tensor for node in template.nodes]
        noise_positions = [
            (input_nodes + op_index, inst) for op_index, inst in noise_meta
        ]
        return template, template_tensors, noise_positions

    def _prepare_tn(
        self,
        engine: "BatchedTrajectoryEngine",
        circuit: Circuit,
        input_state: StateLike,
        output_state: StateLike,
    ) -> None:
        template, self.template_tensors, self.noise_positions = self._build_template(
            engine, circuit, input_state, output_state
        )
        self.plan, _ = ContractionPlan.record(template)
        # Partial evaluation over the static tensors: per-sample replays touch
        # only the contractions downstream of a sampled Kraus tensor (values
        # are bit-identical to a full replay; the static prefix is paid once).
        # Noiseless circuits take the single-replay short circuit instead.
        self.specialized = (
            self.plan.specialize(
                self.template_tensors,
                [position for position, _ in self.noise_positions],
            )
            if self.noise_positions
            else None
        )
        self._derive_kraus_distributions()

    def _derive_kraus_distributions(self) -> None:
        # State-independent sampling distributions q_k = tr(E_k† E_k)/d and
        # their cdfs (normalised exactly as np.random.Generator.choice does).
        self.q_dists: List[np.ndarray] = []
        self.q_cdfs: List[np.ndarray] = []
        for _, inst in self.noise_positions:
            weights = np.array(
                [np.real(np.trace(op.conj().T @ op)) for op in inst.operation.kraus_operators]
            )
            weights = weights / weights.sum()
            cdf = weights.cumsum()
            cdf = cdf / cdf[-1]
            self.q_dists.append(weights)
            self.q_cdfs.append(cdf)

    # -- bind slot -------------------------------------------------------
    def rebound(self, circuit: Circuit) -> "_TrajectoryContext":
        """Return this context re-targeted at another binding of its structure.

        ``circuit`` must be a binding of the parametric structure this
        context was prepared from (same instruction sequence; only gate
        *values* differ).  All value-independent products are shared with the
        parent: the recorded :class:`ContractionPlan` (the greedy ordering
        inspects tensor sizes, never entries), the Kraus sampling
        distributions (noise channels carry no parameters) and the boundary
        states.  Only the value-dependent pieces are rebuilt — the TN
        template tensors plus their static-prefix specialization, or, for the
        statevector path, the per-device gate-tensor cache (invalidated, and
        repopulated lazily from the bound circuit's matrices).
        """
        if not self.parametric:
            raise ValueError("rebound() requires a context prepared from a parametric circuit")
        bound = object.__new__(_TrajectoryContext)
        bound.circuit = circuit
        bound.num_qubits = self.num_qubits
        bound.num_channels = self.num_channels
        # The rebound context serves exactly one binding; marking it
        # non-parametric keeps a second rebind from chaining off stale values.
        bound.parametric = False
        bound._engine = self._engine
        bound._input_state = self._input_state
        bound._output_state = self._output_state
        bound._device_cache = {}
        if self._engine.backend == "statevector":
            bound.psi0 = self.psi0
            bound.v = self.v
            return bound
        _, bound.template_tensors, bound.noise_positions = self._build_template(
            self._engine, circuit, self._input_state, self._output_state
        )
        bound.plan = self.plan
        bound.specialized = (
            self.plan.specialize(
                bound.template_tensors,
                [position for position, _ in bound.noise_positions],
            )
            if bound.noise_positions
            else None
        )
        bound.q_dists = self.q_dists
        bound.q_cdfs = self.q_cdfs
        return bound

    # -- device residency (statevector path) -----------------------------
    def device_tensors(self, xp):
        """Return ``(psi0, v_conj, op_tensors)`` resident on ``xp``'s device.

        Transferred once per namespace and cached: per-slab replays then touch
        the host only for the small Born-weight vectors.  ``op_tensors`` holds
        one reshaped gate tensor per gate instruction and a list of reshaped
        Kraus tensors per noise instruction, in circuit order.
        """
        cached = self._device_cache.get(xp.name)
        if cached is None:
            op_tensors = []
            for inst in self.circuit:
                k = len(inst.qubits)
                if inst.is_gate:
                    matrix = np.asarray(inst.operation.matrix, dtype=complex)
                    op_tensors.append(xp.asarray(matrix.reshape([2] * (2 * k))))
                else:
                    op_tensors.append(
                        [
                            xp.asarray(
                                np.asarray(op, dtype=complex).reshape([2] * (2 * k))
                            )
                            for op in inst.operation.kraus_operators
                        ]
                    )
            cached = (xp.asarray(self.psi0), xp.asarray(self.v.conj()), op_tensors)
            self._device_cache[xp.name] = cached
        return cached


class BatchedTrajectoryEngine:
    """Batched, optionally multi-process quantum-trajectories estimator."""

    def __init__(
        self,
        backend: str = "statevector",
        max_intermediate_size: int | None = 2**26,
        max_batch_entries: int = 2**16,
        device: str | None = None,
    ) -> None:
        if backend not in ("statevector", "tn"):
            raise ValidationError(f"unknown trajectory backend {backend!r}")
        self.backend = backend
        #: Execution device for the batched hot paths (None = host).  Resolved
        #: eagerly so an unavailable device fails at construction, not mid-run.
        self.device = device
        self._xp = get_namespace(device or "cpu")
        self.max_intermediate_size = max_intermediate_size
        #: Cap on ``batch × 2**n`` entries evolved at once (statevector path).
        #: The default keeps each batched array around 1 MB, which measures
        #: faster than huge slabs (cache locality) while still amortising the
        #: per-op numpy overhead over ≥128 trajectories at 9 qubits.
        self.max_batch_entries = int(max_batch_entries)

    # ------------------------------------------------------------------
    def prepare(
        self,
        circuit: Circuit,
        input_state: StateLike = None,
        output_state: StateLike = None,
    ) -> "_TrajectoryContext":
        """Precompute the sample-independent state of a trajectory estimate.

        For the statevector engine this resolves the dense boundary states;
        for the TN engine it builds the template amplitude network, records
        its :class:`~repro.tensornetwork.plan.ContractionPlan` and derives the
        state-independent Kraus sampling distributions.  The returned context
        can be passed back to :meth:`estimate_fidelity` (``context=...``) any
        number of times — values are identical to an uncontexted call, the
        one-time work is just not repeated.
        """
        n = circuit.num_qubits
        input_state = "0" * n if input_state is None else input_state
        output_state = "0" * n if output_state is None else output_state
        return _TrajectoryContext(self, circuit, input_state, output_state)

    def estimate_fidelity(
        self,
        circuit: Circuit,
        num_samples: int,
        input_state: StateLike = None,
        output_state: StateLike = None,
        rng: np.random.Generator | int | None = None,
        keep_samples: bool = False,
        workers: int | None = None,
        executor=None,
        context: "_TrajectoryContext | None" = None,
    ):
        """Estimate ``⟨v| E_N(|ψ⟩⟨ψ|) |v⟩`` from ``num_samples`` trajectories.

        Returns a :class:`repro.simulators.trajectories.TrajectoryResult`.
        With ``workers=None`` the estimate reproduces the historical
        per-sample loop for the same ``rng``; with ``workers=k`` the estimate
        is identical for every ``k`` given the same integer seed.  ``executor``
        optionally supplies an already-running
        :class:`~concurrent.futures.ProcessPoolExecutor` (it is *not* shut
        down here), so callers running many estimates — e.g. a
        :class:`repro.sweeps.SweepRunner` grid — pay the pool start-up cost
        once instead of per call.  ``context`` optionally supplies the
        prepared per-circuit state from :meth:`prepare` (it must have been
        prepared from the same engine configuration, circuit and boundary
        states); the multi-process path ignores it, since each worker process
        prepares its own.

        Example (noiseless GHZ, so the estimate is exact)::

            >>> from repro.backends.engine import BatchedTrajectoryEngine
            >>> from repro.circuits.library import ghz_circuit
            >>> engine = BatchedTrajectoryEngine("statevector")
            >>> result = engine.estimate_fidelity(ghz_circuit(2), 100, rng=7, workers=1)
            >>> round(result.estimate, 6)
            0.5
        """
        from repro.simulators.trajectories import TrajectoryResult

        if num_samples <= 0:
            raise ValidationError("num_samples must be positive")
        if self.backend == "statevector" and circuit.num_qubits > 22:
            raise MemoryError("statevector trajectory backend limited to 22 qubits")
        n = circuit.num_qubits
        input_state = "0" * n if input_state is None else input_state
        output_state = "0" * n if output_state is None else output_state

        stats = _StreamStats()
        kept: List[np.ndarray] = []

        def absorb(values: np.ndarray) -> None:
            stats.merge_values(values)
            if keep_samples:
                kept.append(values)

        if circuit.noise_count() == 0:
            # Deterministic evolution: every trajectory yields the same value,
            # so compute one and broadcast (no RNG is consumed, matching the
            # per-sample loop which drew nothing for noiseless circuits).
            if context is None:
                context = _TrajectoryContext(self, circuit, input_state, output_state)
            value = self._run_uniforms(context, np.empty((1, 0)))[0]
            absorb(np.full(num_samples, value))
        elif workers is None:
            if context is None:
                context = _TrajectoryContext(self, circuit, input_state, output_state)
            generator = np.random.default_rng(rng)
            # One uniform per (sample, channel) in sample-major order: exactly
            # the stream consumption of the old per-sample loop.  Drawing slab
            # by slab yields the same stream as one big draw (row-major fill).
            slab = self._slab_size(n)
            for start in range(0, num_samples, slab):
                batch = min(slab, num_samples - start)
                uniforms = generator.random((batch, context.num_channels))
                absorb(self._run_uniforms(context, uniforms))
        else:
            seed = self._resolve_seed(rng)
            blocks = self._blocks(num_samples)
            if workers <= 1:
                if context is None:
                    context = _TrajectoryContext(self, circuit, input_state, output_state)
                for block_index, block_samples in blocks:
                    absorb(self._run_block(context, seed, block_index, block_samples))
            else:
                for values in self._run_pool(
                    circuit, input_state, output_state, seed, blocks, workers, executor
                ):
                    absorb(values)

        estimate = float(stats.mean)
        samples = tuple(np.concatenate(kept)) if keep_samples else None
        return TrajectoryResult(estimate, stats.standard_error, num_samples, samples)

    # ------------------------------------------------------------------
    # Scheduling helpers
    # ------------------------------------------------------------------
    def _slab_size(self, num_qubits: int) -> int:
        if self.backend != "statevector":
            return RNG_BLOCK
        # A floor of 4 keeps some batching for wide circuits, but Kraus
        # sampling holds all K branches of a slab at once, so above 2**20
        # amplitudes per state the floor drops to 1 to keep the peak memory
        # profile of the per-sample loop (~6 state-sized arrays, not 6×slab).
        dim = 2**num_qubits
        floor = 4 if dim <= 2**20 else 1
        return max(floor, self.max_batch_entries // dim)

    @staticmethod
    def _resolve_seed(rng) -> int:
        if rng is None:
            return int(np.random.default_rng().integers(2**63))
        if isinstance(rng, (int, np.integer)):
            return int(rng)
        return int(np.random.default_rng(rng).integers(2**63))

    @staticmethod
    def _blocks(num_samples: int) -> List[Tuple[int, int]]:
        """Fixed-size (block_index, block_samples) partition of the sample count."""
        blocks = []
        start = 0
        index = 0
        while start < num_samples:
            blocks.append((index, min(RNG_BLOCK, num_samples - start)))
            start += RNG_BLOCK
            index += 1
        return blocks

    def _run_block(
        self, context: _TrajectoryContext, seed: int, block_index: int, block_samples: int
    ) -> np.ndarray:
        generator = np.random.default_rng([seed, block_index])
        uniforms = generator.random((block_samples, context.num_channels))
        return self._run_uniforms(context, uniforms)

    def _run_pool(
        self,
        circuit: Circuit,
        input_state: StateLike,
        output_state: StateLike,
        seed: int,
        blocks: List[Tuple[int, int]],
        workers: int,
        executor=None,
    ):
        """Distribute contiguous block groups over a process pool.

        Block seeding makes the values independent of the distribution, so a
        pool failure (restricted environments) degrades to serial execution
        with identical results.  A caller-supplied ``executor`` is reused and
        left running; otherwise a pool is created and torn down per call.
        """
        groups: List[List[Tuple[int, int]]] = [[] for _ in range(min(workers, len(blocks)))]
        for position, block in enumerate(blocks):
            groups[position % len(groups)].append(block)
        payloads = [
            (
                self.backend,
                self.max_intermediate_size,
                self.max_batch_entries,
                circuit,
                input_state,
                output_state,
                seed,
                group,
                self.device,
            )
            for group in groups
            if group
        ]
        if executor is not None:
            try:
                group_results = list(executor.map(_pool_worker, payloads))
            except BrokenProcessPool as exc:
                # The owner's pool is permanently broken; surface a typed
                # error so the owner can reset it (see Session.reset_pool).
                raise WorkerPoolError(
                    "shared trajectory process pool broke mid-run (a worker "
                    "process died); reset the pool and retry"
                ) from exc
        else:
            try:
                pool = ProcessPoolExecutor(max_workers=len(payloads))
            except (OSError, ValueError):  # pragma: no cover - pool-less environments
                pool = None
            if pool is None:
                group_results = [_pool_worker(payload) for payload in payloads]
            else:
                # Worker exceptions (contraction budget, invalid channels, …)
                # propagate as-is: only pool *creation* falls back to serial.
                with pool:
                    try:
                        group_results = list(pool.map(_pool_worker, payloads))
                    except BrokenProcessPool:  # pragma: no cover - crashed workers
                        group_results = [_pool_worker(payload) for payload in payloads]
        # Re-emit in block order regardless of which worker ran which group.
        by_block = {}
        for payload, results in zip(payloads, group_results):
            for (block_index, _), values in zip(payload[7], results):
                by_block[block_index] = values
        for block_index in sorted(by_block):
            yield by_block[block_index]

    # ------------------------------------------------------------------
    # Batched execution
    # ------------------------------------------------------------------
    def _run_uniforms(self, context: _TrajectoryContext, uniforms: np.ndarray) -> np.ndarray:
        if self.backend == "statevector":
            return self._run_statevector(context, uniforms)
        return self._run_tn(context, uniforms)

    def _run_statevector(self, context: _TrajectoryContext, uniforms: np.ndarray) -> np.ndarray:
        num_samples = uniforms.shape[0]
        n = context.num_qubits
        if context.num_channels == 0:
            # Only reached via the noiseless short-circuit in estimate_fidelity.
            state = context.psi0.copy()
            for inst in context.circuit:
                state = apply_matrix(state, inst.operation.matrix, inst.qubits, n)
            value = float(abs(np.vdot(context.v, state)) ** 2)
            return np.full(num_samples, value)

        xp = self._xp
        psi0, v_conj, op_tensors = context.device_tensors(xp)
        values = np.empty(num_samples)
        slab = self._slab_size(n)
        for start in range(0, num_samples, slab):
            stop = min(start + slab, num_samples)
            batch = stop - start
            # Between gates the state lives as a (batch, 2, …, 2) tensor whose
            # axes may be a lazy transpose view: the next tensordot reorders
            # internally anyway, so forcing contiguity per gate would only add
            # a full copy.  Contiguity is restored at sampling points.
            tensor = xp.reshape(
                xp.repeat(xp.reshape(psi0, (1, -1)), batch, axis=0), [batch] + [2] * n
            )
            channel = 0
            for position, inst in enumerate(context.circuit):
                if inst.is_gate:
                    tensor = _apply_gate_tensor(
                        tensor, op_tensors[position], inst.qubits, n, xp
                    )
                else:
                    tensor = self._sample_kraus_batched(
                        tensor, op_tensors[position], inst, n,
                        uniforms[start:stop, channel], xp,
                    )
                    channel += 1
            states = xp.reshape(xp.ascontiguousarray(tensor), (batch, -1))
            values[start:stop] = np.abs(xp.to_host(xp.matmul(states, v_conj))) ** 2
        return values

    @staticmethod
    def _sample_kraus_batched(tensor, kraus_tensors, inst, num_qubits, uniforms, xp):
        """Draw one Kraus operator per trajectory with exact Born probabilities.

        Works directly on the batched state tensor: each Kraus branch is one
        ``tensordot`` whose raw (un-transposed) output is contiguous, so the
        per-branch Born weights ``‖E_k|ψ⟩‖²`` come from a single float-view
        einsum pass with no conjugate temporaries, and only the *chosen*
        branch of each trajectory is ever copied back into standard axis
        order.  Only the (batch,)-sized weight vectors cross back to the host
        for the sampling decision; state tensors stay on the device.
        """
        qubits = [int(q) for q in inst.qubits]
        k = len(qubits)
        axes = [q + 1 for q in qubits]
        batch = tensor.shape[0]
        weights = []
        raws = []
        for gate_tensor in kraus_tensors:
            # Raw axes: k gate-output axes, then batch, then the spectators.
            raw = xp.tensordot(gate_tensor, tensor, axes=(list(range(k, 2 * k)), axes))
            floats = xp.view_real(xp.reshape(raw, (2**k, batch, -1)))
            weights.append(xp.to_host(xp.einsum("asd,asd->s", floats, floats)))
            raws.append(raw)
        order = list(axes) + [ax for ax in range(num_qubits + 1) if ax not in axes]
        inverse = np.argsort(order)
        # Selection gathers only each trajectory's chosen branch through a
        # lazy transpose view — no branch is materialised in full.
        flats = [xp.transpose(raw, inverse) for raw in raws]

        probabilities = np.stack(weights, axis=1)
        totals = probabilities.sum(axis=1)
        if np.any(totals <= 0):
            raise ValidationError("trajectory collapsed to zero norm (invalid channel?)")
        probabilities = probabilities / totals[:, None]
        cdf = np.cumsum(probabilities, axis=1)
        cdf = cdf / cdf[:, -1:]
        chosen_index = _searchsorted_rows(cdf, uniforms)
        # The result buffer comes from the namespace workspace cache, so every
        # channel and slab of a run reuses one allocation per batch size.
        # Overwriting it here is safe: all reads of the previous state tensor
        # happened in the tensordots above, and the masks partition the batch,
        # so the buffer is fully overwritten before anything reads it.
        chosen = xp.workspace((batch, 2**num_qubits), tag="kraus_chosen")
        for index, flat in enumerate(flats):
            mask = chosen_index == index
            if mask.any():
                chosen[mask] = flat[mask].reshape(-1, 2**num_qubits)
        floats = xp.view_real(chosen)
        norms = xp.sqrt(xp.einsum("bd,bd->b", floats, floats))
        chosen = xp.idivide(chosen, xp.reshape(norms, (batch, 1)))
        return xp.reshape(chosen, (batch,) + (2,) * num_qubits)

    def _run_tn(self, context: _TrajectoryContext, uniforms: np.ndarray) -> np.ndarray:
        num_samples = uniforms.shape[0]
        if context.num_channels == 0:
            # Only reached via the noiseless short-circuit in estimate_fidelity.
            # The template's own contraction was consumed by plan recording,
            # so one replay gives the deterministic amplitude.
            value = float(abs(context.plan.execute(list(context.template_tensors))) ** 2)
            return np.full(num_samples, value)

        # Draw all Kraus choices channel-by-channel (same uniforms as the
        # per-sample loop would consume) and accumulate importance weights in
        # channel order, matching the loop's sequential division exactly.
        choices = np.empty((num_samples, context.num_channels), dtype=int)
        weights = np.ones(num_samples)
        for channel, cdf in enumerate(context.q_cdfs):
            choices[:, channel] = np.searchsorted(cdf, uniforms[:, channel], side="right")
            np.clip(choices[:, channel], 0, len(cdf) - 1, out=choices[:, channel])
            weights /= context.q_dists[channel][choices[:, channel]]

        # On a device, the small sampled Kraus tensors are the only per-sample
        # host->device traffic: they are staged through per-position workspace
        # buffers (reused across samples) and the specialized plan replays on
        # the device against its cached baked tensors.
        dispatch = None if self._xp.device == "cpu" else self._xp
        values = np.empty(num_samples)
        for sample in range(num_samples):
            substitutions = {}
            for channel, (position, inst) in enumerate(context.noise_positions):
                operator = inst.operation.kraus_operators[choices[sample, channel]]
                k = len(inst.qubits)
                host_tensor = np.asarray(operator, dtype=complex).reshape([2] * (2 * k))
                if dispatch is None:
                    substitutions[position] = host_tensor
                else:
                    staged = dispatch.workspace(
                        host_tensor.shape, host_tensor.dtype, tag=("kraus", position)
                    )
                    dispatch.copyto(staged, host_tensor)
                    substitutions[position] = staged
            amplitude = context.specialized.execute(substitutions, xp=dispatch)
            values[sample] = float(abs(amplitude) ** 2) * weights[sample]
        return values


def _pool_worker(payload) -> List[np.ndarray]:
    """Process-pool entry point: run a group of RNG blocks and return their values."""
    (
        backend,
        max_intermediate_size,
        max_batch_entries,
        circuit,
        input_state,
        output_state,
        seed,
        group,
        device,
    ) = payload
    engine = BatchedTrajectoryEngine(
        backend=backend,
        max_intermediate_size=max_intermediate_size,
        max_batch_entries=max_batch_entries,
        device=device,
    )
    context = _TrajectoryContext(engine, circuit, input_state, output_state)
    return [
        engine._run_block(context, seed, block_index, block_samples)
        for block_index, block_samples in group
    ]
