"""Core types of the unified backend layer.

Every simulator in the library is wrapped by a :class:`SimulationBackend`
adapter exposing one uniform contract::

    result = backend.run(circuit, SimulationTask(num_samples=1000, seed=7))
    result.value, result.standard_error, result.elapsed_seconds

A backend declares *capability flags* (:class:`BackendCapabilities`) so call
sites — the CLI ``compare`` command, the benchmark harness, the
cross-simulator tests — can resolve the set of applicable backends for a
circuit instead of hand-wiring method lists and adapter lambdas.
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Mapping

from repro.circuits.circuit import Circuit
from repro.circuits.parameters import UnboundParameterError, circuit_parameters
from repro.circuits.passes import PassProfile
from repro.tensornetwork.circuit_to_tn import resolve_product_state
from repro.utils.validation import ValidationError

__all__ = [
    "BackendCapabilities",
    "BackendResult",
    "BackendUnsupportedError",
    "SimulationBackend",
    "SimulationTask",
]


class BackendUnsupportedError(ValidationError):
    """Raised when a backend cannot simulate the requested circuit/task."""


@dataclass(frozen=True)
class BackendCapabilities:
    """Static capability flags of a registered backend."""

    #: Can simulate circuits containing noise channels.
    noisy: bool
    #: Returns the exact value (up to floating point), not an approximation.
    exact: bool
    #: The result is a Monte-Carlo estimate with a statistical standard error.
    stochastic: bool = False
    #: Hard qubit-count ceiling (None = no intrinsic limit).
    max_qubits: int | None = None
    #: Input/output states must be product states (bitstrings or factor lists).
    needs_product_state: bool = False
    #: Honours ``SimulationTask.device`` by dispatching its dense hot path
    #: through :func:`repro.xp.get_namespace` (cpu-only backends reject
    #: non-cpu tasks in :meth:`SimulationBackend.supports`).
    supports_device: bool = False

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view used by the CLI capability table and JSON reports."""
        return {
            "noisy": self.noisy,
            "exact": self.exact,
            "stochastic": self.stochastic,
            "max_qubits": self.max_qubits,
            "needs_product_state": self.needs_product_state,
            "supports_device": self.supports_device,
        }


@dataclass(frozen=True)
class SimulationTask:
    """What to compute: fidelity ``⟨v| E_N(|ψ⟩⟨ψ|) |v⟩`` plus method knobs.

    Example — a seeded 4-worker Monte-Carlo estimate::

        >>> from repro.backends import SimulationTask
        >>> task = SimulationTask(num_samples=1000, seed=7, workers=4)
        >>> task.num_samples, task.seed
        (1000, 7)

    ``input_state`` / ``output_state`` default to ``|0…0⟩``.  The remaining
    fields are method parameters that individual backends are free to ignore:
    ``num_samples``/``seed``/``workers``/``keep_samples`` drive the stochastic
    backends, ``level`` drives the paper's approximation algorithm and
    ``max_bond_dim`` the MPS/MPDO truncation.  ``executor`` optionally hands
    the stochastic backends an already-running
    :class:`~concurrent.futures.ProcessPoolExecutor` (owned by the caller —
    typically a :class:`repro.api.Session` — and never shut down by the
    backend), so batches of tasks share one pool.  ``options`` carries per-run
    overrides of adapter configuration (``max_qubits``, ``max_nodes``,
    ``max_intermediate_size``, ``strategy``, ``truncation_threshold``); keys a
    backend does not define are ignored.  ``device`` selects the
    :class:`repro.xp.ArrayNamespace` a device-capable backend executes its
    dense hot path on (``None`` = host cpu); backends without the
    ``supports_device`` capability reject non-cpu tasks.
    """

    input_state: Any = None
    output_state: Any = None
    num_samples: int = 1000
    level: int = 1
    seed: int | None = None
    workers: int | None = None
    keep_samples: bool = False
    max_bond_dim: int | None = None
    executor: Any = None
    options: Mapping[str, Any] = field(default_factory=dict)
    device: str | None = None

    def resolved_executor(self) -> Any:
        """The caller-owned process pool, honouring the legacy options key.

        Before the ``executor`` field existed, pools were threaded through
        ``options["executor"]`` by convention; that spelling still works but
        warns, so callers migrate to the typed field.
        """
        if self.executor is not None:
            return self.executor
        legacy = self.options.get("executor")
        if legacy is not None:
            warnings.warn(
                "SimulationTask.options['executor'] is deprecated; pass the "
                "pool via the typed SimulationTask(executor=...) field",
                DeprecationWarning,
                stacklevel=2,
            )
        return legacy


@dataclass(frozen=True)
class BackendResult:
    """Uniform outcome of one backend run."""

    #: Name of the backend that produced the value.
    backend: str
    #: The fidelity value (estimate for stochastic backends).
    value: float
    #: Statistical standard error (0 for deterministic backends).
    standard_error: float = 0.0
    #: Wall-clock time of the run.
    elapsed_seconds: float = 0.0
    #: Tensor-network contractions performed (None when not applicable).
    num_contractions: int | None = None
    #: Monte-Carlo samples drawn (None for deterministic backends).
    num_samples: int | None = None
    #: Backend-specific extras (error bounds, bond dimensions, …).
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def confidence_interval(self, z: float = 2.576) -> tuple:
        """Normal-approximation confidence interval (99% by default).

        >>> result = BackendResult(backend="tn", value=0.5, standard_error=0.01)
        >>> tuple(round(bound, 3) for bound in result.confidence_interval(z=2.0))
        (0.48, 0.52)
        """
        return (self.value - z * self.standard_error, self.value + z * self.standard_error)


class SimulationBackend(ABC):
    """Uniform interface over all simulators (registered via ``@register_backend``)."""

    #: Registry name; set by the :func:`repro.backends.registry.register_backend` decorator.
    name: ClassVar[str] = "unregistered"
    #: Capability flags; set by the decorator.
    capabilities: ClassVar[BackendCapabilities]

    # ------------------------------------------------------------------
    def max_qubits(self) -> int | None:
        """Effective qubit ceiling (instances may tighten the class default)."""
        return self.capabilities.max_qubits

    def supports(self, circuit: Circuit, task: SimulationTask | None = None) -> str | None:
        """Return None when this backend can run ``circuit``, else the reason it cannot.

        ``task.options["max_qubits"]`` (when given) overrides the backend's
        qubit ceiling for this check, mirroring the override ``_run`` passes
        to the wrapped simulator, and a ``needs_product_state`` backend
        rejects tasks whose boundary states are dense vectors.
        """
        if not self.capabilities.noisy and not circuit.is_noiseless():
            return f"{self.name} cannot simulate noise channels"
        ceiling = self.max_qubits()
        if task is not None:
            ceiling = task.options.get("max_qubits", ceiling)
        if ceiling is not None and circuit.num_qubits > ceiling:
            return f"{self.name} is limited to {ceiling} qubits (circuit has {circuit.num_qubits})"
        if (
            task is not None
            and task.device not in (None, "cpu")
            and not self.capabilities.supports_device
        ):
            return f"{self.name} runs on the cpu only (task requests device {task.device!r})"
        if self.capabilities.needs_product_state and task is not None:
            for state in (task.input_state, task.output_state):
                if state is None or isinstance(state, str):
                    continue
                try:
                    resolved = resolve_product_state(state, circuit.num_qubits)
                except ValidationError as exc:
                    return f"{self.name}: invalid state ({exc})"
                if not isinstance(resolved, list):
                    return f"{self.name} needs product input/output states"
        return self._extra_supports(circuit)

    def _extra_supports(self, circuit: Circuit) -> str | None:
        """Hook for adapter-specific structural constraints (e.g. 1-qubit noise only)."""
        return None

    def pass_profile(self) -> PassProfile:
        """Which compile-time optimizations preserve this backend's semantics.

        The session layer intersects this profile with the caller's
        :class:`~repro.circuits.passes.PassConfig` before running the
        optimizing pipeline (see :mod:`repro.circuits.passes`).  The default
        is the universally safe subset — in particular ``merge_channels``
        stays off because composing adjacent noise channels changes the
        noise count that Algorithm 1's level budget and the trajectory
        sampler's RNG stream are indexed by; the exact superoperator
        adapters override this to opt in.
        """
        return PassProfile()

    def check_supported(self, circuit: Circuit, task: SimulationTask | None = None) -> None:
        """Raise :class:`BackendUnsupportedError` when ``circuit`` is out of scope."""
        reason = self.supports(circuit, task)
        if reason is not None:
            raise BackendUnsupportedError(reason)

    # ------------------------------------------------------------------
    # Compile / execute split
    # ------------------------------------------------------------------
    def compile(self, circuit: Circuit, task: SimulationTask | None = None) -> Any:
        """Precompute this backend's reusable one-time work for ``circuit``.

        Returns an opaque plan handle to pass back through ``run(plan=...)``,
        or ``None`` when the backend has no per-circuit work worth caching.
        A plan depends only on the circuit's structure and the task's
        *structural* fields (boundary states, adapter options) — never on
        ``seed``, ``num_samples`` or ``workers`` — so the session layer may
        share one plan between runs that differ only in those per-call knobs
        (see :meth:`repro.api.Session.compile`).
        """
        task = SimulationTask() if task is None else task
        self.check_supported(circuit, task)
        return self._compile(circuit, task)

    def _compile(self, circuit: Circuit, task: SimulationTask) -> Any:
        """Backend-specific plan construction (default: nothing to precompute)."""
        return None

    # ------------------------------------------------------------------
    @abstractmethod
    def _run(self, circuit: Circuit, task: SimulationTask) -> BackendResult:
        """Backend-specific execution; ``run`` wraps it with checks and timing."""

    def _run_plan(self, circuit: Circuit, task: SimulationTask, plan: Any) -> BackendResult:
        """Execute with a plan from :meth:`compile`; the default ignores it.

        Overriding adapters must produce values bit-identical to
        :meth:`_run` — a plan changes where the one-time work happens, never
        the result.
        """
        return self._run(circuit, task)

    def run(
        self,
        circuit: Circuit,
        task: SimulationTask | None = None,
        plan: Any = None,
    ) -> BackendResult:
        """Simulate ``circuit`` under ``task`` and return a :class:`BackendResult`.

        Validates the circuit against the backend's capabilities, times the
        execution, and stamps the backend name onto the result.  ``plan``
        optionally supplies the precompiled one-time work from
        :meth:`compile` (for the same circuit/task structure), in which case
        only the execution itself is paid here.

        Example — exact fidelity of a noiseless GHZ state with ``|00⟩``::

            >>> from repro.backends import get_backend
            >>> from repro.circuits.library import ghz_circuit
            >>> result = get_backend("statevector").run(ghz_circuit(2))
            >>> round(result.value, 6)
            0.5
        """
        task = SimulationTask() if task is None else task
        # compile() accepts circuits with free parameters (planning happens on
        # a placeholder binding), but execution needs every angle concrete.
        free = sorted(circuit_parameters(circuit))
        if free:
            raise UnboundParameterError(
                f"circuit has unbound parameters {free}; bind them "
                "(Executable.bind / substitute) before execution"
            )
        self.check_supported(circuit, task)
        start = time.perf_counter()
        if plan is None:
            result = self._run(circuit, task)
        else:
            result = self._run_plan(circuit, task, plan)
        elapsed = time.perf_counter() - start
        if result.elapsed_seconds == 0.0:
            result = dataclasses.replace(result, elapsed_seconds=elapsed)
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
