"""Unified backend registry and batched execution engine.

This package is the single dispatch layer over every simulator in the
library; the session facade (:mod:`repro.api`) is built directly on it and
is the preferred entry point for running simulations.  All backends share
one contract::

    from repro.backends import get_backend, SimulationTask

    result = get_backend("tn").run(circuit)
    result = get_backend("trajectories").run(
        circuit, SimulationTask(num_samples=1000, seed=7, workers=4)
    )

Registered backends (see ``python -m repro.cli list-backends``):

============== ====== ===== ========== ==========================================
name           noisy  exact stochastic wraps
============== ====== ===== ========== ==========================================
statevector    no     yes   no         :class:`repro.simulators.StatevectorSimulator`
density_matrix yes    yes   no         :class:`repro.simulators.DensityMatrixSimulator`
tn             yes    yes   no         :class:`repro.simulators.TNSimulator`
tdd            yes    yes   no         :class:`repro.simulators.TDDSimulator`
mps            no     no    no         :class:`repro.simulators.MPSSimulator`
mpdo           yes    no    no         :class:`repro.simulators.MPDOSimulator`
trajectories   yes    no    yes        :class:`repro.backends.engine.BatchedTrajectoryEngine`
trajectories_tn yes   no    yes        :class:`repro.backends.engine.BatchedTrajectoryEngine`
approximation  yes    no    no         :class:`repro.core.ApproximateNoisySimulator`
============== ====== ===== ========== ==========================================
"""

from repro.backends.base import (
    BackendCapabilities,
    BackendResult,
    BackendUnsupportedError,
    SimulationBackend,
    SimulationTask,
)
from repro.backends.engine import (
    BatchedTrajectoryEngine,
    WorkerPoolError,
    apply_matrix_batched,
)
from repro.backends.registry import (
    available_backends,
    backend_aliases,
    backend_names,
    capability_table,
    get_backend,
    register_backend,
    resolve_backends,
)

# Importing the adapters registers every built-in backend.
from repro.backends import adapters as _adapters  # noqa: E402,F401

__all__ = [
    "BackendCapabilities",
    "BackendResult",
    "BackendUnsupportedError",
    "BatchedTrajectoryEngine",
    "SimulationBackend",
    "SimulationTask",
    "WorkerPoolError",
    "apply_matrix_batched",
    "available_backends",
    "backend_aliases",
    "backend_names",
    "capability_table",
    "get_backend",
    "register_backend",
    "resolve_backends",
]
