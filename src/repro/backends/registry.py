"""Backend registry: registration decorator and name-based resolution.

Backends self-register at import time::

    @register_backend("tn", noisy=True, exact=True)
    class TNBackend(SimulationBackend):
        ...

Call sites resolve them by name or capability::

    get_backend("tn").run(circuit)
    for name in available_backends(circuit):
        ...

``resolve_backends("all", circuit)`` expands the CLI's ``--backends`` flag.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Type

from repro.backends.base import BackendCapabilities, SimulationBackend
from repro.circuits.circuit import Circuit
from repro.utils.validation import ValidationError

__all__ = [
    "register_backend",
    "get_backend",
    "backend_aliases",
    "backend_names",
    "available_backends",
    "resolve_backends",
    "capability_table",
]

_REGISTRY: Dict[str, Type[SimulationBackend]] = {}
_ALIASES: Dict[str, str] = {}


def register_backend(
    name: str,
    *,
    noisy: bool,
    exact: bool,
    stochastic: bool = False,
    max_qubits: int | None = None,
    needs_product_state: bool = False,
    supports_device: bool = False,
    aliases: Iterable[str] = (),
):
    """Class decorator registering a :class:`SimulationBackend` under ``name``."""

    def decorator(cls: Type[SimulationBackend]) -> Type[SimulationBackend]:
        if not (isinstance(cls, type) and issubclass(cls, SimulationBackend)):
            raise ValidationError(f"{cls!r} is not a SimulationBackend subclass")
        if name in _REGISTRY or name in _ALIASES:
            raise ValidationError(f"backend {name!r} is already registered")
        cls.name = name
        cls.capabilities = BackendCapabilities(
            noisy=noisy,
            exact=exact,
            stochastic=stochastic,
            max_qubits=max_qubits,
            needs_product_state=needs_product_state,
            supports_device=supports_device,
        )
        _REGISTRY[name] = cls
        for alias in aliases:
            if alias in _REGISTRY or alias in _ALIASES:
                raise ValidationError(f"backend alias {alias!r} is already taken")
            _ALIASES[alias] = name
        return cls

    return decorator


def _canonical(name: str) -> str:
    name = name.strip()
    return _ALIASES.get(name, name)


def get_backend(name: str, **options) -> SimulationBackend:
    """Instantiate the backend registered under ``name`` (aliases allowed).

    ``options`` are forwarded to the adapter constructor (e.g. ``max_qubits``
    for the density-matrix backend, ``max_nodes`` for TDD).

    >>> from repro.backends import get_backend
    >>> get_backend("mm").name                # aliases resolve to canonical names
    'density_matrix'
    >>> get_backend("tdd", max_nodes=1000).max_nodes
    1000
    """
    key = _canonical(name)
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ValidationError(f"unknown backend {name!r}; registered backends: {known}")
    return _REGISTRY[key](**options)


def backend_names() -> List[str]:
    """All registered backend names, sorted."""
    return sorted(_REGISTRY)


def backend_aliases() -> Dict[str, List[str]]:
    """Mapping of canonical backend name to its sorted aliases.

    >>> from repro.backends import backend_aliases
    >>> backend_aliases()["density_matrix"]
    ['dm', 'mm']
    """
    aliases: Dict[str, List[str]] = {name: [] for name in _REGISTRY}
    for alias, name in _ALIASES.items():
        aliases[name].append(alias)
    return {name: sorted(values) for name, values in aliases.items()}


def available_backends(circuit: Circuit) -> List[str]:
    """Names of every registered backend (at default configuration) able to simulate ``circuit``.

    >>> from repro.backends import available_backends
    >>> from repro.circuits.library import ghz_circuit
    >>> names = available_backends(ghz_circuit(3))     # noiseless, 3 qubits
    >>> "statevector" in names and "tn" in names
    True
    """
    names = []
    for name in backend_names():
        if get_backend(name).supports(circuit) is None:
            names.append(name)
    return names


def resolve_backends(spec: str | Iterable[str], circuit: Circuit | None = None) -> List[str]:
    """Expand a backend specification into a list of registered names.

    ``spec`` is ``"all"`` (every backend, filtered by ``circuit`` capability
    when a circuit is given), a comma-separated string, or an iterable of
    names.  Unknown names raise :class:`ValidationError`.

    >>> from repro.backends import resolve_backends
    >>> resolve_backends("mm, ours")
    ['density_matrix', 'approximation']
    """
    if isinstance(spec, str):
        if spec.strip().lower() == "all":
            return available_backends(circuit) if circuit is not None else backend_names()
        parts = [part for part in spec.split(",") if part.strip()]
    else:
        parts = list(spec)
    resolved = []
    for part in parts:
        key = _canonical(part)
        if key not in _REGISTRY:
            known = ", ".join(sorted(_REGISTRY))
            raise ValidationError(f"unknown backend {part!r}; registered backends: {known}")
        if key not in resolved:
            resolved.append(key)
    return resolved


def capability_table() -> List[List[object]]:
    """Rows ``[name, noisy, exact, stochastic, max_qubits, product_only, device]``."""
    rows = []
    for name in backend_names():
        caps = _REGISTRY[name].capabilities
        rows.append(
            [
                name,
                "yes" if caps.noisy else "no",
                "yes" if caps.exact else "no",
                "yes" if caps.stochastic else "no",
                caps.max_qubits if caps.max_qubits is not None else "-",
                "yes" if caps.needs_product_state else "no",
                "yes" if caps.supports_device else "no",
            ]
        )
    return rows
