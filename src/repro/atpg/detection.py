"""Fault detection and test-pattern selection.

The flow mirrors classical ATPG: enumerate candidate faults, compute each
pattern's fault-free signature and its signature under every fault, call a
fault *detected* by a pattern when the two differ by more than a threshold
(chosen above the simulator's accuracy), and greedily select a small pattern
set covering all detectable faults.

Any estimator exposing ``fidelity(circuit, input_state, output_state)`` can
drive the flow; the intended one is
:class:`repro.core.approximation.ApproximateNoisySimulator`, whose Theorem-1
bound tells the user how to pick the detection threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.atpg.faults import Fault
from repro.atpg.patterns import TestPattern
from repro.circuits.circuit import Circuit
from repro.utils.validation import ValidationError

__all__ = ["FaultDetectionResult", "FaultDetector"]


def _as_float(value) -> float:
    if hasattr(value, "value"):
        return float(value.value)
    if hasattr(value, "estimate"):
        return float(value.estimate)
    return float(value)


@dataclass
class FaultDetectionResult:
    """Outcome of a full detection run."""

    threshold: float
    fault_free_signatures: Dict[str, float]
    detectability: Dict[Tuple[int, str], float]
    detected_faults: List[int]
    undetected_faults: List[int]
    selected_patterns: List[str]

    @property
    def coverage(self) -> float:
        """Fraction of faults detected by at least one pattern."""
        total = len(self.detected_faults) + len(self.undetected_faults)
        return len(self.detected_faults) / total if total else 1.0

    def best_pattern_for(self, fault_index: int) -> str | None:
        """Name of the pattern with the largest signature deviation for a fault."""
        candidates = {
            pattern: value
            for (index, pattern), value in self.detectability.items()
            if index == fault_index
        }
        if not candidates:
            return None
        return max(candidates, key=candidates.get)


class FaultDetector:
    """Runs the detection flow for a circuit under test."""

    def __init__(self, estimator, threshold: float = 1e-3) -> None:
        if not hasattr(estimator, "fidelity"):
            raise ValidationError("estimator must expose fidelity(circuit, input, output)")
        if threshold <= 0:
            raise ValidationError("threshold must be positive")
        self.estimator = estimator
        self.threshold = float(threshold)

    # ------------------------------------------------------------------
    def signature(self, circuit: Circuit, pattern: TestPattern) -> float:
        """Fidelity of ``circuit`` on one pattern."""
        if pattern.num_qubits != circuit.num_qubits:
            raise ValidationError("pattern width does not match the circuit")
        return _as_float(
            self.estimator.fidelity(circuit, pattern.input_state, pattern.output_state)
        )

    def fault_free_signatures(
        self, circuit: Circuit, patterns: Sequence[TestPattern]
    ) -> Dict[str, float]:
        """Signatures of the fault-free circuit on every pattern."""
        return {pattern.name: self.signature(circuit, pattern) for pattern in patterns}

    def detectability(
        self, circuit: Circuit, fault: Fault, pattern: TestPattern, reference: float | None = None
    ) -> float:
        """|fault-free signature − faulty signature| for one (fault, pattern) pair."""
        if reference is None:
            reference = self.signature(circuit, pattern)
        faulty = fault.apply(circuit)
        return abs(self.signature(faulty, pattern) - reference)

    # ------------------------------------------------------------------
    def run(
        self,
        circuit: Circuit,
        faults: Sequence[Fault],
        patterns: Sequence[TestPattern],
    ) -> FaultDetectionResult:
        """Evaluate every (fault, pattern) pair and select a covering pattern set."""
        if not patterns:
            raise ValidationError("at least one test pattern is required")
        references = self.fault_free_signatures(circuit, patterns)

        detectability: Dict[Tuple[int, str], float] = {}
        detected_by: Dict[int, List[str]] = {index: [] for index in range(len(faults))}
        for fault_index, fault in enumerate(faults):
            faulty = fault.apply(circuit)
            for pattern in patterns:
                deviation = abs(self.signature(faulty, pattern) - references[pattern.name])
                detectability[(fault_index, pattern.name)] = deviation
                if deviation > self.threshold:
                    detected_by[fault_index].append(pattern.name)

        detected = [index for index, names in detected_by.items() if names]
        undetected = [index for index, names in detected_by.items() if not names]
        selected = self._greedy_cover(detected_by, [p.name for p in patterns])
        return FaultDetectionResult(
            threshold=self.threshold,
            fault_free_signatures=references,
            detectability=detectability,
            detected_faults=detected,
            undetected_faults=undetected,
            selected_patterns=selected,
        )

    @staticmethod
    def _greedy_cover(detected_by: Dict[int, List[str]], pattern_names: Sequence[str]) -> List[str]:
        """Greedy set cover: smallest pattern set detecting every detectable fault."""
        remaining = {index for index, names in detected_by.items() if names}
        selected: List[str] = []
        while remaining:
            best_pattern = None
            best_covered: set = set()
            for name in pattern_names:
                covered = {index for index in remaining if name in detected_by[index]}
                if len(covered) > len(best_covered):
                    best_covered = covered
                    best_pattern = name
            if best_pattern is None:  # pragma: no cover - defensive
                break
            selected.append(best_pattern)
            remaining -= best_covered
        return selected
