"""Test patterns for fault detection.

A *test pattern* is an (input state, output state) pair of product states.
Running the circuit under test on the input and estimating the fidelity with
the expected output — with the approximation algorithm when the circuit is
large — gives a signature that a fault perturbs.  Patterns built from the
``{|0⟩, |1⟩, |+⟩, |−⟩}`` alphabet are cheap to prepare and keep every boundary
tensor rank-1, which is exactly what the tensor-network evaluation needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.circuits.circuit import Circuit
from repro.simulators.statevector import StatevectorSimulator
from repro.utils.validation import ValidationError

__all__ = ["TestPattern", "random_patterns", "ideal_output_pattern", "basis_patterns"]

_ALPHABET = "01+-"


@dataclass(frozen=True)
class TestPattern:
    """An (input, expected output) pair used to exercise a circuit."""

    # Tell pytest this is not a test class despite the name.
    __test__ = False

    input_state: str
    output_state: object  # str (product alphabet) or dense np.ndarray
    name: str = "pattern"

    def __post_init__(self) -> None:
        if not isinstance(self.input_state, str) or any(
            c not in _ALPHABET for c in self.input_state
        ):
            raise ValidationError(
                f"pattern input must be a string over {_ALPHABET!r}, got {self.input_state!r}"
            )

    @property
    def num_qubits(self) -> int:
        """Register width of the pattern."""
        return len(self.input_state)


def random_patterns(
    num_qubits: int,
    num_patterns: int,
    rng: np.random.Generator | int | None = None,
    identical_output: bool = True,
) -> List[TestPattern]:
    """Random product-state patterns over the ``0/1/+/-`` alphabet.

    With ``identical_output=True`` the expected output equals the input, which
    is the natural pattern style for *inverse-pair* testing (run ``C`` then
    ``C⁻¹``); otherwise input and output are drawn independently.
    """
    if num_patterns <= 0:
        raise ValidationError("num_patterns must be positive")
    rng = np.random.default_rng(rng)
    patterns = []
    for index in range(num_patterns):
        input_state = "".join(rng.choice(list(_ALPHABET), size=num_qubits))
        output_state = (
            input_state
            if identical_output
            else "".join(rng.choice(list(_ALPHABET), size=num_qubits))
        )
        patterns.append(TestPattern(input_state, output_state, name=f"random_{index}"))
    return patterns


def basis_patterns(num_qubits: int, max_patterns: int | None = None) -> List[TestPattern]:
    """Single-excitation computational-basis patterns: ``|0…010…0⟩ → |0…010…0⟩``."""
    patterns = [TestPattern("0" * num_qubits, "0" * num_qubits, name="all_zero")]
    for qubit in range(num_qubits):
        bits = "".join("1" if q == qubit else "0" for q in range(num_qubits))
        patterns.append(TestPattern(bits, bits, name=f"excite_{qubit}"))
    if max_patterns is not None:
        patterns = patterns[:max_patterns]
    return patterns


def ideal_output_pattern(circuit: Circuit, max_qubits: int = 20) -> TestPattern:
    """The pattern ``|0…0⟩ → U|0…0⟩`` with the fault-free circuit's own output.

    This is the most discriminating single pattern for unitary faults (its
    fault-free fidelity is exactly 1) but requires a statevector of the ideal
    circuit, so it is limited to ``max_qubits``.
    """
    ideal = circuit.without_noise()
    if ideal.num_qubits > max_qubits:
        raise ValidationError(
            f"ideal-output pattern limited to {max_qubits} qubits (got {ideal.num_qubits})"
        )
    output = StatevectorSimulator(max_qubits=max_qubits).run(ideal)
    return TestPattern("0" * circuit.num_qubits, output, name="ideal_output")
