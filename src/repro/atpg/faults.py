"""Circuit-level fault models for test-pattern generation.

The paper's conclusion positions the approximation algorithm as the simulation
engine inside ATPG (automatic test pattern generation) flows for quantum
circuits — detecting manufacturing defects of large circuits under realistic
noise (their references [34]-[36]).  This module provides the standard fault
models those works use, expressed as circuit transformations:

* :class:`MissingGateFault` — a gate is dropped (single missing-gate fault);
* :class:`WrongGateFault` — a gate is replaced by a different unitary;
* :class:`OverRotationFault` — a rotation gate is applied with an angle offset
  (calibration defect);
* :class:`StuckNoiseFault` — a strong noise channel appears after a gate
  (a decoherence hot spot, e.g. a defective junction).

A fault applied to an ideal (or already noisy) circuit yields the faulty
circuit; the detection machinery in :mod:`repro.atpg.detection` then asks
whether any test pattern distinguishes the two within the simulator's
accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.circuits import gates as glib
from repro.noise.kraus import KrausChannel
from repro.utils.validation import ValidationError

__all__ = [
    "Fault",
    "MissingGateFault",
    "WrongGateFault",
    "OverRotationFault",
    "StuckNoiseFault",
    "enumerate_single_gate_faults",
]


@dataclass(frozen=True)
class Fault:
    """Base class: a named, deterministic transformation of a circuit."""

    position: int

    def apply(self, circuit: Circuit) -> Circuit:  # pragma: no cover - abstract
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError

    def _check_position(self, circuit: Circuit) -> None:
        if not 0 <= self.position < len(circuit):
            raise ValidationError(
                f"fault position {self.position} out of range for a circuit of length {len(circuit)}"
            )
        if not circuit[self.position].is_gate:
            raise ValidationError("gate faults must target gate instructions")


@dataclass(frozen=True)
class MissingGateFault(Fault):
    """The gate at ``position`` is never applied."""

    def apply(self, circuit: Circuit) -> Circuit:
        self._check_position(circuit)
        faulty = Circuit(circuit.num_qubits, name=f"{circuit.name}_missing@{self.position}")
        for index, inst in enumerate(circuit):
            if index != self.position:
                faulty.append(inst.operation, inst.qubits)
        return faulty

    def describe(self) -> str:
        return f"missing-gate fault at instruction {self.position}"


@dataclass(frozen=True)
class WrongGateFault(Fault):
    """The gate at ``position`` is replaced by ``replacement``."""

    replacement: Gate = None

    def apply(self, circuit: Circuit) -> Circuit:
        self._check_position(circuit)
        target = circuit[self.position]
        if self.replacement is None:
            raise ValidationError("WrongGateFault needs a replacement gate")
        if self.replacement.num_qubits != len(target.qubits):
            raise ValidationError("replacement gate arity does not match the faulted gate")
        faulty = Circuit(circuit.num_qubits, name=f"{circuit.name}_wrong@{self.position}")
        for index, inst in enumerate(circuit):
            if index == self.position:
                faulty.append(self.replacement, inst.qubits)
            else:
                faulty.append(inst.operation, inst.qubits)
        return faulty

    def describe(self) -> str:
        return f"wrong-gate fault at instruction {self.position} (-> {self.replacement.name})"


@dataclass(frozen=True)
class OverRotationFault(Fault):
    """A rotation gate at ``position`` is applied with an extra angle ``delta``."""

    delta: float = 0.1

    def apply(self, circuit: Circuit) -> Circuit:
        self._check_position(circuit)
        target = circuit[self.position]
        gate = target.operation
        if not isinstance(gate, Gate) or not gate.params:
            raise ValidationError("over-rotation faults require a parameterised gate")
        factory = glib.GATE_FACTORIES.get(gate.name)
        if factory is None:
            raise ValidationError(f"cannot re-parameterise gate {gate.name!r}")
        params = list(gate.params)
        params[0] += self.delta
        replacement = factory(*params)
        return WrongGateFault(self.position, replacement).apply(circuit).copy(
            name=f"{circuit.name}_overrot@{self.position}"
        )

    def describe(self) -> str:
        return f"over-rotation fault at instruction {self.position} (Δθ = {self.delta:g})"


@dataclass(frozen=True)
class StuckNoiseFault(Fault):
    """A strong noise channel fires after the gate at ``position``."""

    channel: KrausChannel = None
    qubit: int | None = None

    def apply(self, circuit: Circuit) -> Circuit:
        self._check_position(circuit)
        if self.channel is None:
            raise ValidationError("StuckNoiseFault needs a channel")
        target = circuit[self.position]
        qubit = target.qubits[0] if self.qubit is None else int(self.qubit)
        if qubit not in target.qubits and self.channel.num_qubits == 1:
            raise ValidationError("stuck-noise qubit must belong to the faulted gate")
        faulty = Circuit(circuit.num_qubits, name=f"{circuit.name}_stuck@{self.position}")
        for index, inst in enumerate(circuit):
            faulty.append(inst.operation, inst.qubits)
            if index == self.position:
                if self.channel.num_qubits == 1:
                    faulty.append(self.channel, (qubit,))
                else:
                    faulty.append(self.channel, inst.qubits)
        return faulty

    def describe(self) -> str:
        return f"stuck-noise fault ({self.channel.name}) after instruction {self.position}"


def enumerate_single_gate_faults(
    circuit: Circuit,
    kinds: Sequence[str] = ("missing", "overrotation"),
    delta: float = 0.2,
    max_faults: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> List[Fault]:
    """Enumerate single-gate faults of the requested kinds over a circuit.

    ``kinds`` may include ``"missing"`` and ``"overrotation"``; over-rotation
    faults are only generated for parameterised gates.  When ``max_faults`` is
    given, a random subset of that size is returned (useful for large
    circuits).
    """
    faults: List[Fault] = []
    for index, inst in enumerate(circuit):
        if not inst.is_gate:
            continue
        if "missing" in kinds:
            faults.append(MissingGateFault(index))
        if "overrotation" in kinds and getattr(inst.operation, "params", ()):
            if inst.operation.name in glib.GATE_FACTORIES:
                faults.append(OverRotationFault(index, delta))
    if max_faults is not None and len(faults) > max_faults:
        rng = np.random.default_rng(rng)
        chosen = rng.choice(len(faults), size=max_faults, replace=False)
        faults = [faults[int(i)] for i in sorted(chosen)]
    return faults
