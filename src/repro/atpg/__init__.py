"""ATPG-style fault injection and detection for quantum circuits.

The paper's conclusion anticipates the approximation algorithm "as an
integrated feature in the currently developed ATPG programs … for verifying
and detecting manufacturing defects, effected by quantum noises, of
large-size quantum circuits".  This subpackage provides that integration
surface: fault models, test patterns and a detection/selection flow driven by
any of the repository's fidelity estimators.
"""

from repro.atpg.detection import FaultDetectionResult, FaultDetector
from repro.atpg.faults import (
    Fault,
    MissingGateFault,
    OverRotationFault,
    StuckNoiseFault,
    WrongGateFault,
    enumerate_single_gate_faults,
)
from repro.atpg.patterns import TestPattern, basis_patterns, ideal_output_pattern, random_patterns

__all__ = [
    "Fault",
    "MissingGateFault",
    "WrongGateFault",
    "OverRotationFault",
    "StuckNoiseFault",
    "enumerate_single_gate_faults",
    "TestPattern",
    "random_patterns",
    "basis_patterns",
    "ideal_output_pattern",
    "FaultDetector",
    "FaultDetectionResult",
]
