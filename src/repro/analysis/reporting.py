"""Plain-text reporting helpers used by the benchmark harness.

The benchmarks print the same row/series structure as the paper's tables and
figures; these helpers keep that formatting in one place (monospace tables
and simple ASCII series, no plotting dependency).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_series", "format_seconds", "format_value"]


def format_seconds(value: float | None) -> str:
    """Format a runtime like the paper's Time(s) columns (``MO``/``TO`` pass through)."""
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    if value >= 100:
        return f"{value:.0f}"
    if value >= 1:
        return f"{value:.2f}"
    return f"{value:.3f}"


def format_value(value, precision: int = 3) -> str:
    """Format a table cell: floats in scientific/fixed notation, the rest via str()."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) < 1e-2 or abs(value) >= 1e4:
            return f"{value:.{precision}E}"
        return f"{value:.{precision + 2}g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None) -> str:
    """Render a monospace table with aligned columns."""
    rendered_rows: List[List[str]] = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence,
    series: dict,
    title: str | None = None,
) -> str:
    """Render one or more y-series against a shared x axis (a textual "figure")."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        row = [x]
        for values in series.values():
            row.append(values[i] if i < len(values) else None)
        rows.append(row)
    return format_table(headers, rows, title=title)
