"""Analysis helpers: error metrics, sample-count formulas and report formatting."""

from repro.analysis.equivalence import (
    EquivalenceReport,
    approximate_equivalence,
    process_distance_small,
)
from repro.analysis.fidelity import (
    absolute_error,
    density_matrix_fidelity,
    pure_state_fidelity,
    relative_error,
    total_variation_distance,
    trace_distance,
)
from repro.analysis.reporting import format_series, format_table, format_seconds, format_value
from repro.analysis.sampling import (
    DEFAULT_TRAJECTORY_CONSTANT,
    SampleCountComparison,
    approximation_sample_count,
    calibrate_trajectory_constant,
    compare_sample_counts,
    crossover_noise_count,
    trajectories_sample_count,
)

__all__ = [
    "EquivalenceReport",
    "approximate_equivalence",
    "process_distance_small",
    "absolute_error",
    "relative_error",
    "pure_state_fidelity",
    "density_matrix_fidelity",
    "total_variation_distance",
    "trace_distance",
    "format_table",
    "format_series",
    "format_seconds",
    "format_value",
    "approximation_sample_count",
    "trajectories_sample_count",
    "crossover_noise_count",
    "compare_sample_counts",
    "calibrate_trajectory_constant",
    "SampleCountComparison",
    "DEFAULT_TRAJECTORY_CONSTANT",
]
