"""Approximate equivalence checking of (noisy) quantum circuits.

A companion capability to the simulation task (the paper cites approximate
equivalence checking of noisy circuits as one of the motivating EDA
applications).  Two notions are provided:

* :func:`process_distance_small` — exact comparison of the superoperators of
  two circuits on few qubits (the process matrices are reconstructed column by
  column with the density-matrix simulator).
* :func:`approximate_equivalence` — scalable probe-based check: compare the
  fidelity signatures of the two circuits on a set of product-state test
  patterns using any fidelity estimator (the approximation algorithm for large
  circuits).  The check is one-sided: signatures farther apart than the
  tolerance prove non-equivalence, matching signatures give statistical
  evidence of equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.circuits.circuit import Circuit
from repro.simulators.density_matrix import DensityMatrixSimulator
from repro.utils.linalg import operator_norm
from repro.utils.validation import ValidationError

__all__ = ["EquivalenceReport", "process_distance_small", "approximate_equivalence"]


def _as_float(value) -> float:
    if hasattr(value, "value"):
        return float(value.value)
    if hasattr(value, "estimate"):
        return float(value.estimate)
    return float(value)


@dataclass(frozen=True)
class EquivalenceReport:
    """Result of a probe-based equivalence check."""

    equivalent: bool
    max_deviation: float
    tolerance: float
    deviations: tuple

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.equivalent


def process_distance_small(circuit_a: Circuit, circuit_b: Circuit, max_qubits: int = 6) -> float:
    """Spectral-norm distance between the two circuits' superoperator matrices.

    Exact but exponential: reconstructs both process matrices by applying the
    circuits to every basis matrix ``|i⟩⟨j|``.
    """
    if circuit_a.num_qubits != circuit_b.num_qubits:
        raise ValidationError("circuits act on different register sizes")
    n = circuit_a.num_qubits
    if n > max_qubits:
        raise ValidationError(f"process_distance_small limited to {max_qubits} qubits (got {n})")
    dim = 2**n
    simulator = DensityMatrixSimulator(max_qubits=max_qubits)
    difference = np.zeros((dim * dim, dim * dim), dtype=complex)
    for i in range(dim):
        for j in range(dim):
            basis = np.zeros((dim, dim), dtype=complex)
            basis[i, j] = 1.0
            out_a = simulator.run(circuit_a, initial_state=basis)
            out_b = simulator.run(circuit_b, initial_state=basis)
            difference[:, i * dim + j] = (out_a - out_b).reshape(-1)
    return operator_norm(difference)


def approximate_equivalence(
    circuit_a: Circuit,
    circuit_b: Circuit,
    estimator,
    patterns: Sequence | None = None,
    tolerance: float = 1e-3,
    num_patterns: int = 8,
    rng: np.random.Generator | int | None = 0,
) -> EquivalenceReport:
    """Probe-based approximate equivalence of two (noisy) circuits.

    ``estimator`` is any object exposing
    ``fidelity(circuit, input_state, output_state)``; ``patterns`` defaults to
    the computational single-excitation patterns plus random product-state
    patterns from :mod:`repro.atpg.patterns`.
    """
    from repro.atpg.patterns import basis_patterns, random_patterns

    if circuit_a.num_qubits != circuit_b.num_qubits:
        raise ValidationError("circuits act on different register sizes")
    if tolerance <= 0:
        raise ValidationError("tolerance must be positive")
    if patterns is None:
        patterns = list(basis_patterns(circuit_a.num_qubits)) + list(
            random_patterns(circuit_a.num_qubits, num_patterns, rng=rng)
        )

    deviations: List[float] = []
    for pattern in patterns:
        value_a = _as_float(
            estimator.fidelity(circuit_a, pattern.input_state, pattern.output_state)
        )
        value_b = _as_float(
            estimator.fidelity(circuit_b, pattern.input_state, pattern.output_state)
        )
        deviations.append(abs(value_a - value_b))
    max_deviation = max(deviations)
    return EquivalenceReport(
        equivalent=max_deviation <= tolerance,
        max_deviation=max_deviation,
        tolerance=tolerance,
        deviations=tuple(deviations),
    )
