"""Fidelity and error metrics shared by the benchmark harness and examples."""

from __future__ import annotations

import numpy as np

from repro.utils.linalg import is_density_matrix
from repro.utils.validation import ValidationError, check_square, check_statevector

__all__ = [
    "absolute_error",
    "relative_error",
    "pure_state_fidelity",
    "density_matrix_fidelity",
    "total_variation_distance",
    "trace_distance",
]


def absolute_error(estimate: float, reference: float) -> float:
    """``|estimate − reference|`` (the "Error" columns of Tables III/IV)."""
    return float(abs(float(estimate) - float(reference)))


def relative_error(estimate: float, reference: float) -> float:
    """Relative error with a guard against a zero reference."""
    reference = float(reference)
    if reference == 0.0:
        return float("inf") if float(estimate) != 0.0 else 0.0
    return abs(float(estimate) - reference) / abs(reference)


def total_variation_distance(p, q) -> float:
    """Total variation distance ``½ Σ_x |p(x) − q(x)|`` between two distributions.

    Inputs are arrays of probabilities (or non-negative weights; each side is
    normalised first).  For the Bernoulli distributions induced by two
    fidelities this reduces to the absolute fidelity error the paper's
    precision columns report.

    >>> total_variation_distance([0.5, 0.5], [0.75, 0.25])
    0.25
    """
    p = np.asarray(p, dtype=float).ravel()
    q = np.asarray(q, dtype=float).ravel()
    if p.shape != q.shape:
        raise ValidationError("distributions have different sizes")
    if np.any(p < -1e-12) or np.any(q < -1e-12):
        raise ValidationError("probabilities must be non-negative")
    p_total, q_total = p.sum(), q.sum()
    if p_total <= 0 or q_total <= 0:
        raise ValidationError("distributions must have positive total weight")
    return float(0.5 * np.abs(p / p_total - q / q_total).sum())


def pure_state_fidelity(state: np.ndarray, rho: np.ndarray) -> float:
    """``⟨v| rho |v⟩`` for a pure state ``v`` and density matrix ``rho``."""
    v = check_statevector(state)
    rho = check_square(rho, name="rho")
    if rho.shape[0] != v.size:
        raise ValidationError("dimension mismatch between state and density matrix")
    return float(np.real(np.vdot(v, rho @ v)))


def density_matrix_fidelity(rho: np.ndarray, sigma: np.ndarray) -> float:
    """Uhlmann fidelity ``(tr √(√ρ σ √ρ))²`` between two density matrices."""
    rho = check_square(rho, name="rho")
    sigma = check_square(sigma, name="sigma")
    if rho.shape != sigma.shape:
        raise ValidationError("density matrices have different dimensions")
    if not (is_density_matrix(rho, atol=1e-6) and is_density_matrix(sigma, atol=1e-6)):
        raise ValidationError("inputs must be valid density matrices")
    eigenvalues, eigenvectors = np.linalg.eigh(rho)
    eigenvalues = np.clip(eigenvalues, 0.0, None)
    sqrt_rho = eigenvectors @ np.diag(np.sqrt(eigenvalues)) @ eigenvectors.conj().T
    inner = sqrt_rho @ sigma @ sqrt_rho
    inner_eigenvalues = np.clip(np.linalg.eigvalsh(inner), 0.0, None)
    return float(np.sum(np.sqrt(inner_eigenvalues)) ** 2)


def trace_distance(rho: np.ndarray, sigma: np.ndarray) -> float:
    """Trace distance ``½ ‖ρ − σ‖₁``."""
    rho = check_square(rho, name="rho")
    sigma = check_square(sigma, name="sigma")
    if rho.shape != sigma.shape:
        raise ValidationError("density matrices have different dimensions")
    eigenvalues = np.linalg.eigvalsh(rho - sigma)
    return float(0.5 * np.sum(np.abs(eigenvalues)))
