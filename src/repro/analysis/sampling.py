"""Sample-count analysis: our algorithm vs the quantum-trajectories method.

Reproduces the analytical comparison behind the paper's Fig. 5:

* the approximation algorithm at level 1 performs
  ``2 · (1 + 3N)`` tensor-network contractions (Theorem 1's count), which the
  paper calls its "sample number";
* the quantum-trajectories method achieves accuracy ``O(1/√r)`` with ``r``
  samples (at a fixed success probability), so matching the level-1 accuracy
  ``Θ(N² p²)`` requires ``r = C² / (N⁴ p⁴)`` samples, where ``C`` captures the
  constant of the ``O(1/√r)`` error and the chosen confidence level.

The crossover — where trajectories become cheaper than our algorithm —
happens around ``N ≈ 26`` at ``p = 10⁻³`` in the paper; the default constant
below is calibrated to that reported crossover so the reproduction exhibits
the same shape (ours linear in ``N`` and noise-rate independent, trajectories
falling as ``N⁻⁴ p⁻⁴``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.error_bounds import contraction_count, level1_error_bound_simplified
from repro.utils.validation import ValidationError

__all__ = [
    "approximation_sample_count",
    "trajectories_sample_count",
    "crossover_noise_count",
    "SampleCountComparison",
    "compare_sample_counts",
    "calibrate_trajectory_constant",
    "DEFAULT_TRAJECTORY_CONSTANT",
]


def approximation_sample_count(num_noises: int, level: int = 1) -> int:
    """Contractions performed by the approximation algorithm (its "sample number")."""
    return contraction_count(num_noises, level)


def calibrate_trajectory_constant(
    crossover_noises: int = 26, noise_rate: float = 1e-3, level: int = 1
) -> float:
    """Return the constant ``C`` such that the crossover happens at ``crossover_noises``.

    Solves ``C² / (N⁴ p⁴) = contractions(N, level)`` for ``C`` at the paper's
    reported crossover point (``N = 26`` for ``p = 10⁻³``).
    """
    if crossover_noises <= 0 or noise_rate <= 0:
        raise ValidationError("crossover_noises and noise_rate must be positive")
    ours = approximation_sample_count(crossover_noises, level)
    return math.sqrt(ours) * (crossover_noises**2) * (noise_rate**2)


#: Constant calibrated to the paper's reported crossover (N ≈ 26 at p = 1e-3).
DEFAULT_TRAJECTORY_CONSTANT = calibrate_trajectory_constant()


def trajectories_sample_count(
    num_noises: int,
    noise_rate: float,
    constant: float = DEFAULT_TRAJECTORY_CONSTANT,
    max_samples: int = 10**12,
) -> int:
    """Samples the trajectories method needs to match the level-1 accuracy.

    Implements the paper's ``r = C² / (N⁴ p⁴)`` with a floor of one sample and
    a configurable ceiling (the true requirement explodes as ``p → 0``).
    """
    if num_noises <= 0:
        raise ValidationError("num_noises must be positive")
    if noise_rate <= 0:
        raise ValidationError("noise_rate must be positive")
    required = (constant / (num_noises**2 * noise_rate**2)) ** 2
    return int(min(max(math.ceil(required), 1), max_samples))


def crossover_noise_count(
    noise_rate: float,
    level: int = 1,
    constant: float = DEFAULT_TRAJECTORY_CONSTANT,
    max_noises: int = 10_000,
) -> int | None:
    """Smallest ``N`` at which trajectories need fewer samples than our algorithm.

    Returns ``None`` when no crossover occurs below ``max_noises`` (the
    behaviour the paper reports for ``p = 10⁻⁴`` within its plotted range).
    """
    for n in range(1, max_noises + 1):
        if trajectories_sample_count(n, noise_rate, constant) <= approximation_sample_count(n, level):
            return n
    return None


@dataclass(frozen=True)
class SampleCountComparison:
    """One row of the Fig. 5 comparison."""

    num_noises: int
    noise_rate: float
    ours: int
    trajectories: int
    target_error: float

    @property
    def ours_wins(self) -> bool:
        """True when the approximation algorithm needs fewer samples."""
        return self.ours <= self.trajectories


def compare_sample_counts(
    noise_counts: Sequence[int],
    noise_rate: float,
    level: int = 1,
    constant: float = DEFAULT_TRAJECTORY_CONSTANT,
) -> List[SampleCountComparison]:
    """Build the full Fig. 5 series for one noise rate."""
    rows = []
    for n in noise_counts:
        rows.append(
            SampleCountComparison(
                num_noises=int(n),
                noise_rate=float(noise_rate),
                ours=approximation_sample_count(int(n), level),
                trajectories=trajectories_sample_count(int(n), noise_rate, constant),
                target_error=level1_error_bound_simplified(int(n), noise_rate),
            )
        )
    return rows
