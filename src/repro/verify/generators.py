"""Seeded random workload generation for the conformance harness.

A :class:`Workload` is one differential-testing case: an ideal circuit drawn
from a parametrised family, an optional noise configuration (channel,
parameter, explicit count, explicit seed), an optional random Pauli
observable, and the task knobs (sample count, approximation level) the
oracles run it under.  Everything is derived from one 63-bit seed via
:func:`repro.sweeps.spec.stable_seed`, so ``generate_workloads(...)`` is
bit-for-bit reproducible across processes — the property the corpus replay
and CI smoke runs rely on.

>>> from repro.verify import generate_workloads
>>> workloads = generate_workloads(cases=6, seed=7)
>>> [w.family for w in workloads]  # round-robin over the six families
['brickwork', 'clifford_t', 'qaoa_like', 'ghz_ladder', 'deep_narrow', 'wide_shallow']
>>> workloads == generate_workloads(cases=6, seed=7)
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence

import numpy as np

from repro.api.noise import apply_noise
from repro.circuits.circuit import Circuit
from repro.circuits.library.families import (
    brickwork_circuit,
    clifford_t_circuit,
    deep_narrow_circuit,
    ghz_ladder_circuit,
    qaoa_like_circuit,
    wide_shallow_circuit,
)
from repro.circuits.observables import PauliObservable
from repro.noise import CHANNEL_FACTORIES
from repro.sweeps.spec import stable_seed
from repro.utils.validation import ValidationError

__all__ = [
    "FAMILIES",
    "Workload",
    "generate_workloads",
    "random_noise_config",
    "random_pauli_observable",
    "resolve_families",
]


def _sample_brickwork(rng: np.random.Generator) -> Circuit:
    return brickwork_circuit(
        int(rng.integers(3, 7)), depth=int(rng.integers(3, 9)), seed=int(rng.integers(2**31))
    )


def _sample_clifford_t(rng: np.random.Generator) -> Circuit:
    return clifford_t_circuit(
        int(rng.integers(2, 6)), depth=int(rng.integers(5, 15)), seed=int(rng.integers(2**31))
    )


def _sample_qaoa_like(rng: np.random.Generator) -> Circuit:
    return qaoa_like_circuit(
        int(rng.integers(3, 7)), layers=int(rng.integers(1, 4)), seed=int(rng.integers(2**31))
    )


def _sample_ghz_ladder(rng: np.random.Generator) -> Circuit:
    num_qubits = int(rng.integers(3, 7))
    return ghz_ladder_circuit(
        num_qubits, rungs=int(rng.integers(1, num_qubits + 1)), seed=int(rng.integers(2**31))
    )


def _sample_deep_narrow(rng: np.random.Generator) -> Circuit:
    return deep_narrow_circuit(
        int(rng.integers(2, 4)), depth=int(rng.integers(14, 33)), seed=int(rng.integers(2**31))
    )


def _sample_wide_shallow(rng: np.random.Generator) -> Circuit:
    return wide_shallow_circuit(
        int(rng.integers(6, 9)), depth=int(rng.integers(1, 4)), seed=int(rng.integers(2**31))
    )


#: Family name -> sampler ``(rng) -> Circuit`` drawing sizes from the
#: family's characteristic range (kept small enough that the density-matrix
#: reference applies to every workload).
FAMILIES = {
    "brickwork": _sample_brickwork,
    "clifford_t": _sample_clifford_t,
    "qaoa_like": _sample_qaoa_like,
    "ghz_ladder": _sample_ghz_ladder,
    "deep_narrow": _sample_deep_narrow,
    "wide_shallow": _sample_wide_shallow,
}


def resolve_families(families: str | Sequence[str] = "all") -> List[str]:
    """Expand a family specification (``"all"``, CSV string, or list of names)."""
    if isinstance(families, str):
        if families.strip().lower() == "all":
            return list(FAMILIES)
        families = [part for part in families.split(",") if part.strip()]
    resolved = []
    for name in families:
        key = str(name).strip()
        if key not in FAMILIES:
            raise ValidationError(
                f"unknown workload family {key!r}; known: {', '.join(FAMILIES)}"
            )
        if key not in resolved:
            resolved.append(key)
    if not resolved:
        raise ValidationError("at least one workload family is required")
    return resolved


def random_noise_config(
    rng: np.random.Generator,
    circuit: Circuit,
    max_count: int = 6,
    noiseless_fraction: float = 0.25,
) -> Dict[str, Any] | None:
    """Draw a noise configuration with an explicit count and injection seed.

    Returns ``None`` (a noiseless workload) with probability
    ``noiseless_fraction``; otherwise a mapping accepted by
    :func:`repro.api.apply_noise` naming one of the registered
    single-parameter channels, a log-uniform parameter in ``[3e-4, 5e-2]``,
    a count in ``[1, max_count]`` and a fixed seed, so the same noisy circuit
    is rebuilt on every replay.
    """
    if rng.random() < noiseless_fraction:
        return None
    channels = sorted(CHANNEL_FACTORIES)
    count = int(rng.integers(1, min(max_count, max(1, circuit.gate_count())) + 1))
    return {
        "channel": channels[int(rng.integers(len(channels)))],
        "parameter": float(10.0 ** rng.uniform(-3.5, -1.3)),
        "count": count,
        "seed": int(rng.integers(2**31)),
    }


def random_pauli_observable(
    num_qubits: int,
    rng: np.random.Generator,
    max_terms: int = 3,
    max_weight: int = 2,
) -> PauliObservable:
    """A random Pauli-sum observable with bounded term count and weight."""
    if max_terms < 1 or max_weight < 1:
        raise ValidationError("max_terms and max_weight must be positive")
    observable = PauliObservable()
    for _ in range(int(rng.integers(1, max_terms + 1))):
        weight = int(rng.integers(1, min(max_weight, num_qubits) + 1))
        qubits = rng.choice(num_qubits, size=weight, replace=False)
        paulis = {int(q): "XYZ"[int(rng.integers(3))] for q in qubits}
        observable.add_term(float(rng.uniform(-1.0, 1.0)), paulis)
    return observable


@dataclass(frozen=True)
class Workload:
    """One conformance case: circuit + noise config + observable + task knobs."""

    family: str
    index: int
    seed: int
    circuit: Circuit = field(compare=False)
    noise: Mapping[str, Any] | None = None
    observable: PauliObservable | None = field(default=None, compare=False)
    samples: int = 320
    level: int = 1

    def noisy_circuit(self) -> Circuit:
        """The circuit the oracles simulate (noise injected deterministically)."""
        return apply_noise(self.circuit, None if self.noise is None else dict(self.noise))

    def describe(self) -> str:
        """One-line label used in progress output and artifacts."""
        noise = "noiseless"
        if self.noise is not None:
            noise = (
                f"{self.noise['channel']}-p{self.noise['parameter']:.2g}"
                f"-x{self.noise['count']}"
            )
        return f"{self.family}#{self.index} {self.circuit.name} {noise}"


def generate_workloads(
    families: str | Sequence[str] = "all",
    cases: int = 50,
    seed: int = 7,
    samples: int = 320,
    level: int = 1,
    max_noises: int = 6,
) -> List[Workload]:
    """Generate ``cases`` seeded workloads round-robin over ``families``.

    Workload ``i`` depends only on ``(seed, its family, i)`` — not on which
    other families are selected — so narrowing the family list reproduces the
    exact cases a full run generated for those families.
    """
    if cases < 1:
        raise ValidationError("cases must be positive")
    if samples < 1:
        raise ValidationError("samples must be positive")
    if level < 0:
        raise ValidationError("level must be non-negative")
    names = resolve_families(families)
    workloads = []
    for index in range(cases):
        family = names[index % len(names)]
        workload_seed = stable_seed(seed, "workload", family, index // len(names))
        rng = np.random.default_rng(workload_seed)
        circuit = FAMILIES[family](rng)
        noise = random_noise_config(rng, circuit, max_count=max_noises)
        observable = random_pauli_observable(circuit.num_qubits, rng)
        workloads.append(
            Workload(
                family=family,
                index=index,
                seed=workload_seed,
                circuit=circuit,
                noise=noise,
                observable=observable,
                samples=samples,
                level=level,
            )
        )
    return workloads
