"""Differential conformance subsystem: randomized workloads + metamorphic oracles.

``repro.verify`` turns the registry's "the backends agree on a handful of
hand-picked circuits" into a property: seeded random workloads drawn from
parametrised families run through every capable backend and are checked
against metamorphic oracles —

* cross-backend agreement within each backend's accuracy contract (exact
  tolerance, Theorem-1 error bound, or a ``z``-sigma stochastic interval);
* transpile invariance (gate fusion and native decomposition preserve the
  fidelity);
* noise-count monotonicity of the TVD from the noiseless value under stacked
  depolarizing noise;
* seed determinism of the stochastic backends across worker counts;
* Pauli-observable agreement between the dense and tensor-network engines;
* bind equivalence: ``compile(c).bind(p)`` is bit-identical to compiling the
  substituted circuit in an independent session with no plan cache.

Any failing case is shrunk to a minimal reproducing circuit
(:mod:`repro.verify.shrink`) and written out as a replayable JSON artifact
(:mod:`repro.verify.corpus`).  The CLI front door is ``repro verify``; the
workload families are also plain benchmark names (``brickwork_5``, …), so a
conformance grid is just another sweep spec
(:func:`repro.verify.conformance_spec`).
"""

from repro.verify.corpus import (
    circuit_from_dict,
    circuit_to_dict,
    load_artifact,
    replay_artifact,
    save_artifact,
)
from repro.verify.generators import (
    FAMILIES,
    Workload,
    generate_workloads,
    random_noise_config,
    random_pauli_observable,
)
from repro.verify.oracles import (
    DEFAULT_ORACLES,
    BindEquivalence,
    CrossBackendAgreement,
    NoiseMonotonicity,
    ObservableAgreement,
    Oracle,
    SeedDeterminism,
    TranspileInvariance,
    Violation,
    parametrize_circuit,
)
from repro.verify.runner import (
    ConformanceReport,
    ConformanceRunner,
    conformance_spec,
    run_conformance,
)
from repro.verify.shrink import compact_qubits, shrink_circuit

__all__ = [
    "FAMILIES",
    "Workload",
    "generate_workloads",
    "random_noise_config",
    "random_pauli_observable",
    "Oracle",
    "Violation",
    "CrossBackendAgreement",
    "TranspileInvariance",
    "NoiseMonotonicity",
    "SeedDeterminism",
    "ObservableAgreement",
    "BindEquivalence",
    "parametrize_circuit",
    "DEFAULT_ORACLES",
    "shrink_circuit",
    "compact_qubits",
    "circuit_to_dict",
    "circuit_from_dict",
    "save_artifact",
    "load_artifact",
    "replay_artifact",
    "ConformanceRunner",
    "ConformanceReport",
    "run_conformance",
    "conformance_spec",
]
