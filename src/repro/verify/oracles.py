"""Metamorphic oracles: properties every correct backend stack satisfies.

Each :class:`Oracle` checks one property of a :class:`~repro.verify.Workload`
by dispatching simulations through a shared :class:`repro.api.Session` and
returns :class:`Violation` records for every breach.  Oracles also expose
:meth:`Oracle.violates`, a pure predicate on a *candidate circuit* that
re-evaluates the recorded failure — this is what the shrinker and the corpus
replay drive, so a failure found once can be minimised and re-checked
mechanically.

The oracles are *sound*: each tolerance follows from a contract the backends
already guarantee (floating-point exactness, the Theorem-1 bound, a
``z``-sigma confidence interval, or the provable monotonicity of stacked
same-site depolarizing noise), so a violation is a bug, not noise.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

import numpy as np

from repro.api import Session
from repro.backends import get_backend
from repro.backends.registry import backend_names
from repro.circuits import gates as glib
from repro.circuits.circuit import Circuit
from repro.circuits.observables import PauliObservable
from repro.circuits.parameters import (
    Parameter,
    ParametricGate,
    circuit_parameters,
    substitute,
)
from repro.circuits.transpile import decompose_to_native, merge_single_qubit_gates
from repro.noise import depolarizing_channel
from repro.sweeps.spec import stable_seed
from repro.utils.validation import ValidationError
from repro.verify.generators import Workload

__all__ = [
    "DEFAULT_ORACLES",
    "BindEquivalence",
    "CrossBackendAgreement",
    "NoiseMonotonicity",
    "ObservableAgreement",
    "Oracle",
    "SeedDeterminism",
    "TranspileInvariance",
    "Violation",
    "parametrize_circuit",
]


@dataclass
class Violation:
    """One oracle breach: the failing circuit plus a replayable description."""

    oracle: str
    family: str
    case_index: int
    workload_seed: int
    deviation: float
    tolerance: float
    #: The circuit exhibiting the failure (shrunk later; serialised by corpus).
    circuit: Circuit = field(repr=False)
    #: JSON-serialisable parameters sufficient to re-evaluate the failure.
    details: Dict[str, Any] = field(default_factory=dict)

    def summary(self) -> str:
        """One-line human-readable description."""
        extras = ", ".join(f"{key}={value}" for key, value in sorted(self.details.items())
                           if key not in ("values",))
        return (
            f"[{self.oracle}] {self.family}#{self.case_index}: "
            f"deviation {self.deviation:.3e} > tolerance {self.tolerance:.3e} ({extras})"
        )


class Oracle(ABC):
    """A metamorphic property checked against every applicable workload."""

    name = "oracle"
    #: Whether :meth:`violates` supports arbitrary candidate circuits, which
    #: is what the shrinker needs.
    shrinkable = True

    def applies(self, workload: Workload) -> bool:
        """Whether this oracle is meaningful for ``workload``."""
        return True

    @abstractmethod
    def check(self, workload: Workload, session: Session) -> List[Violation]:
        """Evaluate the property; return a (possibly empty) violation list."""

    @abstractmethod
    def violates(self, circuit: Circuit, details: Dict[str, Any], session: Session) -> bool:
        """Re-evaluate a recorded failure on a candidate circuit."""

    def _violation(
        self,
        workload: Workload,
        circuit: Circuit,
        deviation: float,
        tolerance: float,
        **details: Any,
    ) -> Violation:
        return Violation(
            oracle=self.name,
            family=workload.family,
            case_index=workload.index,
            workload_seed=workload.seed,
            deviation=float(deviation),
            tolerance=float(tolerance),
            circuit=circuit,
            details=details,
        )


def _supported(name: str, circuit: Circuit) -> bool:
    return get_backend(name).supports(circuit) is None


def _jump_mass(circuit: Circuit) -> float:
    """Upper bound on a trajectory's probability of any non-dominant branch.

    For each noise channel the no-jump probability from any state is at least
    ``σ_min(E_0)²`` of its dominant Kraus operator, so a union bound over the
    channels caps the per-trajectory jump probability.  This feeds the
    stochastic tolerance: when jumps are rare the *empirical* standard error
    of a small sample can be exactly zero (no jump was drawn), so the
    analytic ``z·sqrt(μ(1−μ)/n)`` term keeps the interval honest — for
    ``μ ≤ z²/n`` it dominates the worst-case zero-jump bias ``μ`` itself,
    and for larger ``μ`` jumps are frequent enough that the empirical term
    is reliable.
    """
    total = 0.0
    for inst in circuit.noise_instructions:
        operators = inst.operation.kraus_operators
        dominant = max(operators, key=lambda op: float(np.linalg.norm(op)))
        smallest_singular = float(np.linalg.svd(dominant, compute_uv=False)[-1])
        total += max(0.0, 1.0 - smallest_singular**2)
    return min(1.0, total)


class CrossBackendAgreement(Oracle):
    """Every capable backend agrees with the reference within its contract.

    Per-backend tolerance: exact backends get ``exact_tol`` (floating point),
    the approximation backend gets its own Theorem-1 ``error_bound``, the
    stochastic backends get a ``z``-sigma interval plus an absolute floor,
    and the truncating MPS/MPDO backends (run untruncated here) get
    ``inexact_tol``.

    ``output_state="zero"`` scores against ``|0…0⟩`` (covers the
    product-state-only backends); ``output_state="ideal"`` scores against the
    circuit's own ideal output, where the noiseless fidelity is exactly 1 —
    much more discriminating for Clifford-heavy circuits whose ``|0…0⟩``
    overlap is often exactly zero on every backend.  The default oracle set
    runs one instance of each.
    """

    name = "cross_backend"

    def __init__(
        self,
        reference: str = "density_matrix",
        backends: Sequence[str] | None = None,
        output_state: str = "zero",
        exact_tol: float = 1e-7,
        inexact_tol: float = 1e-6,
        z: float = 6.0,
        stochastic_floor: float = 1e-3,
        bound_slack: float = 1e-9,
    ) -> None:
        if output_state not in ("zero", "ideal"):
            raise ValidationError("output_state must be 'zero' or 'ideal'")
        self.reference = reference
        self.backends = None if backends is None else list(backends)
        self.output_state = output_state
        self.name = f"cross_backend_{output_state}"
        self.exact_tol = exact_tol
        self.inexact_tol = inexact_tol
        self.z = z
        self.stochastic_floor = stochastic_floor
        self.bound_slack = bound_slack

    def _output_arg(self):
        return "ideal" if self.output_state == "ideal" else None

    def applies(self, workload: Workload) -> bool:
        return _supported(self.reference, workload.noisy_circuit())

    def _candidates(self, circuit: Circuit) -> List[str]:
        names = self.backends if self.backends is not None else backend_names()
        return [
            name
            for name in names
            if name != self.reference
            and _supported(name, circuit)
            # A dense ideal output state is not a product state, which the
            # MPS/MPDO backends require.
            and not (
                self.output_state == "ideal"
                and get_backend(name).capabilities.needs_product_state
            )
        ]

    def _tolerance(self, name: str, result, circuit: Circuit) -> float:
        capabilities = get_backend(name).capabilities
        if result.error_bound is not None:
            return result.error_bound + self.bound_slack
        if capabilities.stochastic:
            mass = _jump_mass(circuit)
            samples = max(1, int(result.num_samples or 1))
            sampling = self.z * float(np.sqrt(mass * (1.0 - mass) / samples))
            return self.z * result.standard_error + sampling + self.stochastic_floor
        if capabilities.exact:
            return self.exact_tol
        return self.inexact_tol

    def _compare_one(
        self, name: str, circuit: Circuit, reference_value: float,
        session: Session, samples: int, seed: int, level: int,
    ):
        result = session.run(
            circuit, backend=name, samples=samples, seed=seed, level=level,
            output_state=self._output_arg(),
        )
        tolerance = self._tolerance(name, result, circuit)
        deviation = abs(result.value - reference_value)
        return result, deviation, tolerance

    def check(self, workload: Workload, session: Session) -> List[Violation]:
        circuit = workload.noisy_circuit()
        reference = session.run(
            circuit, backend=self.reference, output_state=self._output_arg()
        ).value
        violations = []
        names = self._candidates(circuit)
        futures = [
            (
                name,
                session.submit(
                    circuit,
                    backend=name,
                    samples=workload.samples,
                    seed=workload.seed,
                    level=workload.level,
                    output_state=self._output_arg(),
                ),
            )
            for name in names
        ]
        for name, future in futures:
            result = future.result()
            tolerance = self._tolerance(name, result, circuit)
            deviation = abs(result.value - reference)
            if deviation > tolerance:
                violations.append(
                    self._violation(
                        workload,
                        circuit,
                        deviation,
                        tolerance,
                        backend=name,
                        reference=self.reference,
                        output_state=self.output_state,
                        values={"backend": result.value, "reference": reference},
                        samples=workload.samples,
                        seed=workload.seed,
                        level=workload.level,
                    )
                )
        return violations

    def violates(self, circuit: Circuit, details: Dict[str, Any], session: Session) -> bool:
        name = details["backend"]
        if not (_supported(self.reference, circuit) and _supported(name, circuit)):
            return False
        reference = session.run(
            circuit, backend=self.reference, output_state=self._output_arg()
        ).value
        _, deviation, tolerance = self._compare_one(
            name, circuit, reference, session,
            details["samples"], details["seed"], details["level"],
        )
        return deviation > tolerance


class TranspileInvariance(Oracle):
    """Gate fusion and native decomposition preserve the fidelity exactly."""

    name = "transpile_invariance"

    _TRANSFORMS = {
        "merge_single_qubit_gates": merge_single_qubit_gates,
        "decompose_to_native": decompose_to_native,
    }

    def __init__(self, reference: str = "density_matrix", tolerance: float = 1e-7) -> None:
        self.reference = reference
        self.tolerance = tolerance

    def applies(self, workload: Workload) -> bool:
        return _supported(self.reference, workload.noisy_circuit())

    def _deviation(
        self, circuit: Circuit, transform: str, session: Session,
        base: float | None = None,
    ) -> float:
        if base is None:
            base = session.run(circuit, backend=self.reference).value
        transformed = self._TRANSFORMS[transform](circuit)
        value = session.run(transformed, backend=self.reference).value
        return abs(value - base)

    def check(self, workload: Workload, session: Session) -> List[Violation]:
        circuit = workload.noisy_circuit()
        base = session.run(circuit, backend=self.reference).value
        violations = []
        for transform in self._TRANSFORMS:
            try:
                deviation = self._deviation(circuit, transform, session, base=base)
            except ValidationError:
                continue  # e.g. 3-qubit gates the native pass rejects
            if deviation > self.tolerance:
                violations.append(
                    self._violation(
                        workload, circuit, deviation, self.tolerance,
                        transform=transform, reference=self.reference,
                    )
                )
        return violations

    def violates(self, circuit: Circuit, details: Dict[str, Any], session: Session) -> bool:
        if not _supported(self.reference, circuit):
            return False
        try:
            return self._deviation(circuit, details["transform"], session) > self.tolerance
        except ValidationError:
            return False


class NoiseMonotonicity(Oracle):
    """TVD from the noiseless value grows with stacked depolarizing count.

    ``k`` copies of the same single-qubit depolarizing channel inserted at
    one site compose to a single depolarizing channel whose mixing weight
    ``γ_k = 1 − (1 − 4p/3)^k`` increases with ``k``; the fidelity against the
    ideal output is therefore ``F(k) = (1−γ_k)·F(0) + γ_k·B`` for a constant
    ``B``, and ``|F(k) − F(0)| = γ_k·|F(0) − B|`` is provably non-decreasing.
    The oracle inserts the stack after a seeded-random gate and checks that
    order (the Bernoulli TVD between two fidelities is their absolute
    difference).
    """

    name = "noise_monotonicity"

    def __init__(
        self,
        reference: str = "density_matrix",
        counts: Sequence[int] = (1, 2, 4),
        slack: float = 1e-9,
    ) -> None:
        if sorted(counts) != list(counts) or len(counts) < 2:
            raise ValidationError("counts must be at least two increasing noise counts")
        self.reference = reference
        self.counts = tuple(int(count) for count in counts)
        self.slack = slack

    def applies(self, workload: Workload) -> bool:
        return workload.circuit.gate_count() > 0 and _supported(
            self.reference, workload.circuit
        )

    @staticmethod
    def _stacked(circuit: Circuit, position: int, qubit: int, parameter: float, count: int) -> Circuit:
        channel = depolarizing_channel(parameter)
        stacked = Circuit(circuit.num_qubits, name=f"{circuit.name}_stack{count}")
        for index, inst in enumerate(circuit):
            stacked.append(inst.operation, inst.qubits)
            if index == position:
                for _ in range(count):
                    stacked.append(channel, (qubit,))
        return stacked

    def _fidelity(self, circuit: Circuit, session: Session) -> float:
        return session.run(circuit, backend=self.reference, output_state="ideal").value

    def check(self, workload: Workload, session: Session) -> List[Violation]:
        circuit = workload.circuit  # the *ideal* circuit anchors F(0)
        rng = np.random.default_rng(stable_seed(workload.seed, "monotone"))
        gate_positions = [i for i, inst in enumerate(circuit) if inst.is_gate]
        position = gate_positions[int(rng.integers(len(gate_positions)))]
        qubit = int(rng.choice(circuit[position].qubits))
        parameter = float(rng.uniform(0.05, 0.3))

        baseline = self._fidelity(circuit, session)
        tvds = []
        for count in self.counts:
            stacked = self._stacked(circuit, position, qubit, parameter, count)
            tvds.append(abs(self._fidelity(stacked, session) - baseline))
        worst = max(
            (tvds[i] - tvds[i + 1] for i in range(len(tvds) - 1)), default=0.0
        )
        if worst > self.slack:
            largest = self._stacked(circuit, position, qubit, parameter, self.counts[-1])
            return [
                self._violation(
                    workload, largest, worst, self.slack,
                    position=position, qubit=qubit, parameter=parameter,
                    counts=list(self.counts), tvds=tvds, reference=self.reference,
                )
            ]
        return []

    def violates(self, circuit: Circuit, details: Dict[str, Any], session: Session) -> bool:
        """Nested-prefix re-check: keeping the first ``j`` noises for growing
        ``j`` must not shrink the TVD from the all-gates baseline."""
        if not _supported(self.reference, circuit):
            return False
        noise_positions = circuit.noise_positions()
        if not noise_positions:
            return False
        baseline = self._fidelity(circuit.without_noise(), session)
        previous = 0.0
        for keep in range(1, len(noise_positions) + 1):
            kept = set(noise_positions[:keep])
            prefix = Circuit(circuit.num_qubits, name=f"{circuit.name}_prefix{keep}")
            for index, inst in enumerate(circuit):
                if inst.is_gate or index in kept:
                    prefix.append(inst.operation, inst.qubits)
            tvd = abs(self._fidelity(prefix, session) - baseline)
            if previous - tvd > self.slack:
                return True
            previous = tvd
        return False


class SeedDeterminism(Oracle):
    """Stochastic estimates are bit-identical across repeats and worker counts."""

    name = "seed_determinism"

    def __init__(self, backends: Sequence[str] | None = None, workers: Sequence[int] = (1, 2)) -> None:
        if len(workers) < 2:
            raise ValidationError("at least two worker counts are required")
        self.backends = None if backends is None else list(backends)
        self.workers = tuple(int(count) for count in workers)

    def _stochastic(self, circuit: Circuit) -> List[str]:
        names = self.backends if self.backends is not None else backend_names()
        return [
            name
            for name in names
            if get_backend(name).capabilities.stochastic and _supported(name, circuit)
        ]

    def applies(self, workload: Workload) -> bool:
        return bool(self._stochastic(workload.noisy_circuit()))

    def _values(
        self, name: str, circuit: Circuit, session: Session, samples: int, seed: int
    ) -> List[float]:
        values = [
            session.run(
                circuit, backend=name, samples=samples, seed=seed, workers=count
            ).value
            for count in self.workers
        ]
        # Repeat the first configuration: catches hidden global-state leaks.
        values.append(
            session.run(
                circuit, backend=name, samples=samples, seed=seed,
                workers=self.workers[0],
            ).value
        )
        return values

    def check(self, workload: Workload, session: Session) -> List[Violation]:
        circuit = workload.noisy_circuit()
        violations = []
        for name in self._stochastic(circuit):
            values = self._values(name, circuit, session, workload.samples, workload.seed)
            deviation = max(abs(value - values[0]) for value in values)
            if deviation > 0.0:
                violations.append(
                    self._violation(
                        workload, circuit, deviation, 0.0,
                        backend=name, samples=workload.samples, seed=workload.seed,
                        workers=list(self.workers), values=values,
                    )
                )
        return violations

    def violates(self, circuit: Circuit, details: Dict[str, Any], session: Session) -> bool:
        name = details["backend"]
        if not _supported(name, circuit):
            return False
        values = self._values(name, circuit, session, details["samples"], details["seed"])
        return max(abs(value - values[0]) for value in values) > 0.0


class ObservableAgreement(Oracle):
    """Dense and tensor-network engines agree on Pauli-sum expectations."""

    name = "observable_agreement"

    def __init__(self, tolerance: float = 1e-7, max_qubits: int = 10) -> None:
        self.tolerance = tolerance
        self.max_qubits = max_qubits

    def applies(self, workload: Workload) -> bool:
        return (
            workload.observable is not None
            and workload.circuit.num_qubits <= self.max_qubits
        )

    def _deviation(self, circuit: Circuit, observable: PauliObservable) -> float:
        from repro.simulators import DensityMatrixSimulator, TNSimulator

        rho = DensityMatrixSimulator(max_qubits=self.max_qubits).run(circuit)
        dense = float(np.real(np.trace(observable.matrix(circuit.num_qubits) @ rho)))
        tn = TNSimulator().expectation(circuit, observable)
        return abs(tn - dense)

    def check(self, workload: Workload, session: Session) -> List[Violation]:
        circuit = workload.noisy_circuit()
        deviation = self._deviation(circuit, workload.observable)
        if deviation > self.tolerance:
            return [
                self._violation(
                    workload, circuit, deviation, self.tolerance,
                    observable=_observable_to_list(workload.observable),
                )
            ]
        return []

    def violates(self, circuit: Circuit, details: Dict[str, Any], session: Session) -> bool:
        if circuit.num_qubits > self.max_qubits:
            return False
        observable = _observable_from_list(details["observable"])
        support = {qubit for _, paulis in details["observable"] for qubit in map(int, paulis)}
        if any(qubit >= circuit.num_qubits for qubit in support):
            return False
        return self._deviation(circuit, observable) > self.tolerance


def _parametrizable(circuit: Circuit) -> List[int]:
    """Indices of gates a :class:`Parameter` can replace (one-angle factories)."""
    return [
        index
        for index, inst in enumerate(circuit)
        if inst.is_gate
        and not getattr(inst.operation, "is_parametric_gate", False)
        and inst.operation.name in glib.GATE_FACTORIES
        and len(inst.operation.params) == 1
    ]


def parametrize_circuit(circuit: Circuit, rng: np.random.Generator):
    """Lift a random subset of one-angle gates into symbolic parameters.

    Each chosen gate ``g(θ)`` becomes ``g(c·p_j)`` for a fresh parameter
    ``p_j`` and a nonzero seeded coefficient ``c``, with ``binding[p_j] =
    θ/c`` — so the bound circuit evaluates the *same expression* the
    substitute path does, and any value drift between the two execution
    paths is a planner/binding bug, not floating-point re-association.

    Returns ``(parametric_circuit, binding)``; ``(None, {})`` when the
    circuit has no parametrizable gate.
    """
    eligible = _parametrizable(circuit)
    if not eligible:
        return None, {}
    chosen = {index for index in eligible if rng.random() < 0.5}
    if not chosen:
        chosen = {eligible[int(rng.integers(len(eligible)))]}
    parametric = Circuit(circuit.num_qubits, name=f"{circuit.name}_parametric")
    binding: Dict[str, float] = {}
    slot = 0
    for index, inst in enumerate(circuit):
        if index in chosen:
            angle = float(inst.operation.params[0])
            coeff = float(rng.uniform(0.5, 2.0))
            name = f"p{slot}"
            parametric.append(
                ParametricGate(inst.operation.name, (coeff * Parameter(name),)),
                inst.qubits,
            )
            binding[name] = angle / coeff
            slot += 1
        else:
            parametric.append(inst.operation, inst.qubits)
    return parametric, binding


class BindEquivalence(Oracle):
    """``compile(c).bind(p)`` is bit-identical to ``compile(substitute(c, p))``.

    A parametric plan is a value-free template: binding swaps tensor values
    while reusing the recorded contraction schedule, noise decompositions
    and sampling distributions.  Both paths evaluate the same expressions on
    the same binding with the same explicit seed, so every backend must
    return the exact same float — the tolerance is zero.

    The reference path runs in an *independent* session with the plan cache
    disabled: in the shared session the substituted circuit shares the
    parametric circuit's structural fingerprint and would silently reuse the
    very plan under test.  Stochastic backends are pinned to ``workers=1``
    in both paths so the trajectory schedule is identical.
    """

    name = "bind_equivalence"

    def __init__(self, backends: Sequence[str] | None = None) -> None:
        self.backends = None if backends is None else list(backends)

    def _names(self, circuit: Circuit) -> List[str]:
        names = self.backends if self.backends is not None else backend_names()
        return [name for name in names if _supported(name, circuit)]

    def applies(self, workload: Workload) -> bool:
        circuit = workload.noisy_circuit()
        return bool(_parametrizable(circuit)) and bool(self._names(circuit))

    def _deviation(
        self, parametric: Circuit, binding: Dict[str, float], name: str,
        session: Session, samples: int, seed: int, level: int,
    ) -> float:
        workers = 1 if get_backend(name).capabilities.stochastic else None
        bound = (
            session.compile(
                parametric, backend=name, samples=samples, seed=seed,
                level=level, workers=workers,
            )
            .bind(binding)
            .run()
            .value
        )
        with Session(
            plan_cache_size=0, passes=session.passes, device=session.device
        ) as independent:
            reference = independent.run(
                substitute(parametric, binding), backend=name, samples=samples,
                seed=seed, level=level, workers=workers,
            ).value
        return abs(bound - reference)

    def check(self, workload: Workload, session: Session) -> List[Violation]:
        circuit = workload.noisy_circuit()
        rng = np.random.default_rng(stable_seed(workload.seed, "bind"))
        parametric, binding = parametrize_circuit(circuit, rng)
        if parametric is None:
            return []
        violations = []
        for name in self._names(circuit):
            deviation = self._deviation(
                parametric, binding, name, session,
                workload.samples, workload.seed, workload.level,
            )
            if deviation > 0.0:
                violations.append(
                    self._violation(
                        workload, parametric, deviation, 0.0,
                        backend=name, binding=binding,
                        samples=workload.samples, seed=workload.seed,
                        level=workload.level,
                    )
                )
        return violations

    def violates(self, circuit: Circuit, details: Dict[str, Any], session: Session) -> bool:
        binding = {str(key): float(value) for key, value in details["binding"].items()}
        free = circuit_parameters(circuit)
        if not free or not free <= set(binding):
            return False
        if not _supported(details["backend"], substitute(circuit, binding)):
            return False
        deviation = self._deviation(
            circuit, binding, details["backend"], session,
            details["samples"], details["seed"], details["level"],
        )
        return deviation > 0.0


def _observable_to_list(observable: PauliObservable) -> List[Any]:
    """JSON form: ``[[coefficient, {qubit: label}], ...]``."""
    return [
        [term.coefficient, {str(qubit): label for qubit, label in term.paulis}]
        for term in observable
    ]


def _observable_from_list(payload: Sequence[Any]) -> PauliObservable:
    observable = PauliObservable()
    for coefficient, paulis in payload:
        observable.add_term(float(coefficient), {int(q): str(l) for q, l in paulis.items()})
    return observable


def DEFAULT_ORACLES() -> List[Oracle]:
    """A fresh instance of every default oracle (order = evaluation order)."""
    return [
        CrossBackendAgreement(output_state="zero"),
        CrossBackendAgreement(output_state="ideal"),
        TranspileInvariance(),
        NoiseMonotonicity(),
        SeedDeterminism(),
        ObservableAgreement(),
        BindEquivalence(),
    ]
