"""Failure minimisation: shrink a failing circuit to a minimal reproducer.

Classic delta debugging adapted to circuits: repeatedly try to delete spans
of instructions (halving the span size down to single instructions) while
the caller's predicate still reports a failure, then drop qubits no
remaining instruction touches.  The predicate sees candidate
:class:`~repro.circuits.Circuit` objects and returns True when the failure
still reproduces; any exception it raises counts as "does not reproduce", so
shrinking can never escalate an oracle violation into a crash.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.circuits.circuit import Circuit

__all__ = ["compact_qubits", "shrink_circuit"]

Predicate = Callable[[Circuit], bool]


def compact_qubits(circuit: Circuit) -> Circuit:
    """Drop qubits no instruction touches and renumber the rest densely."""
    used = sorted({qubit for inst in circuit for qubit in inst.qubits})
    if not used or len(used) == circuit.num_qubits and used[-1] == len(used) - 1:
        return circuit
    mapping = {old: new for new, old in enumerate(used)}
    compact = Circuit(len(used), name=circuit.name)
    for inst in circuit:
        compact.append(inst.operation, tuple(mapping[qubit] for qubit in inst.qubits))
    return compact


def _without_span(circuit: Circuit, start: int, length: int) -> Circuit:
    candidate = Circuit(circuit.num_qubits, name=circuit.name)
    for index, inst in enumerate(circuit):
        if not start <= index < start + length:
            candidate.append(inst.operation, inst.qubits)
    return candidate


def shrink_circuit(
    circuit: Circuit,
    still_fails: Predicate,
    max_checks: int = 500,
) -> Tuple[Circuit, int]:
    """Greedy ddmin: smallest circuit for which ``still_fails`` holds.

    Returns ``(shrunk_circuit, checks_spent)``.  The input circuit is assumed
    to fail; it is returned unchanged if no smaller failing candidate is
    found within ``max_checks`` predicate evaluations.
    """
    checks = 0

    def fails(candidate: Circuit) -> bool:
        nonlocal checks
        checks += 1
        try:
            return bool(still_fails(candidate))
        except Exception:  # noqa: BLE001 - a crashing candidate is not a reproducer
            return False

    best = circuit
    span = max(1, len(best) // 2)
    while span >= 1 and checks < max_checks:
        index = 0
        while index < len(best) and checks < max_checks:
            candidate = _without_span(best, index, span)
            if len(candidate) > 0 and fails(candidate):
                best = candidate  # keep the cursor: the next span slid into place
            else:
                index += span
        span //= 2

    if checks < max_checks:
        compacted = compact_qubits(best)
        if compacted.num_qubits < best.num_qubits and fails(compacted):
            best = compacted
    return best, checks
