"""Conformance execution: workloads × oracles through one shared session.

:class:`ConformanceRunner` is what ``repro verify`` drives: generate the
seeded workloads, evaluate every applicable oracle, shrink each failure to a
minimal reproducing circuit and write a replayable artifact.  The report it
returns is the machine- and human-readable outcome CI gates on.

:func:`conformance_spec` renders the same workload families as a declarative
:mod:`repro.sweeps` grid, so a conformance run can also be expressed,
resumed and reported as just another sweep spec
(``examples/specs/conformance.yaml`` in the repository is one).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.analysis import format_table
from repro.api import PassConfig, Session
from repro.utils.validation import ValidationError
from repro.verify.corpus import save_artifact
from repro.verify.generators import Workload, generate_workloads, resolve_families
from repro.verify.oracles import DEFAULT_ORACLES, Oracle, Violation
from repro.verify.shrink import shrink_circuit

__all__ = ["ConformanceReport", "ConformanceRunner", "conformance_spec", "run_conformance"]


@dataclass
class ConformanceReport:
    """Outcome of one conformance run."""

    cases: int
    checks: int = 0
    skipped: int = 0
    violations: List[Violation] = field(default_factory=list)
    artifacts: List[Path] = field(default_factory=list)
    shrunk: Dict[int, Any] = field(default_factory=dict)
    checks_per_oracle: Dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    #: Session plan-cache counters: oracles re-running one circuit across
    #: backends/worker counts hit compiled plans instead of re-deriving them.
    plan_cache: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no oracle reported a violation."""
        return not self.violations

    def summary_table(self) -> str:
        """Per-oracle checks/violations table for the CLI."""
        rows = []
        for name in sorted(self.checks_per_oracle):
            failures = sum(1 for violation in self.violations if violation.oracle == name)
            rows.append([name, self.checks_per_oracle[name], failures])
        rows.append(["total", self.checks, len(self.violations)])
        title = f"Conformance: {self.cases} cases, {self.elapsed_seconds:.1f}s"
        if self.plan_cache:
            title += (
                f" (plan cache: {self.plan_cache['hits']} hits / "
                f"{self.plan_cache['misses']} misses)"
            )
        return format_table(["Oracle", "Checks", "Violations"], rows, title=title)


class ConformanceRunner:
    """Run the differential conformance harness (see module docs).

    Parameters
    ----------
    families / cases / seed / samples / level:
        Forwarded to :func:`repro.verify.generate_workloads`.
    oracles:
        Oracle instances to evaluate (default: one of each in
        :func:`~repro.verify.oracles.DEFAULT_ORACLES`).
    workers:
        Size of the session's shared process pool; also the alternate worker
        count the determinism oracle exercises.  Minimum 2 so the blocked
        RNG regime is actually parallel at least once.
    artifact_dir:
        Where failure artifacts are written (created on first failure only).
    shrink:
        Minimise failing circuits before writing artifacts (on by default;
        ``max_shrink_checks`` bounds the per-failure simulation budget).
    passes:
        Optimizing-pass configuration for the shared session (anything
        :meth:`repro.api.PassConfig.resolve` accepts).  ``repro verify`` runs
        with passes on by default and with ``--no-passes`` in CI, so the
        oracles certify both the optimized and the raw pipeline.
    device:
        Session-default execution device (``repro verify --device``): applied
        softly to device-capable backends, so a ``fake_gpu`` conformance run
        certifies the device dispatch path against the cpu-only references.
        An unavailable device raises here, before any workload runs.
    """

    def __init__(
        self,
        families: str | Sequence[str] = "all",
        cases: int = 50,
        seed: int = 7,
        samples: int = 320,
        level: int = 1,
        oracles: Sequence[Oracle] | None = None,
        workers: int = 2,
        artifact_dir: str | Path = "verify_artifacts",
        shrink: bool = True,
        max_shrink_checks: int = 400,
        passes: Any = True,
        device: str | None = None,
    ) -> None:
        if workers < 2:
            raise ValidationError("conformance runs need workers >= 2")
        self.families = resolve_families(families)
        self.cases = int(cases)
        self.seed = int(seed)
        self.samples = int(samples)
        self.level = int(level)
        self.oracles = list(oracles) if oracles is not None else DEFAULT_ORACLES()
        self.workers = int(workers)
        self.artifact_dir = Path(artifact_dir)
        self.shrink = shrink
        self.max_shrink_checks = int(max_shrink_checks)
        self.passes = passes
        self.device = device

    # ------------------------------------------------------------------
    def run(self, progress: Callable[[str], None] | None = None) -> ConformanceReport:
        """Generate the workloads and evaluate every applicable oracle."""
        note = progress or (lambda message: None)
        start = time.perf_counter()
        workloads = generate_workloads(
            self.families, self.cases, self.seed, samples=self.samples, level=self.level
        )
        report = ConformanceReport(cases=len(workloads))
        with Session(
            workers=self.workers, seed=self.seed, passes=self.passes, device=self.device
        ) as session:
            for workload in workloads:
                note(f"[{workload.index + 1}/{len(workloads)}] {workload.describe()}")
                for oracle in self.oracles:
                    if not oracle.applies(workload):
                        report.skipped += 1
                        continue
                    report.checks += 1
                    report.checks_per_oracle[oracle.name] = (
                        report.checks_per_oracle.get(oracle.name, 0) + 1
                    )
                    for violation in oracle.check(workload, session):
                        self._record(violation, oracle, session, report, note)
            report.plan_cache = session.cache_stats()
        report.elapsed_seconds = time.perf_counter() - start
        return report

    def _record(
        self,
        violation: Violation,
        oracle: Oracle,
        session: Session,
        report: ConformanceReport,
        note: Callable[[str], None],
    ) -> None:
        note(f"  VIOLATION {violation.summary()}")
        index = len(report.violations)
        report.violations.append(violation)
        shrunk = None
        if self.shrink and oracle.shrinkable:
            shrunk, checks = shrink_circuit(
                violation.circuit,
                lambda candidate: oracle.violates(candidate, violation.details, session),
                max_checks=self.max_shrink_checks,
            )
            report.shrunk[index] = shrunk
            note(
                f"  shrunk {len(violation.circuit)} -> {len(shrunk)} instructions "
                f"({shrunk.gate_count()} gates, {checks} checks)"
            )
        path = save_artifact(
            violation,
            self.artifact_dir,
            shrunk_circuit=shrunk,
            passes=PassConfig.resolve(self.passes).to_dict(),
        )
        report.artifacts.append(path)
        note(f"  artifact: {path}")


def run_conformance(
    families: str | Sequence[str] = "all",
    cases: int = 50,
    seed: int = 7,
    progress: Callable[[str], None] | None = None,
    **kwargs: Any,
) -> ConformanceReport:
    """One-call convenience wrapper around :class:`ConformanceRunner`."""
    runner = ConformanceRunner(families=families, cases=cases, seed=seed, **kwargs)
    return runner.run(progress=progress)


#: (channel, parameter, count) noise rows :func:`conformance_spec` grids over.
_SPEC_NOISES: Tuple[Tuple[str, float, int], ...] = (
    ("none", 0.0, 0),
    ("depolarizing", 0.01, 4),
    ("amplitude_damping", 0.005, 3),
)


def conformance_spec(
    families: str | Sequence[str] = "all",
    seed: int = 7,
    num_qubits: int = 4,
    backends: Sequence[str] = ("density_matrix", "tn", "tdd", "approximation"),
    samples: int = 320,
) -> Dict[str, Any]:
    """Render the conformance families as a declarative sweep-spec dict.

    The returned mapping loads with :func:`repro.sweeps.load_spec`, so a
    cross-backend conformance grid can be run, resumed and reported by the
    ordinary sweep machinery::

        >>> from repro.sweeps import load_spec
        >>> from repro.verify import conformance_spec
        >>> spec = load_spec(conformance_spec(families="brickwork,clifford_t"))
        >>> spec.reference, len(spec.cells())
        ('density_matrix', 24)
    """
    from repro.circuits.library import _FAMILY_PREFIXES

    names = resolve_families(families)
    prefix = {family: benchmark for benchmark, family in _FAMILY_PREFIXES.items()}
    width = {"deep_narrow": min(num_qubits, 3), "wide_shallow": max(num_qubits, 6)}
    return {
        "name": "conformance",
        "description": "cross-backend conformance grid over the verify families",
        "seed": seed,
        "reference": "density_matrix",
        "grid": {
            "circuit": [
                {"name": f"{prefix[family]}_{width.get(family, num_qubits)}", "family": family}
                for family in names
            ],
            "noise": [
                {"channel": channel, "parameter": parameter, "count": count}
                for channel, parameter, count in _SPEC_NOISES
            ],
            "backend": list(backends),
            "samples": samples,
        },
    }
