"""Replayable failure artifacts: JSON in, the same failing check out.

Every oracle violation is written as a self-contained JSON artifact holding
the (shrunk) failing circuit — gates by factory name and parameters, noise
channels by their Kraus matrices — plus the oracle name and the parameters
its :meth:`~repro.verify.oracles.Oracle.violates` predicate needs.  A saved
artifact replays with::

    from repro.verify import load_artifact, replay_artifact
    artifact = load_artifact("verify_artifacts/cross_backend-....json")
    still_failing = replay_artifact(artifact)

so a CI fuzz failure reproduces locally from the uploaded file alone, with
no access to the original RNG state.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Mapping

import numpy as np

from repro.circuits import gates as glib
from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.circuits.parameters import ParameterExpression, ParametricGate
from repro.noise.kraus import KrausChannel
from repro.utils.validation import ValidationError

__all__ = [
    "ARTIFACT_SCHEMA",
    "artifact_name",
    "circuit_from_dict",
    "circuit_to_dict",
    "load_artifact",
    "replay_artifact",
    "save_artifact",
]

ARTIFACT_SCHEMA = "repro.verify/1"


def _matrix_to_lists(matrix: np.ndarray) -> List[List[List[float]]]:
    """Complex matrix -> nested ``[[re, im], ...]`` rows (JSON-safe, lossless)."""
    return [[[float(entry.real), float(entry.imag)] for entry in row] for row in matrix]


def _matrix_from_lists(rows: List[List[List[float]]]) -> np.ndarray:
    return np.array([[complex(re, im) for re, im in row] for row in rows])


def circuit_to_dict(circuit: Circuit) -> Dict[str, Any]:
    """Serialise a circuit (gates and noise channels) to plain JSON data.

    >>> from repro.circuits import Circuit
    >>> payload = circuit_to_dict(Circuit(2, name="demo").h(0).cx(0, 1))
    >>> payload["num_qubits"], [i["name"] for i in payload["instructions"]]
    (2, ['h', 'cx'])
    """
    instructions = []
    for inst in circuit:
        if getattr(inst.operation, "is_parametric_gate", False):
            pgate = inst.operation
            entry: Dict[str, Any] = {
                "kind": "pgate",
                "name": pgate.name,
                "qubits": list(inst.qubits),
                "expressions": [
                    {"terms": [[name, coeff] for name, coeff in expr.terms],
                     "const": expr.const}
                    for expr in pgate.expressions
                ],
                "binding": dict(pgate.binding),
                "offsets": list(pgate.offsets),
            }
        elif inst.is_gate:
            gate = inst.operation
            entry = {
                "kind": "gate",
                "name": gate.name,
                "qubits": list(inst.qubits),
                "params": list(gate.params),
            }
            if gate.name not in glib.GATE_FACTORIES:
                entry["matrix"] = _matrix_to_lists(gate.matrix)
        else:
            channel = inst.operation
            entry = {
                "kind": "noise",
                "name": channel.name,
                "qubits": list(inst.qubits),
                "kraus": [_matrix_to_lists(op) for op in channel.kraus_operators],
            }
        instructions.append(entry)
    return {
        "num_qubits": circuit.num_qubits,
        "name": circuit.name,
        "instructions": instructions,
    }


def circuit_from_dict(payload: Mapping[str, Any]) -> Circuit:
    """Rebuild the circuit :func:`circuit_to_dict` serialised."""
    circuit = Circuit(int(payload["num_qubits"]), name=str(payload.get("name", "artifact")))
    for entry in payload["instructions"]:
        kind = entry.get("kind")
        qubits = tuple(int(qubit) for qubit in entry["qubits"])
        if kind == "gate":
            name = str(entry["name"])
            params = tuple(float(param) for param in entry.get("params", ()))
            if "matrix" in entry:
                matrix = _matrix_from_lists(entry["matrix"])
                operation = Gate(name, len(qubits), matrix, params)
            else:
                factory = glib.GATE_FACTORIES.get(name)
                if factory is None:
                    raise ValidationError(f"artifact names unknown gate {name!r}")
                operation = factory(*params)
        elif kind == "pgate":
            expressions = [
                ParameterExpression(
                    [(str(name), float(coeff)) for name, coeff in spec["terms"]],
                    float(spec.get("const", 0.0)),
                )
                for spec in entry["expressions"]
            ]
            operation = ParametricGate(
                str(entry["name"]),
                expressions,
                binding={str(k): float(v) for k, v in entry.get("binding", {}).items()},
                offsets=tuple(float(o) for o in entry.get("offsets", ())) or None,
            )
        elif kind == "noise":
            operation = KrausChannel(
                [_matrix_from_lists(rows) for rows in entry["kraus"]],
                name=str(entry.get("name", "channel")),
            )
        else:
            raise ValidationError(f"artifact instruction has unknown kind {kind!r}")
        circuit.append(operation, qubits)
    return circuit


def artifact_name(violation) -> str:
    """Deterministic file name for a violation's artifact.

    The detail hash keeps two violations of the same oracle on the same case
    (e.g. two disagreeing backends) from overwriting each other.
    """
    digest = hashlib.sha256(
        json.dumps(violation.details, sort_keys=True, default=str).encode()
    ).hexdigest()[:8]
    return f"{violation.oracle}-{violation.family}-case{violation.case_index}-{digest}.json"


def save_artifact(
    violation,
    directory: str | Path,
    shrunk_circuit: Circuit | None = None,
    passes: Any = True,
) -> Path:
    """Write one violation (plus its shrunk circuit, if any) as JSON.

    ``passes`` records the session's optimizing-pass configuration (a bool or
    the :meth:`repro.api.PassConfig.to_dict` mapping) so that
    :func:`replay_artifact` re-runs the check through the same pipeline the
    failure was observed in.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": ARTIFACT_SCHEMA,
        "oracle": violation.oracle,
        "family": violation.family,
        "case_index": violation.case_index,
        "workload_seed": violation.workload_seed,
        "deviation": violation.deviation,
        "tolerance": violation.tolerance,
        "details": violation.details,
        "passes": passes,
        "circuit": circuit_to_dict(violation.circuit),
    }
    if shrunk_circuit is not None:
        payload["shrunk_circuit"] = circuit_to_dict(shrunk_circuit)
    path = directory / artifact_name(violation)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_artifact(path: str | Path) -> Dict[str, Any]:
    """Read an artifact back; validates the schema marker."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ValidationError(f"cannot read artifact {path}: {exc}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"artifact {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != ARTIFACT_SCHEMA:
        schema = payload.get("schema") if isinstance(payload, dict) else None
        raise ValidationError(f"not a repro.verify artifact (schema={schema!r})")
    return payload


def replay_artifact(artifact: Mapping[str, Any] | str | Path, oracle=None) -> bool:
    """Re-run a recorded failure; True when it still reproduces.

    Replays the shrunk circuit when present (else the original), through a
    fresh default oracle of the recorded name — or ``oracle`` when the caller
    wants custom thresholds.
    """
    from repro.api import Session
    from repro.verify.oracles import DEFAULT_ORACLES

    if not isinstance(artifact, Mapping):
        artifact = load_artifact(artifact)
    if oracle is None:
        by_name = {candidate.name: candidate for candidate in DEFAULT_ORACLES()}
        oracle = by_name.get(artifact["oracle"])
        if oracle is None:
            raise ValidationError(f"unknown oracle {artifact['oracle']!r} in artifact")
    circuit = circuit_from_dict(artifact.get("shrunk_circuit") or artifact["circuit"])
    with Session(
        seed=int(artifact["workload_seed"]) % (2**31),
        passes=artifact.get("passes", True),
    ) as session:
        return bool(oracle.violates(circuit, dict(artifact["details"]), session))
