"""A small from-scratch tensor-network engine.

Replaces the Google TensorNetwork dependency used by the paper's reference
implementation: nodes wrapping dense numpy tensors, edges, pairwise
contraction with a configurable intermediate-size budget, greedy contraction
ordering, and builders that turn circuits into the diagrams of Sections III
and IV of the paper.
"""

from repro.tensornetwork.circuit_to_tn import (
    circuit_amplitude_network,
    noisy_doubled_network,
    noisy_observable_network,
    operator_amplitude_network,
    resolve_product_state,
    substituted_split_networks,
)
from repro.tensornetwork.network import ContractionMemoryError, TensorNetwork, contract_nodes
from repro.tensornetwork.node import Edge, Node, connect
from repro.tensornetwork.plan import ContractionPlan
from repro.tensornetwork.ordering import (
    contract_greedy,
    contract_sequential,
    estimate_contraction_cost,
    plan_greedy,
)

__all__ = [
    "TensorNetwork",
    "ContractionMemoryError",
    "ContractionPlan",
    "contract_nodes",
    "Node",
    "Edge",
    "connect",
    "contract_greedy",
    "contract_sequential",
    "plan_greedy",
    "estimate_contraction_cost",
    "circuit_amplitude_network",
    "noisy_doubled_network",
    "noisy_observable_network",
    "operator_amplitude_network",
    "substituted_split_networks",
    "resolve_product_state",
]
