"""Builders turning circuits into tensor networks.

Three diagrams are needed by the library:

1. ``circuit_amplitude_network`` — the ordinary (noiseless) amplitude
   ``⟨v| U_d … U_1 |ψ⟩`` as an ``n``-rail network.
2. ``noisy_doubled_network`` — the paper's Section-III diagram: a ``2n``-rail
   network in which every gate ``U`` appears twice (``U`` on the upper rails
   and ``U*`` on the mirrored lower rails) and every noise channel appears as
   its matrix representation ``M_E = Σ_k E_k ⊗ E_k*`` coupling upper and
   lower rails.  Contracting it yields ``⟨v| E_N(|ψ⟩⟨ψ|) |v⟩`` exactly.
3. ``substituted_split_networks`` — the diagrams used by Algorithm 1: when
   every noise is substituted by a Kronecker product ``U_i ⊗ V_i`` the doubled
   network falls apart into two independent ``n``-rail networks which are
   contracted separately and multiplied.

States are given either as bitstrings (``"0100"``), per-qubit vectors, or a
dense statevector.  Product-state forms keep every boundary tensor rank-1 so
the contraction stays cheap.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

from repro.circuits.circuit import Circuit
from repro.tensornetwork.network import TensorNetwork
from repro.utils.validation import ValidationError

from repro.xp import declare_seam
from repro.xp import host as np

declare_seam(__name__, mode="host")

__all__ = [
    "StateLike",
    "resolve_product_state",
    "dense_product_state",
    "operator_amplitude_network",
    "circuit_amplitude_network",
    "noisy_doubled_network",
    "noisy_observable_network",
    "substituted_split_networks",
]

#: Accepted state descriptions: bitstring, per-qubit vectors, or a dense vector.
StateLike = Union[str, Sequence[np.ndarray], np.ndarray]


def resolve_product_state(state: StateLike, num_qubits: int) -> List[np.ndarray] | np.ndarray:
    """Normalise a state description.

    Returns a list of per-qubit 2-vectors when the state is a product state
    (bitstring or explicit factor list) and a dense ``2**n`` vector otherwise.
    """
    if isinstance(state, str):
        if len(state) != num_qubits or any(c not in "01+-" for c in state):
            raise ValidationError(
                f"bitstring {state!r} is not a valid {num_qubits}-qubit product state "
                "(characters 0, 1, +, - allowed)"
            )
        lookup = {
            "0": np.array([1.0, 0.0], dtype=complex),
            "1": np.array([0.0, 1.0], dtype=complex),
            "+": np.array([1.0, 1.0], dtype=complex) / np.sqrt(2.0),
            "-": np.array([1.0, -1.0], dtype=complex) / np.sqrt(2.0),
        }
        return [lookup[c] for c in state]

    if isinstance(state, (list, tuple)) and len(state) == num_qubits and all(
        np.asarray(factor).size == 2 for factor in state
    ):
        return [np.asarray(factor, dtype=complex).ravel() for factor in state]

    dense = np.asarray(state, dtype=complex).ravel()
    if dense.size != 2**num_qubits:
        raise ValidationError(
            f"state of length {dense.size} does not match {num_qubits} qubits"
        )
    return dense


def dense_product_state(state: StateLike, num_qubits: int) -> np.ndarray:
    """Return ``state`` as a dense ``2**n`` vector (Kronecker product of factors)."""
    resolved = resolve_product_state(state, num_qubits)
    if isinstance(resolved, list):
        dense = np.array([1.0 + 0.0j])
        for factor in resolved:
            dense = np.kron(dense, factor)
        return dense
    return resolved


def _add_boundary(
    network: TensorNetwork,
    state: StateLike,
    num_qubits: int,
    conjugate: bool,
    label: str,
) -> List:
    """Add input/output boundary nodes and return one dangling edge per qubit."""
    resolved = resolve_product_state(state, num_qubits)
    edges = []
    if isinstance(resolved, list):
        for qubit, factor in enumerate(resolved):
            vec = factor.conj() if conjugate else factor
            node = network.add_node(vec, name=f"{label}{qubit}")
            edges.append(node.edges[0])
    else:
        vec = resolved.conj() if conjugate else resolved
        node = network.add_node(vec.reshape([2] * num_qubits), name=label)
        edges.extend(node.edges)
    return edges


def operator_amplitude_network(
    num_qubits: int,
    operations: Sequence[Tuple[np.ndarray, Sequence[int]]],
    input_state: StateLike,
    output_state: StateLike,
    name: str = "amplitude",
    max_intermediate_size: int | None = None,
) -> TensorNetwork:
    """Build the network for ``⟨v| O_d … O_1 |ψ⟩`` with arbitrary matrices ``O_i``.

    ``operations`` lists ``(matrix, qubits)`` pairs in application order; the
    matrices need not be unitary (the approximation algorithm inserts the SVD
    factors ``U_i``/``V_i`` here).
    """
    network = TensorNetwork(name=name, max_intermediate_size=max_intermediate_size)
    open_edges = _add_boundary(network, input_state, num_qubits, conjugate=False, label="in")

    for op_index, (matrix, qubits) in enumerate(operations):
        qubits = [int(q) for q in qubits]
        k = len(qubits)
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.shape != (2**k, 2**k):
            raise ValidationError(
                f"operation {op_index} has shape {matrix.shape}, expected {(2**k, 2**k)}"
            )
        for q in qubits:
            if not 0 <= q < num_qubits:
                raise ValidationError(f"operation {op_index} touches invalid qubit {q}")
        node = network.add_node(matrix.reshape([2] * (2 * k)), name=f"op{op_index}")
        for j, qubit in enumerate(qubits):
            network.connect(node.edges[k + j], open_edges[qubit])
            open_edges[qubit] = node.edges[j]

    output_edges = _add_boundary(network, output_state, num_qubits, conjugate=True, label="out")
    for qubit in range(num_qubits):
        network.connect(output_edges[qubit], open_edges[qubit])
    return network


def circuit_amplitude_network(
    circuit: Circuit,
    input_state: StateLike,
    output_state: StateLike,
    max_intermediate_size: int | None = None,
) -> TensorNetwork:
    """Amplitude network ``⟨v| C |ψ⟩`` for a noiseless circuit ``C``."""
    if not circuit.is_noiseless():
        raise ValidationError(
            "circuit_amplitude_network only handles noiseless circuits; "
            "use noisy_doubled_network for noisy ones"
        )
    operations = [(inst.operation.matrix, inst.qubits) for inst in circuit]
    return operator_amplitude_network(
        circuit.num_qubits,
        operations,
        input_state,
        output_state,
        name=f"{circuit.name}_amplitude",
        max_intermediate_size=max_intermediate_size,
    )


def noisy_doubled_network(
    circuit: Circuit,
    input_state: StateLike,
    output_state: StateLike,
    max_intermediate_size: int | None = None,
) -> TensorNetwork:
    """The paper's doubled (``2n``-qubit) diagram for ``⟨v| E_N(|ψ⟩⟨ψ|) |v⟩``.

    Upper rails ``0..n-1`` carry the original circuit, lower rails ``n..2n-1``
    carry the conjugated circuit, and each noise channel becomes a single
    ``M_E`` node straddling the corresponding upper/lower rails.
    """
    n = circuit.num_qubits
    operations: List[Tuple[np.ndarray, List[int]]] = []
    for inst in circuit:
        qubits = list(inst.qubits)
        mirrored = [q + n for q in qubits]
        if inst.is_gate:
            matrix = inst.operation.matrix
            operations.append((matrix, qubits))
            operations.append((matrix.conj(), mirrored))
        else:
            m_e = inst.operation.matrix_representation()
            operations.append((m_e, qubits + mirrored))

    doubled_input = _double_state(input_state, n)
    doubled_output = _double_state(output_state, n)
    return operator_amplitude_network(
        2 * n,
        operations,
        doubled_input,
        doubled_output,
        name=f"{circuit.name}_doubled",
        max_intermediate_size=max_intermediate_size,
    )


def noisy_observable_network(
    circuit: Circuit,
    input_state: StateLike,
    observable_ops: Dict[int, np.ndarray] | None = None,
    max_intermediate_size: int | None = None,
) -> TensorNetwork:
    """Doubled diagram evaluating ``tr(O · E_N(|ψ⟩⟨ψ|))`` for a product observable.

    ``observable_ops`` maps qubits to single-qubit operators; unlisted qubits
    carry the identity (i.e. they are traced out).  The output boundary of
    each qubit is a single rank-2 node ``B_i[r, c] = O_i[c, r]`` connecting
    the qubit's upper (row) and lower (column) rails, which closes the trace.

    This extends the paper's diagram from fidelities ``⟨v|E_N(ρ)|v⟩`` to
    expectation values of local observables (e.g. the QAOA cost Hamiltonian
    under noise) without reconstructing any density matrix.
    """
    observable_ops = observable_ops or {}
    n = circuit.num_qubits
    for qubit, op in observable_ops.items():
        if not 0 <= int(qubit) < n:
            raise ValidationError(f"observable touches invalid qubit {qubit}")
        if np.asarray(op).shape != (2, 2):
            raise ValidationError("observable factors must be single-qubit (2x2) operators")

    network = TensorNetwork(
        name=f"{circuit.name}_observable", max_intermediate_size=max_intermediate_size
    )
    resolved = resolve_product_state(input_state, n)
    if isinstance(resolved, list):
        doubled_input: StateLike = resolved + [factor.conj() for factor in resolved]
    else:
        doubled_input = np.kron(resolved, resolved.conj())

    open_edges = _add_boundary(network, doubled_input, 2 * n, conjugate=False, label="in")

    op_index = 0
    for inst in circuit:
        qubits = list(inst.qubits)
        mirrored = [q + n for q in qubits]
        if inst.is_gate:
            matrices = [(inst.operation.matrix, qubits), (inst.operation.matrix.conj(), mirrored)]
        else:
            matrices = [(inst.operation.matrix_representation(), qubits + mirrored)]
        for matrix, target_qubits in matrices:
            k = len(target_qubits)
            node = network.add_node(
                np.asarray(matrix, dtype=complex).reshape([2] * (2 * k)), name=f"op{op_index}"
            )
            op_index += 1
            for j, qubit in enumerate(target_qubits):
                network.connect(node.edges[k + j], open_edges[qubit])
                open_edges[qubit] = node.edges[j]

    for qubit in range(n):
        operator = np.asarray(observable_ops.get(qubit, np.eye(2)), dtype=complex)
        boundary = network.add_node(operator.T, name=f"obs{qubit}")
        network.connect(boundary.edges[0], open_edges[qubit])
        network.connect(boundary.edges[1], open_edges[qubit + n])
    return network


def _double_state(state: StateLike, num_qubits: int) -> StateLike:
    """Return the doubled boundary state ``|ψ⟩ ⊗ |ψ*⟩`` in the cheapest representation."""
    resolved = resolve_product_state(state, num_qubits)
    if isinstance(resolved, list):
        return resolved + [factor.conj() for factor in resolved]
    return np.kron(resolved, resolved.conj())


def substituted_split_networks(
    circuit: Circuit,
    substitution: Dict[int, Tuple[np.ndarray, np.ndarray]],
    input_state: StateLike,
    output_state: StateLike,
    max_intermediate_size: int | None = None,
) -> Tuple[TensorNetwork, TensorNetwork]:
    """Build the two independent ``n``-rail networks of a fully substituted term.

    ``substitution`` maps the *noise occurrence index* (0-based position among
    the circuit's noise instructions, in order) to a pair ``(U, V)`` so that
    the noise's matrix representation is replaced by ``U ⊗ V``.  Every noise
    occurrence must be substituted — that is what makes the doubled diagram
    factorise into the upper network (⟨v| … U … |ψ⟩) and the lower network
    (⟨v*| … V … |ψ*⟩).
    """
    upper_ops: List[Tuple[np.ndarray, Tuple[int, ...]]] = []
    lower_ops: List[Tuple[np.ndarray, Tuple[int, ...]]] = []
    noise_index = 0
    for inst in circuit:
        if inst.is_gate:
            upper_ops.append((inst.operation.matrix, inst.qubits))
            lower_ops.append((inst.operation.matrix.conj(), inst.qubits))
        else:
            if noise_index not in substitution:
                raise ValidationError(
                    f"noise occurrence {noise_index} has no substitution; "
                    "all noises must be substituted to split the diagram"
                )
            upper_matrix, lower_matrix = substitution[noise_index]
            upper_ops.append((np.asarray(upper_matrix, dtype=complex), inst.qubits))
            lower_ops.append((np.asarray(lower_matrix, dtype=complex), inst.qubits))
            noise_index += 1
    if noise_index != len(substitution):
        raise ValidationError(
            f"substitution has {len(substitution)} entries but the circuit has "
            f"{noise_index} noise occurrences"
        )

    upper = operator_amplitude_network(
        circuit.num_qubits,
        upper_ops,
        input_state,
        output_state,
        name=f"{circuit.name}_upper",
        max_intermediate_size=max_intermediate_size,
    )
    resolved_in = resolve_product_state(input_state, circuit.num_qubits)
    resolved_out = resolve_product_state(output_state, circuit.num_qubits)
    conj_in = (
        [f.conj() for f in resolved_in] if isinstance(resolved_in, list) else resolved_in.conj()
    )
    conj_out = (
        [f.conj() for f in resolved_out] if isinstance(resolved_out, list) else resolved_out.conj()
    )
    lower = operator_amplitude_network(
        circuit.num_qubits,
        lower_ops,
        conj_in,
        conj_out,
        name=f"{circuit.name}_lower",
        max_intermediate_size=max_intermediate_size,
    )
    return upper, lower
