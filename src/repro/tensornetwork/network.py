"""Tensor network container and pairwise contraction."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.tensornetwork.node import Edge, Node, connect
from repro.utils.validation import ValidationError

from repro.xp import declare_seam
from repro.xp import host as np

declare_seam(__name__, mode="host")

__all__ = ["TensorNetwork", "ContractionMemoryError", "contract_nodes"]


class ContractionMemoryError(MemoryError):
    """Raised when a contraction would exceed the configured intermediate-size budget.

    The benchmark harness catches this to report "MO" (memory out) entries,
    mirroring the MO cells of the paper's Table II.
    """


def contract_nodes(node_a: Node, node_b: Node, name: str | None = None) -> Node:
    """Contract all shared edges between two nodes and return the result node.

    The result's edges are the remaining edges of ``node_a`` (in axis order)
    followed by the remaining edges of ``node_b``; edge objects are re-pointed
    at the new node so the rest of the network stays consistent.
    """
    if node_a is node_b:
        raise ValidationError("self-contraction (trace) is not supported")
    shared: List[Edge] = []
    for edge in node_a.edges:
        if not edge.is_dangling and edge.other(node_a) is node_b and edge not in shared:
            shared.append(edge)

    axes_a = [edge.axis_of(node_a) for edge in shared]
    axes_b = [edge.axis_of(node_b) for edge in shared]
    if shared:
        tensor = np.tensordot(node_a.tensor, node_b.tensor, axes=(axes_a, axes_b))
    else:
        tensor = np.tensordot(node_a.tensor, node_b.tensor, axes=0)

    result = Node(tensor, name=name or f"({node_a.name}*{node_b.name})")
    remaining_a = [edge for axis, edge in enumerate(node_a.edges) if axis not in axes_a]
    remaining_b = [edge for axis, edge in enumerate(node_b.edges) if axis not in axes_b]
    new_edges = remaining_a + remaining_b
    for new_axis, edge in enumerate(new_edges):
        if edge.node1 is node_a or edge.node1 is node_b:
            edge.node1 = result
            edge.axis1 = new_axis
        elif edge.node2 is node_a or edge.node2 is node_b:
            edge.node2 = result
            edge.axis2 = new_axis
        else:  # pragma: no cover - defensive
            raise ValidationError("inconsistent edge bookkeeping during contraction")
    result.edges = new_edges
    return result


class TensorNetwork:
    """A collection of nodes with shared edges.

    The network owns its nodes; :meth:`contract` destroys the node structure
    (it repeatedly merges nodes), so build a fresh network per evaluation —
    which is what all simulator front-ends in this library do.
    """

    def __init__(self, name: str = "network", max_intermediate_size: int | None = None) -> None:
        self.name = name
        self.nodes: List[Node] = []
        #: Maximum number of entries allowed in any intermediate tensor.  None
        #: disables the check.
        self.max_intermediate_size = max_intermediate_size
        #: Optional callback ``observer(network, node_a, node_b)`` invoked
        #: before every pairwise contraction; used by
        #: :class:`repro.tensornetwork.plan.ContractionPlan` to record schedules.
        self.observer = None

    # ------------------------------------------------------------------
    def add_node(self, tensor: np.ndarray, name: str | None = None) -> Node:
        """Wrap ``tensor`` in a node and add it to the network."""
        node = Node(tensor, name=name)
        self.nodes.append(node)
        return node

    def add(self, node: Node) -> Node:
        """Add an existing node to the network."""
        self.nodes.append(node)
        return node

    def connect(self, edge_a: Edge, edge_b: Edge, name: str | None = None) -> Edge:
        """Connect two dangling edges of nodes in this network."""
        return connect(edge_a, edge_b, name=name)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes currently in the network."""
        return len(self.nodes)

    def dangling_edges(self) -> List[Edge]:
        """All dangling edges of the network, in node insertion order."""
        edges: List[Edge] = []
        for node in self.nodes:
            edges.extend(node.dangling_edges())
        return edges

    def total_size(self) -> int:
        """Sum of entries over all node tensors (a coarse memory estimate)."""
        return sum(node.size for node in self.nodes)

    # ------------------------------------------------------------------
    def _check_budget(self, size: int) -> None:
        if self.max_intermediate_size is not None and size > self.max_intermediate_size:
            raise ContractionMemoryError(
                f"intermediate tensor with {size} entries exceeds the budget of "
                f"{self.max_intermediate_size} entries"
            )

    def contract_pair(self, node_a: Node, node_b: Node) -> Node:
        """Contract two member nodes and replace them with the result."""
        if node_a not in self.nodes or node_b not in self.nodes:
            raise ValidationError("both nodes must belong to this network")
        if self.observer is not None:
            self.observer(self, node_a, node_b)
        shared_axes = sum(
            1
            for edge in node_a.edges
            if not edge.is_dangling and edge.other(node_a) is node_b
        )
        result_size = (node_a.size * node_b.size) // max(4**shared_axes // 1, 1)
        # The size estimate above assumes each shared edge has dimension 2 on
        # both sides; compute the exact value instead to keep the budget honest.
        shared_dim = 1
        for edge in node_a.edges:
            if not edge.is_dangling and edge.other(node_a) is node_b:
                shared_dim *= edge.dimension
        result_size = (node_a.size // shared_dim) * (node_b.size // shared_dim)
        self._check_budget(result_size)
        result = contract_nodes(node_a, node_b)
        self.nodes.remove(node_a)
        self.nodes.remove(node_b)
        self.nodes.append(result)
        return result

    def contract(
        self,
        order: Optional[Sequence[tuple]] = None,
        strategy: str = "greedy",
        output_edge_order: Optional[Sequence[Edge]] = None,
    ) -> np.ndarray:
        """Contract the whole network down to a single tensor.

        Parameters
        ----------
        order:
            Explicit list of node pairs to contract, as produced by the
            ordering heuristics.  When omitted, ``strategy`` selects one of the
            heuristics in :mod:`repro.tensornetwork.ordering`.
        strategy:
            ``"greedy"`` (default) or ``"sequential"``.
        output_edge_order:
            Optional ordering of the remaining dangling edges for the final
            transpose.
        """
        from repro.tensornetwork import ordering as ordering_mod

        if not self.nodes:
            raise ValidationError("cannot contract an empty network")

        if order is not None:
            for node_a, node_b in order:
                self.contract_pair(node_a, node_b)
        else:
            if strategy == "greedy":
                ordering_mod.contract_greedy(self)
            elif strategy == "sequential":
                ordering_mod.contract_sequential(self)
            else:
                raise ValidationError(f"unknown contraction strategy {strategy!r}")

        # Combine any disconnected components with outer products.
        while len(self.nodes) > 1:
            node_a, node_b = self.nodes[0], self.nodes[1]
            self.contract_pair(node_a, node_b)

        final = self.nodes[0]
        if output_edge_order is not None:
            if len(output_edge_order) != final.rank:
                raise ValidationError(
                    "output_edge_order must list every remaining dangling edge"
                )
            perm = [final.edges.index(edge) for edge in output_edge_order]
            tensor = np.transpose(final.tensor, perm)
        else:
            tensor = final.tensor
        return tensor

    def contract_to_scalar(self, strategy: str = "greedy") -> complex:
        """Contract a network with no dangling edges to a complex number."""
        tensor = self.contract(strategy=strategy)
        if tensor.size != 1:
            raise ValidationError(
                f"network does not contract to a scalar (residual shape {tensor.shape})"
            )
        return complex(tensor.reshape(()))
