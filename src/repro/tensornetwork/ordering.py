"""Contraction-order heuristics.

The efficiency of tensor-network simulation is dominated by the order in
which nodes are contracted (the paper notes this for its TN-based baseline).
Three strategies are provided:

* ``contract_greedy`` — repeatedly contract the connected pair whose result
  tensor is smallest (ties broken by the largest immediate size reduction).
  This is the default everywhere and is the same flavour of heuristic the
  Google TensorNetwork / opt_einsum "greedy" path uses.
* ``contract_sequential`` — contract nodes in insertion order; cheap to plan
  but can build huge intermediates.  Used as the ablation baseline.
* ``plan_greedy`` — return the greedy plan (list of node pairs) without
  executing it, for inspection and cost estimation.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.tensornetwork.network import TensorNetwork
from repro.tensornetwork.node import Node

from repro.xp import declare_seam
from repro.xp import host as np

declare_seam(__name__, mode="host")

__all__ = [
    "contract_greedy",
    "contract_sequential",
    "plan_greedy",
    "estimate_contraction_cost",
]


def _pair_result_size(node_a: Node, node_b: Node) -> int:
    """Size (entry count) of the tensor produced by contracting the pair."""
    shared_dim = 1
    for edge in node_a.edges:
        if not edge.is_dangling and edge.other(node_a) is node_b:
            shared_dim *= edge.dimension
    return (node_a.size // shared_dim) * (node_b.size // shared_dim)


def _connected_pairs(network: TensorNetwork) -> List[Tuple[Node, Node]]:
    pairs: List[Tuple[Node, Node]] = []
    seen: set[tuple[int, int]] = set()
    for node in network.nodes:
        for neighbour in node.neighbours():
            key = (min(node.id, neighbour.id), max(node.id, neighbour.id))
            if key not in seen:
                seen.add(key)
                pairs.append((node, neighbour))
    return pairs


def contract_greedy(network: TensorNetwork) -> None:
    """Contract all connected pairs using the greedy smallest-result heuristic."""
    while True:
        pairs = _connected_pairs(network)
        if not pairs:
            return
        best = None
        best_key = None
        for node_a, node_b in pairs:
            result_size = _pair_result_size(node_a, node_b)
            reduction = node_a.size + node_b.size - result_size
            key = (result_size, -reduction)
            if best_key is None or key < best_key:
                best_key = key
                best = (node_a, node_b)
        network.contract_pair(*best)


def contract_sequential(network: TensorNetwork) -> None:
    """Contract nodes in insertion order (ablation baseline)."""
    while True:
        target = None
        for node in network.nodes:
            neighbours = node.neighbours()
            if neighbours:
                target = (node, neighbours[0])
                break
        if target is None:
            return
        network.contract_pair(*target)


def plan_greedy(network: TensorNetwork) -> List[Tuple[str, str, int]]:
    """Return the greedy contraction plan as (name_a, name_b, result_size) triples.

    The plan is computed on a simulated copy of the node sizes; the network is
    left untouched.
    """
    # Simulate with lightweight records: (id, name, size, {neighbour_id: shared_dim}).
    sizes = {node.id: node.size for node in network.nodes}
    names = {node.id: node.name for node in network.nodes}
    adjacency: dict[int, dict[int, int]] = {node.id: {} for node in network.nodes}
    for node in network.nodes:
        for edge in node.connected_edges():
            other = edge.other(node)
            adjacency[node.id][other.id] = adjacency[node.id].get(other.id, 1) * edge.dimension

    plan: List[Tuple[str, str, int]] = []
    while True:
        best = None
        best_key = None
        for a, neighbours in adjacency.items():
            for b, shared in neighbours.items():
                if a >= b:
                    continue
                result_size = (sizes[a] // shared) * (sizes[b] // shared)
                reduction = sizes[a] + sizes[b] - result_size
                key = (result_size, -reduction)
                if best_key is None or key < best_key:
                    best_key = key
                    best = (a, b, result_size)
        if best is None:
            return plan
        a, b, result_size = best
        plan.append((names[a], names[b], result_size))
        # Merge b into a.
        merged_name = f"({names[a]}*{names[b]})"
        new_neighbours: dict[int, int] = {}
        for nid, dim in adjacency[a].items():
            if nid != b:
                new_neighbours[nid] = new_neighbours.get(nid, 1) * dim
        for nid, dim in adjacency[b].items():
            if nid != a:
                new_neighbours[nid] = new_neighbours.get(nid, 1) * dim
        for nid in list(adjacency):
            adjacency[nid].pop(a, None)
            adjacency[nid].pop(b, None)
        del adjacency[b], sizes[b], names[b]
        adjacency[a] = new_neighbours
        for nid, dim in new_neighbours.items():
            adjacency[nid][a] = dim
        sizes[a] = result_size
        names[a] = merged_name


def estimate_contraction_cost(network: TensorNetwork) -> int:
    """Estimate the peak intermediate tensor size of the greedy plan."""
    plan = plan_greedy(network)
    if not plan:
        return max((node.size for node in network.nodes), default=0)
    return max(size for _, _, size in plan)
