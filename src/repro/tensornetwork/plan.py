"""Reusable contraction plans.

The greedy ordering heuristic decides which node pair to contract from tensor
*sizes* only, so two networks with the same topology and the same tensor
shapes contract in the same order regardless of the tensor values.  The
batched trajectory engine exploits this: every trajectory of a fixed circuit
produces the same network topology (only the sampled Kraus tensor values
change), so the ordering work and all node/edge bookkeeping can be paid once
and replayed per trajectory as a flat sequence of ``np.tensordot`` calls.

:meth:`ContractionPlan.record` contracts a template network while recording
each pairwise step positionally (via the :attr:`TensorNetwork.observer`
hook); :meth:`ContractionPlan.execute` replays the recorded schedule over a
plain list of tensors.

When only a known subset of inputs varies between replays (the sampled Kraus
tensors of a trajectory, the substituted SVD factors of an approximation
term), :meth:`ContractionPlan.specialize` partially evaluates the plan over
the static inputs once — every contraction whose operands are (transitively)
independent of the variable positions is computed at specialisation time —
leaving a :class:`SpecializedPlan` that replays only the residual,
variable-dependent steps.  The residual performs the *same* ``tensordot``
calls in the *same* order as a full replay, so the value is bit-identical;
the static prefix is simply paid once instead of per call.

Plans are recorded over whatever circuit the session hands the backend —
since the optimizing passes (:mod:`repro.circuits.passes`) run before plan
construction, a recorded schedule covers the *optimized* network (fewer
nodes after fusion/folding/pruning), and the plan-cache key is derived from
that circuit's fingerprint.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

from repro.tensornetwork.network import TensorNetwork
from repro.utils.validation import ValidationError
from repro.xp import declare_seam, get_namespace
from repro.xp import host as np

declare_seam(__name__, mode="dispatch")

__all__ = ["ContractionPlan", "SpecializedPlan"]

#: One replay step: positions of the two operands in the evolving tensor list
#: plus the contracted axes of each (empty axes = outer product).
_Step = Tuple[int, int, Tuple[int, ...], Tuple[int, ...]]

#: One slot-program step: input slots ``a``/``b``, their contracted axes, and
#: the output slot the result lands in (slots never move, unlike positions).
_SlotStep = Tuple[int, int, Tuple[int, ...], Tuple[int, ...], int]


class ContractionPlan:
    """A recorded pairwise contraction schedule, replayable on fresh tensors."""

    def __init__(
        self,
        steps: List[_Step],
        num_inputs: int,
        peak_intermediate_entries: int = 0,
    ) -> None:
        self.steps = steps
        #: Number of tensors the plan expects (the template's node count).
        self.num_inputs = num_inputs
        #: Entry count of the largest intermediate the schedule produces
        #: (recorded at planning time; the replay cost estimate).
        self.peak_intermediate_entries = peak_intermediate_entries

    @property
    def num_steps(self) -> int:
        """Number of pairwise contractions the plan replays."""
        return len(self.steps)

    def describe(self) -> dict:
        """Plan-cost summary (what :meth:`repro.api.Executable.describe` reports)."""
        return {
            "num_inputs": self.num_inputs,
            "num_steps": self.num_steps,
            "peak_intermediate_entries": self.peak_intermediate_entries,
        }

    # ------------------------------------------------------------------
    @classmethod
    def record(cls, network: TensorNetwork, strategy: str = "greedy") -> Tuple["ContractionPlan", complex]:
        """Contract ``network`` to a scalar, recording the schedule.

        Returns ``(plan, value)`` where ``value`` is the template's own
        contraction result.  The network is consumed (contraction is
        destructive), so callers must snapshot node tensors beforehand if they
        want to replay with partially swapped values.
        """
        num_inputs = network.num_nodes
        steps: List[_Step] = []
        peak = [0]

        def observer(net: TensorNetwork, node_a, node_b) -> None:
            position_a = net.nodes.index(node_a)
            position_b = net.nodes.index(node_b)
            shared = []
            for edge in node_a.edges:
                if not edge.is_dangling and edge.other(node_a) is node_b and edge not in shared:
                    shared.append(edge)
            shared_dim = 1
            for edge in shared:
                shared_dim *= edge.dimension
            peak[0] = max(
                peak[0], (node_a.size // shared_dim) * (node_b.size // shared_dim)
            )
            steps.append(
                (
                    position_a,
                    position_b,
                    tuple(edge.axis_of(node_a) for edge in shared),
                    tuple(edge.axis_of(node_b) for edge in shared),
                )
            )

        network.observer = observer
        try:
            value = network.contract_to_scalar(strategy=strategy)
        finally:
            network.observer = None
        return cls(steps, num_inputs, peak_intermediate_entries=peak[0]), value

    # ------------------------------------------------------------------
    def execute(self, tensors: List[np.ndarray], xp=None) -> complex:
        """Replay the schedule over ``tensors`` and return the scalar result.

        ``tensors`` must match the template's node order and shapes; only the
        values may differ (device arrays of ``xp`` when a namespace is given).
        Mirrors ``contract_pair``'s list evolution (remove both operands,
        append the result) so the recorded positions stay valid.
        """
        if xp is None:
            xp = get_namespace("cpu")
        if len(tensors) != self.num_inputs:
            raise ValidationError(
                f"plan expects {self.num_inputs} tensors, got {len(tensors)}"
            )
        arrays = list(tensors)
        for position_a, position_b, axes_a, axes_b in self.steps:
            result = _contract_step(arrays[position_a], arrays[position_b], axes_a, axes_b, xp)
            for position in sorted((position_a, position_b), reverse=True):
                del arrays[position]
            arrays.append(result)
        if len(arrays) != 1 or arrays[0].size != 1:
            raise ValidationError("plan did not reduce the network to a scalar")
        return complex(xp.to_scalar(arrays[0]))

    # ------------------------------------------------------------------
    def _slot_program(self) -> List[_SlotStep]:
        """The positional steps re-expressed over stable slot indices.

        Simulates the evolving-list semantics of :meth:`execute` once, so
        step ``i``'s operands become fixed slots (inputs ``0..num_inputs-1``,
        intermediates ``num_inputs + i``) that partial evaluation can reason
        about without replaying list mutations.
        """
        slots = list(range(self.num_inputs))
        program: List[_SlotStep] = []
        for index, (position_a, position_b, axes_a, axes_b) in enumerate(self.steps):
            slot_a = slots[position_a]
            slot_b = slots[position_b]
            for position in sorted((position_a, position_b), reverse=True):
                del slots[position]
            out = self.num_inputs + index
            slots.append(out)
            program.append((slot_a, slot_b, axes_a, axes_b, out))
        return program

    def specialize(
        self,
        tensors: Sequence[np.ndarray],
        variable_positions: Sequence[int],
    ) -> "SpecializedPlan":
        """Partially evaluate the plan over every input *not* in ``variable_positions``.

        ``tensors`` supplies the static input values (entries at variable
        positions are ignored); the returned :class:`SpecializedPlan` accepts
        fresh values for the variable positions per call and replays only the
        steps that depend on them.
        """
        if len(tensors) != self.num_inputs:
            raise ValidationError(
                f"plan expects {self.num_inputs} tensors, got {len(tensors)}"
            )
        variable = {int(position) for position in variable_positions}
        unknown = sorted(position for position in variable if not 0 <= position < self.num_inputs)
        if unknown:
            raise ValidationError(f"variable positions {unknown} out of range")
        program = self._slot_program()
        total = self.num_inputs + len(program)
        baked: List[np.ndarray | None] = [None] * total
        static = [True] * total
        for position in range(self.num_inputs):
            if position in variable:
                static[position] = False
            else:
                baked[position] = tensors[position]
        residual: List[_SlotStep] = []
        for slot_a, slot_b, axes_a, axes_b, out in program:
            if static[slot_a] and static[slot_b]:
                baked[out] = _contract_step(baked[slot_a], baked[slot_b], axes_a, axes_b, None)
            else:
                static[out] = False
                residual.append((slot_a, slot_b, axes_a, axes_b, out))
        result_slot = total - 1 if program else 0
        return SpecializedPlan(baked, residual, sorted(variable), result_slot)


class SpecializedPlan:
    """A partially evaluated :class:`ContractionPlan` (see :meth:`ContractionPlan.specialize`).

    Static intermediates are baked in; :meth:`execute` substitutes the
    variable inputs and replays only the residual steps.  Values are
    bit-identical to a full :meth:`ContractionPlan.execute` replay with the
    same inputs.
    """

    __slots__ = ("_baked", "_residual", "variable_positions", "_result_slot", "_device_baked")

    def __init__(
        self,
        baked: List[np.ndarray | None],
        residual: List[_SlotStep],
        variable_positions: List[int],
        result_slot: int,
    ) -> None:
        self._baked = baked
        self._residual = residual
        self.variable_positions = variable_positions
        self._result_slot = result_slot
        #: Per-namespace device copies of the baked tensors, transferred once
        #: on the first device execute (only the small variable Kraus tensors
        #: move per call; see BatchedTrajectoryEngine._run_tn).
        self._device_baked: dict = {}

    def _baked_for(self, xp) -> List:
        if xp is None or xp.device == "cpu":
            return self._baked
        cached = self._device_baked.get(xp.name)
        if cached is None:
            cached = [
                None if tensor is None else xp.asarray(tensor)
                for tensor in self._baked
            ]
            self._device_baked[xp.name] = cached
        return cached

    @property
    def num_residual_steps(self) -> int:
        """Contractions actually replayed per call (the rest are baked)."""
        return len(self._residual)

    def execute(self, substitutions: Mapping[int, np.ndarray], xp=None) -> complex:
        """Return the scalar for the given variable-input values.

        ``substitutions`` maps every variable input position to its tensor
        for this call (shapes must match the template's; device arrays of
        ``xp`` when a namespace is given — the baked static intermediates are
        transferred to that device once and cached).
        """
        buffer = list(self._baked_for(xp))
        for position in self.variable_positions:
            tensor = substitutions.get(position)
            if tensor is None:
                raise ValidationError(
                    f"missing substitution for variable input {position}"
                )
            buffer[position] = tensor
        for slot_a, slot_b, axes_a, axes_b, out in self._residual:
            buffer[out] = _contract_step(buffer[slot_a], buffer[slot_b], axes_a, axes_b, xp)
        result = buffer[self._result_slot]
        if result is None or result.size != 1:
            raise ValidationError("plan did not reduce the network to a scalar")
        if xp is None:
            return complex(result.reshape(()))
        return complex(xp.to_scalar(result))


def _contract_step(
    tensor_a: np.ndarray,
    tensor_b: np.ndarray,
    axes_a: Tuple[int, ...],
    axes_b: Tuple[int, ...],
    xp=None,
) -> np.ndarray:
    axes = (list(axes_a), list(axes_b)) if axes_a else 0
    if xp is None:
        return np.tensordot(tensor_a, tensor_b, axes=axes)
    return xp.tensordot(tensor_a, tensor_b, axes=axes)
