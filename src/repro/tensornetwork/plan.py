"""Reusable contraction plans.

The greedy ordering heuristic decides which node pair to contract from tensor
*sizes* only, so two networks with the same topology and the same tensor
shapes contract in the same order regardless of the tensor values.  The
batched trajectory engine exploits this: every trajectory of a fixed circuit
produces the same network topology (only the sampled Kraus tensor values
change), so the ordering work and all node/edge bookkeeping can be paid once
and replayed per trajectory as a flat sequence of ``np.tensordot`` calls.

:meth:`ContractionPlan.record` contracts a template network while recording
each pairwise step positionally (via the :attr:`TensorNetwork.observer`
hook); :meth:`ContractionPlan.execute` replays the recorded schedule over a
plain list of tensors.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.tensornetwork.network import TensorNetwork
from repro.utils.validation import ValidationError

__all__ = ["ContractionPlan"]

#: One replay step: positions of the two operands in the evolving tensor list
#: plus the contracted axes of each (empty axes = outer product).
_Step = Tuple[int, int, Tuple[int, ...], Tuple[int, ...]]


class ContractionPlan:
    """A recorded pairwise contraction schedule, replayable on fresh tensors."""

    def __init__(self, steps: List[_Step], num_inputs: int) -> None:
        self.steps = steps
        #: Number of tensors the plan expects (the template's node count).
        self.num_inputs = num_inputs

    # ------------------------------------------------------------------
    @classmethod
    def record(cls, network: TensorNetwork, strategy: str = "greedy") -> Tuple["ContractionPlan", complex]:
        """Contract ``network`` to a scalar, recording the schedule.

        Returns ``(plan, value)`` where ``value`` is the template's own
        contraction result.  The network is consumed (contraction is
        destructive), so callers must snapshot node tensors beforehand if they
        want to replay with partially swapped values.
        """
        num_inputs = network.num_nodes
        steps: List[_Step] = []

        def observer(net: TensorNetwork, node_a, node_b) -> None:
            position_a = net.nodes.index(node_a)
            position_b = net.nodes.index(node_b)
            shared = []
            for edge in node_a.edges:
                if not edge.is_dangling and edge.other(node_a) is node_b and edge not in shared:
                    shared.append(edge)
            steps.append(
                (
                    position_a,
                    position_b,
                    tuple(edge.axis_of(node_a) for edge in shared),
                    tuple(edge.axis_of(node_b) for edge in shared),
                )
            )

        network.observer = observer
        try:
            value = network.contract_to_scalar(strategy=strategy)
        finally:
            network.observer = None
        return cls(steps, num_inputs), value

    # ------------------------------------------------------------------
    def execute(self, tensors: List[np.ndarray]) -> complex:
        """Replay the schedule over ``tensors`` and return the scalar result.

        ``tensors`` must match the template's node order and shapes; only the
        values may differ.  Mirrors ``contract_pair``'s list evolution (remove
        both operands, append the result) so the recorded positions stay valid.
        """
        if len(tensors) != self.num_inputs:
            raise ValidationError(
                f"plan expects {self.num_inputs} tensors, got {len(tensors)}"
            )
        arrays = list(tensors)
        for position_a, position_b, axes_a, axes_b in self.steps:
            tensor_a = arrays[position_a]
            tensor_b = arrays[position_b]
            if axes_a:
                result = np.tensordot(tensor_a, tensor_b, axes=(list(axes_a), list(axes_b)))
            else:
                result = np.tensordot(tensor_a, tensor_b, axes=0)
            for position in sorted((position_a, position_b), reverse=True):
                del arrays[position]
            arrays.append(result)
        if len(arrays) != 1 or arrays[0].size != 1:
            raise ValidationError("plan did not reduce the network to a scalar")
        return complex(arrays[0].reshape(()))
