"""Nodes and edges of a tensor network.

The engine is deliberately small: a :class:`Node` wraps a dense numpy tensor
and labels each axis with an :class:`Edge`.  Edges are either *dangling*
(free indices of the network) or connect exactly two node axes of equal
dimension.  This is the same model exposed by the Google TensorNetwork
package the paper uses; only the features needed for circuit simulation are
implemented.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

from repro.utils.validation import ValidationError

from repro.xp import declare_seam
from repro.xp import host as np

declare_seam(__name__, mode="host")

__all__ = ["Edge", "Node"]

_edge_counter = itertools.count()
_node_counter = itertools.count()


class Edge:
    """A (possibly dangling) index shared by at most two node axes."""

    __slots__ = ("id", "name", "node1", "axis1", "node2", "axis2")

    def __init__(
        self,
        node1: "Node",
        axis1: int,
        node2: Optional["Node"] = None,
        axis2: Optional[int] = None,
        name: str | None = None,
    ) -> None:
        self.id = next(_edge_counter)
        self.name = name or f"edge{self.id}"
        self.node1 = node1
        self.axis1 = int(axis1)
        self.node2 = node2
        self.axis2 = None if axis2 is None else int(axis2)

    @property
    def is_dangling(self) -> bool:
        """True when the edge has only one endpoint."""
        return self.node2 is None

    @property
    def dimension(self) -> int:
        """Dimension of the index the edge labels."""
        return self.node1.tensor.shape[self.axis1]

    def other(self, node: "Node") -> Optional["Node"]:
        """Return the endpoint that is not ``node`` (or None for dangling edges)."""
        if node is self.node1:
            return self.node2
        if node is self.node2:
            return self.node1
        raise ValidationError("edge does not touch the given node")

    def axis_of(self, node: "Node") -> int:
        """Return the axis index of ``node`` this edge labels."""
        if node is self.node1:
            return self.axis1
        if node is self.node2:
            if self.axis2 is None:
                raise ValidationError("dangling edge has no second axis")
            return self.axis2
        raise ValidationError("edge does not touch the given node")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        right = "∅" if self.is_dangling else f"{self.node2.name}[{self.axis2}]"
        return f"<Edge {self.name}: {self.node1.name}[{self.axis1}] -- {right}>"


class Node:
    """A tensor together with one edge per axis."""

    __slots__ = ("id", "name", "tensor", "edges")

    def __init__(self, tensor: np.ndarray, name: str | None = None) -> None:
        self.id = next(_node_counter)
        self.name = name or f"node{self.id}"
        self.tensor = np.asarray(tensor, dtype=complex)
        self.edges: List[Edge] = [Edge(self, axis) for axis in range(self.tensor.ndim)]

    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """Number of tensor axes."""
        return self.tensor.ndim

    @property
    def size(self) -> int:
        """Total number of tensor entries."""
        return int(self.tensor.size)

    @property
    def shape(self) -> Tuple[int, ...]:
        """Tensor shape."""
        return tuple(self.tensor.shape)

    def dangling_edges(self) -> List[Edge]:
        """Edges of this node that are not connected to another node."""
        return [edge for edge in self.edges if edge.is_dangling]

    def connected_edges(self) -> List[Edge]:
        """Edges of this node that connect to another node."""
        return [edge for edge in self.edges if not edge.is_dangling]

    def neighbours(self) -> List["Node"]:
        """Distinct nodes connected to this one."""
        seen: List[Node] = []
        for edge in self.connected_edges():
            other = edge.other(self)
            if other is not None and all(other is not n for n in seen):
                seen.append(other)
        return seen

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Node {self.name} shape={self.shape}>"


def connect(edge_a: Edge, edge_b: Edge, name: str | None = None) -> Edge:
    """Join two dangling edges into a single shared edge.

    Returns the merged edge (attached to both nodes); the second edge object
    is invalidated and must no longer be used.
    """
    if not edge_a.is_dangling or not edge_b.is_dangling:
        raise ValidationError("only dangling edges can be connected")
    if edge_a is edge_b:
        raise ValidationError("cannot connect an edge to itself")
    if edge_a.dimension != edge_b.dimension:
        raise ValidationError(
            f"cannot connect edges of dimension {edge_a.dimension} and {edge_b.dimension}"
        )
    edge_a.node2 = edge_b.node1
    edge_a.axis2 = edge_b.axis1
    if name:
        edge_a.name = name
    edge_b.node1.edges[edge_b.axis1] = edge_a
    return edge_a
