"""Low-level linear-algebra and quantum-state helpers.

This subpackage contains the numerical utilities shared by the circuit IR,
the noise channels, the simulators and the core approximation algorithm.
Everything is plain numpy; no quantum framework is required.
"""

from repro.utils.linalg import (
    dagger,
    is_density_matrix,
    is_hermitian,
    is_identity,
    is_unitary,
    kron_all,
    operator_norm,
    partial_trace,
    projector,
    unvec_row,
    vec_row,
)
from repro.utils.states import (
    basis_state,
    bell_state,
    computational_basis_index,
    ghz_state,
    plus_state,
    random_density_matrix,
    random_statevector,
    random_unitary,
    state_fidelity,
    zero_state,
)
from repro.utils.validation import (
    ValidationError,
    check_power_of_two,
    check_probability,
    check_qubit_index,
    check_square,
    check_statevector,
)

__all__ = [
    "dagger",
    "is_density_matrix",
    "is_hermitian",
    "is_identity",
    "is_unitary",
    "kron_all",
    "operator_norm",
    "partial_trace",
    "projector",
    "unvec_row",
    "vec_row",
    "basis_state",
    "bell_state",
    "computational_basis_index",
    "ghz_state",
    "plus_state",
    "random_density_matrix",
    "random_statevector",
    "random_unitary",
    "state_fidelity",
    "zero_state",
    "ValidationError",
    "check_power_of_two",
    "check_probability",
    "check_qubit_index",
    "check_square",
    "check_statevector",
]
