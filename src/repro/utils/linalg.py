"""Linear-algebra primitives for quantum operators.

The conventions used throughout the library:

* Statevectors are 1-D complex numpy arrays of length ``2**n`` with qubit 0
  being the most significant bit of the computational-basis index (the usual
  "big-endian" circuit-diagram convention: ``|q0 q1 ... q_{n-1}⟩``).
* Operators are dense ``2**n x 2**n`` complex matrices.
* ``vec_row`` vectorises a matrix row-by-row so that
  ``(A ⊗ B*) vec_row(rho) = vec_row(A rho B†)``, which is exactly the identity
  the paper's matrix representation ``M_E = Σ_k E_k ⊗ E_k*`` relies on.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.utils.validation import ValidationError, check_power_of_two, check_square

__all__ = [
    "dagger",
    "is_hermitian",
    "is_identity",
    "is_unitary",
    "is_density_matrix",
    "kron_all",
    "operator_norm",
    "frobenius_norm",
    "trace_norm",
    "partial_trace",
    "projector",
    "vec_row",
    "unvec_row",
    "embed_operator",
    "commutator",
]

#: Default absolute tolerance for structural checks (unitarity, hermiticity...).
DEFAULT_ATOL = 1e-9


def dagger(matrix: np.ndarray) -> np.ndarray:
    """Return the conjugate transpose of ``matrix``."""
    return np.asarray(matrix, dtype=complex).conj().T


def is_hermitian(matrix: np.ndarray, atol: float = DEFAULT_ATOL) -> bool:
    """Return ``True`` when ``matrix`` equals its conjugate transpose."""
    arr = check_square(matrix)
    return bool(np.allclose(arr, arr.conj().T, atol=atol))


def is_identity(matrix: np.ndarray, atol: float = DEFAULT_ATOL) -> bool:
    """Return ``True`` when ``matrix`` is the identity."""
    arr = check_square(matrix)
    return bool(np.allclose(arr, np.eye(arr.shape[0]), atol=atol))


def is_unitary(matrix: np.ndarray, atol: float = DEFAULT_ATOL) -> bool:
    """Return ``True`` when ``matrix`` is unitary (``U† U = I``)."""
    arr = check_square(matrix)
    return bool(np.allclose(arr.conj().T @ arr, np.eye(arr.shape[0]), atol=atol))


def is_density_matrix(matrix: np.ndarray, atol: float = 1e-7) -> bool:
    """Return ``True`` when ``matrix`` is a valid density matrix.

    A density matrix is Hermitian, positive semidefinite and has unit trace.
    """
    arr = check_square(matrix)
    if not np.isclose(np.trace(arr).real, 1.0, atol=atol):
        return False
    if not np.allclose(arr, arr.conj().T, atol=atol):
        return False
    eigenvalues = np.linalg.eigvalsh((arr + arr.conj().T) / 2)
    return bool(np.all(eigenvalues > -atol))


def kron_all(matrices: Iterable[np.ndarray]) -> np.ndarray:
    """Return the Kronecker product of ``matrices`` in order.

    An empty iterable yields the 1x1 identity, which is the neutral element
    of the Kronecker product.
    """
    result = np.array([[1.0 + 0.0j]])
    for matrix in matrices:
        result = np.kron(result, np.asarray(matrix, dtype=complex))
    return result


def operator_norm(matrix: np.ndarray) -> float:
    """Return the spectral (2-)norm of ``matrix``.

    This is the norm the paper uses for the noise rate ``‖M_E − I‖``.
    """
    return float(np.linalg.norm(np.asarray(matrix, dtype=complex), ord=2))


def frobenius_norm(matrix: np.ndarray) -> float:
    """Return the Frobenius norm of ``matrix`` (used in Lemma 1)."""
    return float(np.linalg.norm(np.asarray(matrix, dtype=complex), ord="fro"))


def trace_norm(matrix: np.ndarray) -> float:
    """Return the trace (nuclear) norm of ``matrix``."""
    return float(np.sum(np.linalg.svd(np.asarray(matrix, dtype=complex), compute_uv=False)))


def projector(state: np.ndarray) -> np.ndarray:
    """Return the rank-1 projector ``|ψ⟩⟨ψ|`` of a statevector ``state``."""
    vec = np.asarray(state, dtype=complex).ravel()
    return np.outer(vec, vec.conj())


def vec_row(matrix: np.ndarray) -> np.ndarray:
    """Vectorise ``matrix`` row-by-row.

    With this convention ``(A ⊗ B*) @ vec_row(rho) == vec_row(A @ rho @ B†)``,
    which is the identity underpinning the doubled tensor-network diagram.
    """
    return np.asarray(matrix, dtype=complex).reshape(-1)


def unvec_row(vector: np.ndarray, dim: int | None = None) -> np.ndarray:
    """Invert :func:`vec_row`, reshaping ``vector`` back into a square matrix."""
    vec = np.asarray(vector, dtype=complex).ravel()
    if dim is None:
        dim = int(round(np.sqrt(vec.shape[0])))
    if dim * dim != vec.shape[0]:
        raise ValidationError(
            f"vector of length {vec.shape[0]} cannot be reshaped to a {dim}x{dim} matrix"
        )
    return vec.reshape(dim, dim)


def partial_trace(matrix: np.ndarray, keep: Sequence[int], num_qubits: int | None = None) -> np.ndarray:
    """Trace out all qubits not listed in ``keep`` from a multi-qubit operator.

    Parameters
    ----------
    matrix:
        A ``2**n x 2**n`` operator.
    keep:
        Indices (big-endian) of the qubits to keep, in increasing order of
        significance in the returned operator.
    num_qubits:
        Total number of qubits; inferred from the matrix dimension if omitted.
    """
    arr = check_square(matrix)
    n = check_power_of_two(arr.shape[0]) if num_qubits is None else int(num_qubits)
    keep = [int(q) for q in keep]
    for qubit in keep:
        if not 0 <= qubit < n:
            raise ValidationError(f"cannot keep qubit {qubit} of a {n}-qubit operator")
    if len(set(keep)) != len(keep):
        raise ValidationError("duplicate qubit indices in keep")

    reshaped = arr.reshape([2] * (2 * n))
    traced = list(sorted(set(range(n)) - set(keep)))
    # Trace the discarded qubits one by one, keeping track of shifted axes.
    for count, qubit in enumerate(traced):
        axis_row = qubit - count
        axis_col = axis_row + (n - count)
        reshaped = np.trace(reshaped, axis1=axis_row, axis2=axis_col)
    k = len(keep)
    result = reshaped.reshape(2**k, 2**k)
    # Reorder kept qubits so that the output ordering follows ``keep``.
    order = np.argsort(np.argsort(keep))
    if not np.array_equal(order, np.arange(k)):
        perm = list(np.argsort(keep))
        tensor = result.reshape([2] * (2 * k))
        tensor = np.transpose(tensor, perm + [p + k for p in perm])
        result = tensor.reshape(2**k, 2**k)
    return result


def embed_operator(operator: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Embed an operator acting on ``qubits`` into the full ``num_qubits`` register.

    ``qubits`` gives, in order, which register qubit each operator qubit acts
    on (big-endian).  The returned matrix acts as ``operator`` on those qubits
    and as the identity elsewhere.
    """
    op = np.asarray(operator, dtype=complex)
    k = check_power_of_two(op.shape[0], name="operator dimension")
    if len(qubits) != k:
        raise ValidationError(f"operator acts on {k} qubits but {len(qubits)} indices given")
    qubits = [int(q) for q in qubits]
    if len(set(qubits)) != len(qubits):
        raise ValidationError("duplicate qubit indices")
    for qubit in qubits:
        if not 0 <= qubit < num_qubits:
            raise ValidationError(f"qubit {qubit} out of range for {num_qubits} qubits")

    n = int(num_qubits)
    tensor = op.reshape([2] * (2 * k))
    # Build the full operator as an identity and apply the small operator via
    # tensordot on the relevant axes.  This is O(4^n) but only used for small
    # registers (dense simulators and tests).
    full = np.eye(2**n, dtype=complex).reshape([2] * (2 * n))
    # Axes of ``full`` corresponding to the *output* (row) indices of the
    # embedded qubits are simply ``qubits``; contract the operator's input
    # indices with them.
    contracted = np.tensordot(tensor, full, axes=(list(range(k, 2 * k)), qubits))
    # ``contracted`` has axes: [op outputs (k)] + [remaining full axes].
    # The remaining full axes are all original axes except ``qubits``.
    remaining = [ax for ax in range(2 * n) if ax not in qubits]
    # Build the permutation that restores the original axis order, with op
    # outputs taking the positions of ``qubits``.
    current_positions: dict[int, int] = {}
    for i, qubit in enumerate(qubits):
        current_positions[qubit] = i
    for i, axis in enumerate(remaining):
        current_positions[axis] = k + i
    perm = [current_positions[axis] for axis in range(2 * n)]
    return np.transpose(contracted, perm).reshape(2**n, 2**n)


def commutator(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Return the commutator ``[A, B] = AB − BA``."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    return a @ b - b @ a
