"""Input validation helpers used across the library.

All public entry points validate their inputs with these helpers so that
mis-use produces a clear :class:`ValidationError` rather than a cryptic numpy
broadcasting failure deep inside a contraction.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ValidationError",
    "check_power_of_two",
    "check_probability",
    "check_qubit_index",
    "check_square",
    "check_statevector",
]


class ValidationError(ValueError):
    """Raised when a user-supplied argument is malformed."""


def check_probability(value: float, name: str = "probability") -> float:
    """Validate that ``value`` is a probability in ``[0, 1]`` and return it."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_qubit_index(qubit: int, num_qubits: int) -> int:
    """Validate that ``qubit`` is a legal index for ``num_qubits`` qubits."""
    qubit = int(qubit)
    if num_qubits <= 0:
        raise ValidationError(f"num_qubits must be positive, got {num_qubits}")
    if not 0 <= qubit < num_qubits:
        raise ValidationError(
            f"qubit index {qubit} out of range for a {num_qubits}-qubit register"
        )
    return qubit


def check_square(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Validate that ``matrix`` is a square 2-D array and return it as complex."""
    arr = np.asarray(matrix, dtype=complex)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValidationError(f"{name} must be a square matrix, got shape {arr.shape}")
    return arr


def check_power_of_two(dim: int, name: str = "dimension") -> int:
    """Validate that ``dim`` is a positive power of two and return ``log2(dim)``."""
    dim = int(dim)
    if dim <= 0 or dim & (dim - 1) != 0:
        raise ValidationError(f"{name} must be a positive power of two, got {dim}")
    return dim.bit_length() - 1


def check_statevector(state: np.ndarray, name: str = "state") -> np.ndarray:
    """Validate that ``state`` is a 1-D amplitude vector of power-of-two length."""
    arr = np.asarray(state, dtype=complex).ravel()
    check_power_of_two(arr.shape[0], name=f"len({name})")
    return arr
