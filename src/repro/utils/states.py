"""Construction of common quantum states and random test fixtures."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ValidationError, check_qubit_index

__all__ = [
    "zero_state",
    "basis_state",
    "plus_state",
    "bell_state",
    "ghz_state",
    "computational_basis_index",
    "random_statevector",
    "random_density_matrix",
    "random_unitary",
    "state_fidelity",
]


def zero_state(num_qubits: int) -> np.ndarray:
    """Return ``|0...0⟩`` on ``num_qubits`` qubits."""
    if num_qubits <= 0:
        raise ValidationError(f"num_qubits must be positive, got {num_qubits}")
    state = np.zeros(2**num_qubits, dtype=complex)
    state[0] = 1.0
    return state


def basis_state(bitstring: str | int, num_qubits: int | None = None) -> np.ndarray:
    """Return the computational-basis state ``|bitstring⟩``.

    ``bitstring`` may be a string of ``0``/``1`` characters (big-endian, qubit
    0 first) or an integer index, in which case ``num_qubits`` is required.
    """
    if isinstance(bitstring, str):
        if not bitstring or any(c not in "01" for c in bitstring):
            raise ValidationError(f"invalid bitstring {bitstring!r}")
        num_qubits = len(bitstring)
        index = int(bitstring, 2)
    else:
        if num_qubits is None:
            raise ValidationError("num_qubits is required when passing an integer index")
        index = int(bitstring)
        if not 0 <= index < 2**num_qubits:
            raise ValidationError(f"index {index} out of range for {num_qubits} qubits")
    state = np.zeros(2**num_qubits, dtype=complex)
    state[index] = 1.0
    return state


def computational_basis_index(bitstring: str) -> int:
    """Return the integer index of a computational-basis bitstring."""
    if not bitstring or any(c not in "01" for c in bitstring):
        raise ValidationError(f"invalid bitstring {bitstring!r}")
    return int(bitstring, 2)


def plus_state(num_qubits: int) -> np.ndarray:
    """Return the uniform superposition ``|+...+⟩``."""
    if num_qubits <= 0:
        raise ValidationError(f"num_qubits must be positive, got {num_qubits}")
    dim = 2**num_qubits
    return np.full(dim, 1.0 / np.sqrt(dim), dtype=complex)


def bell_state(kind: int = 0) -> np.ndarray:
    """Return one of the four Bell states.

    ``kind`` selects ``|Φ+⟩, |Φ-⟩, |Ψ+⟩, |Ψ-⟩`` for 0..3 respectively.
    """
    sqrt2 = np.sqrt(2.0)
    states = {
        0: np.array([1, 0, 0, 1], dtype=complex) / sqrt2,
        1: np.array([1, 0, 0, -1], dtype=complex) / sqrt2,
        2: np.array([0, 1, 1, 0], dtype=complex) / sqrt2,
        3: np.array([0, 1, -1, 0], dtype=complex) / sqrt2,
    }
    if kind not in states:
        raise ValidationError(f"Bell state kind must be 0..3, got {kind}")
    return states[kind]


def ghz_state(num_qubits: int) -> np.ndarray:
    """Return the ``num_qubits``-qubit GHZ state ``(|0..0⟩ + |1..1⟩)/√2``."""
    if num_qubits <= 0:
        raise ValidationError(f"num_qubits must be positive, got {num_qubits}")
    state = np.zeros(2**num_qubits, dtype=complex)
    state[0] = state[-1] = 1.0 / np.sqrt(2.0)
    return state


def random_statevector(num_qubits: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Return a Haar-random pure state on ``num_qubits`` qubits."""
    rng = np.random.default_rng(rng)
    dim = 2**num_qubits
    vec = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return vec / np.linalg.norm(vec)


def random_density_matrix(
    num_qubits: int, rank: int | None = None, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Return a random density matrix with the given ``rank`` (full rank by default)."""
    rng = np.random.default_rng(rng)
    dim = 2**num_qubits
    rank = dim if rank is None else int(rank)
    if not 1 <= rank <= dim:
        raise ValidationError(f"rank must be in [1, {dim}], got {rank}")
    mat = rng.normal(size=(dim, rank)) + 1j * rng.normal(size=(dim, rank))
    rho = mat @ mat.conj().T
    return rho / np.trace(rho)


def random_unitary(num_qubits: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Return a Haar-random unitary on ``num_qubits`` qubits (QR of a Ginibre matrix)."""
    rng = np.random.default_rng(rng)
    dim = 2**num_qubits
    mat = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(mat)
    phases = np.diag(r) / np.abs(np.diag(r))
    return q * phases


def state_fidelity(state_a: np.ndarray, state_b: np.ndarray) -> float:
    """Return the fidelity ``|⟨a|b⟩|^2`` between two pure statevectors."""
    a = np.asarray(state_a, dtype=complex).ravel()
    b = np.asarray(state_b, dtype=complex).ravel()
    if a.shape != b.shape:
        raise ValidationError(f"states have mismatched shapes {a.shape} vs {b.shape}")
    return float(np.abs(np.vdot(a, b)) ** 2)
