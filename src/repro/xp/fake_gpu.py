"""``fake_gpu``: a NumPy-backed namespace that *enforces* transfer discipline.

Real accelerator namespaces (cupy/torch) cannot run on CPU-only CI, so
transfer-discipline bugs — host arrays leaking into device ops, implicit
``numpy`` coercion of device arrays, results consumed without an explicit
``to_host`` — would otherwise only surface on GPU machines.  This namespace
makes them fail everywhere: every array it produces is wrapped in
:class:`FakeDeviceArray`, a type numpy refuses to coerce, and every op raises
``TypeError`` when handed a raw host ``ndarray`` where a device array is
expected.

Because each op unwraps, runs the *same numpy kernel in the same order* as
:class:`~repro.xp.numpy_ns.NumpyNamespace`, and re-wraps, results are
bit-identical to the cpu namespace — which is exactly what the conformance
suite (``repro verify --device fake_gpu``) gates on.

Host index/mask arrays *are* accepted as subscripts (cupy semantics: indices
may live on the host), and Python scalars pass through freely.
"""

from __future__ import annotations

import numbers

import numpy as np

from repro.xp.namespace import ArrayNamespace

__all__ = ["FakeDeviceArray", "FakeGpuNamespace"]


class FakeDeviceArray:
    """An opaque handle to an array "on the fake device".

    Supports the device-side surface real GPU array types expose — shape /
    dtype introspection, reshape/transpose views, indexing with host index
    arrays — and refuses every implicit host interaction: ``numpy`` coercion
    (``__array__``), ufunc dispatch, iteration, and assignment from raw host
    arrays all raise ``TypeError``.
    """

    __slots__ = ("_data",)

    def __init__(self, data: np.ndarray):
        self._data = np.asarray(data)

    # -- introspection (device-side, no transfer) ------------------------
    @property
    def shape(self):
        return self._data.shape

    @property
    def dtype(self):
        return self._data.dtype

    @property
    def ndim(self):
        return self._data.ndim

    @property
    def size(self):
        return self._data.size

    def __len__(self):
        return len(self._data)

    def __repr__(self):
        return f"FakeDeviceArray(shape={self._data.shape}, dtype={self._data.dtype})"

    # -- device-side views / copies --------------------------------------
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return FakeDeviceArray(self._data.reshape(shape))

    def transpose(self, *axes):
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        return FakeDeviceArray(self._data.transpose(axes or None))

    def conj(self):
        return FakeDeviceArray(self._data.conj())

    def copy(self):
        return FakeDeviceArray(self._data.copy())

    def astype(self, dtype):
        return FakeDeviceArray(self._data.astype(dtype))

    # -- indexing (host indices allowed, host *values* are not) ----------
    def __getitem__(self, key):
        result = self._data[_unwrap_key(key)]
        return FakeDeviceArray(np.asarray(result))

    def __setitem__(self, key, value):
        if isinstance(value, FakeDeviceArray):
            value = value._data
        elif isinstance(value, np.ndarray):
            raise TypeError(
                "cannot assign a host numpy array into a FakeDeviceArray; "
                "transfer it first with xp.asarray(...)"
            )
        elif not isinstance(value, (numbers.Number, np.generic)):
            raise TypeError(f"cannot assign {type(value).__name__} into a FakeDeviceArray")
        self._data[_unwrap_key(key)] = value

    # -- implicit host interaction is a bug ------------------------------
    __array_ufunc__ = None  # ndarray <op> FakeDeviceArray -> TypeError

    def __array__(self, *args, **kwargs):
        raise TypeError(
            "implicit transfer of a FakeDeviceArray to the host; "
            "use xp.to_host(array) explicitly"
        )

    def __iter__(self):
        raise TypeError(
            "iterating a FakeDeviceArray would transfer element-by-element; "
            "use xp.to_host(array) explicitly"
        )

    def __bool__(self):
        raise TypeError(
            "truth value of a FakeDeviceArray requires an implicit sync; "
            "use xp.to_host(array) explicitly"
        )


def _unwrap_key(key):
    """Subscripts may mix slices, ints, host index arrays and device arrays."""
    if isinstance(key, tuple):
        return tuple(_unwrap_key(part) for part in key)
    if isinstance(key, FakeDeviceArray):
        return key._data
    return key


def _unwrap(value, op: str):
    """A device operand: FakeDeviceArray or scalar; raw host arrays raise."""
    if isinstance(value, FakeDeviceArray):
        return value._data
    if isinstance(value, np.ndarray):
        raise TypeError(
            f"fake_gpu.{op} received a host numpy array; "
            "transfer it to the device first with xp.asarray(...)"
        )
    if isinstance(value, (numbers.Number, np.generic)):
        return value
    raise TypeError(f"fake_gpu.{op} received {type(value).__name__}, not a device array")


class FakeGpuNamespace(ArrayNamespace):
    """NumPy-backed namespace with a distinct array type and explicit transfers."""

    name = "fake_gpu"
    device = "fake_gpu"

    # creation / transfer
    def asarray(self, data, dtype=None):
        if isinstance(data, FakeDeviceArray):  # already on the device (cupy semantics)
            if dtype is None or np.dtype(dtype) == data.dtype:
                return data
            return data.astype(dtype)
        return FakeDeviceArray(np.asarray(data, dtype=dtype))

    def to_host(self, array) -> np.ndarray:
        if not isinstance(array, FakeDeviceArray):
            raise TypeError(
                f"to_host expects a FakeDeviceArray, got {type(array).__name__} "
                "(host data never needs a device->host transfer)"
            )
        return np.array(array._data)

    def to_scalar(self, array):
        return _unwrap(array, "to_scalar") if np.isscalar(array) else np.asarray(
            _unwrap(array, "to_scalar")
        ).reshape(()).item()

    def zeros(self, shape, dtype=None):
        return FakeDeviceArray(np.zeros(shape, dtype=dtype or self.complex_dtype))

    def empty(self, shape, dtype=None):
        return FakeDeviceArray(np.empty(shape, dtype=dtype or self.complex_dtype))

    def full(self, shape, value, dtype=None):
        return FakeDeviceArray(np.full(shape, value, dtype=dtype))

    def is_device_array(self, value) -> bool:
        return isinstance(value, FakeDeviceArray)

    def copyto(self, destination, source) -> None:
        # copyto *is* a transfer op: the source may be host data (the engine
        # stages small Kraus tensors this way) or another device array.
        if not isinstance(destination, FakeDeviceArray):
            raise TypeError("copyto destination must be a device array")
        if isinstance(source, FakeDeviceArray):
            source = source._data
        np.copyto(destination._data, source)

    # shape manipulation
    def reshape(self, array, shape):
        return FakeDeviceArray(np.reshape(_unwrap(array, "reshape"), shape))

    def transpose(self, array, axes=None):
        return FakeDeviceArray(np.transpose(_unwrap(array, "transpose"), axes))

    def ascontiguousarray(self, array):
        return FakeDeviceArray(np.ascontiguousarray(_unwrap(array, "ascontiguousarray")))

    def repeat(self, array, repeats, axis=None):
        return FakeDeviceArray(np.repeat(_unwrap(array, "repeat"), repeats, axis=axis))

    def stack(self, arrays, axis=0):
        parts = [_unwrap(array, "stack") for array in arrays]
        return FakeDeviceArray(np.stack(parts, axis=axis))

    # contractions and elementwise math
    def tensordot(self, a, b, axes):
        return FakeDeviceArray(
            np.tensordot(_unwrap(a, "tensordot"), _unwrap(b, "tensordot"), axes=axes)
        )

    def einsum(self, subscripts, *operands):
        parts = [_unwrap(operand, "einsum") for operand in operands]
        return FakeDeviceArray(np.asarray(np.einsum(subscripts, *parts)))

    def matmul(self, a, b):
        return FakeDeviceArray(_unwrap(a, "matmul") @ _unwrap(b, "matmul"))

    def kron(self, a, b):
        return FakeDeviceArray(np.kron(_unwrap(a, "kron"), _unwrap(b, "kron")))

    def add(self, a, b):
        return FakeDeviceArray(np.asarray(_unwrap(a, "add") + _unwrap(b, "add")))

    def conj(self, array):
        return FakeDeviceArray(np.conj(_unwrap(array, "conj")))

    def abs(self, array):
        return FakeDeviceArray(np.abs(_unwrap(array, "abs")))

    def sqrt(self, array):
        return FakeDeviceArray(np.sqrt(_unwrap(array, "sqrt")))

    def sum(self, array, axis=None):
        return FakeDeviceArray(np.asarray(np.sum(_unwrap(array, "sum"), axis=axis)))

    def cumsum(self, array, axis=None):
        return FakeDeviceArray(np.cumsum(_unwrap(array, "cumsum"), axis=axis))

    def vdot(self, a, b):
        return FakeDeviceArray(np.asarray(np.vdot(_unwrap(a, "vdot"), _unwrap(b, "vdot"))))

    def idivide(self, array, divisor):
        data = _unwrap(array, "idivide")
        data /= _unwrap(divisor, "idivide")
        return array

    def view_real(self, array):
        return FakeDeviceArray(_unwrap(array, "view_real").view(self.real_dtype))

    # linear algebra
    def svd(self, array, full_matrices=True):
        u, s, vh = np.linalg.svd(_unwrap(array, "svd"), full_matrices=full_matrices)
        return FakeDeviceArray(u), FakeDeviceArray(s), FakeDeviceArray(vh)

    def eigh(self, array):
        values, vectors = np.linalg.eigh(_unwrap(array, "eigh"))
        return FakeDeviceArray(values), FakeDeviceArray(vectors)
