"""Host-side numpy alias for seam modules (``from repro.xp import host as np``).

Hot-path modules under ``simulators/``, ``tensornetwork/`` and
``circuits/passes/`` are forbidden (by ``tools/check_xp_seam.py``) from
importing ``numpy`` directly: *device* math must go through an
:class:`~repro.xp.namespace.ArrayNamespace`, and *host* math — RNG streams,
index bookkeeping, result accumulation, small constant tensors — goes through
this module, which is a transparent alias for ``numpy`` itself.

The alias costs nothing on the hot path: the first access to an attribute
resolves it via PEP 562 ``__getattr__`` and caches it in this module's
globals, so every subsequent ``np.tensordot`` is an ordinary module-dict
lookup, exactly as with ``import numpy as np``.
"""

import numpy as _numpy


def __getattr__(name: str):
    try:
        value = getattr(_numpy, name)
    except AttributeError:
        raise AttributeError(f"module 'repro.xp.host' has no attribute {name!r}") from None
    globals()[name] = value  # cache: later accesses skip __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(dir(_numpy)))
