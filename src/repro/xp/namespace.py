"""The ``ArrayNamespace`` protocol and the shape-keyed workspace buffer cache.

An :class:`ArrayNamespace` is the single dispatch point between the library's
algorithms and a device: every dense-math hot path receives one and calls its
ops instead of numpy's.  The protocol is deliberately small — exactly the ops
the hot paths use — so adding a device means implementing ~30 thin wrappers
(see :mod:`repro.xp.numpy_ns` for the reference, :mod:`repro.xp.fake_gpu` for
the transfer-discipline enforcer, and ``docs/xp.md`` for the how-to).

Transfer discipline
-------------------

Host ↔ device movement is always explicit:

* :meth:`ArrayNamespace.asarray` — host data → device array;
* :meth:`ArrayNamespace.to_host` — device array → host ``numpy.ndarray``;
* :meth:`ArrayNamespace.to_scalar` — 0-d device array → Python scalar.

Namespace ops accept and return *device* arrays only (plus Python scalars and
host index/mask arrays where numpy/cupy semantics allow them).  The
``fake_gpu`` namespace raises on any implicit coercion, so a hot path that
passes the ``fake_gpu`` conformance tests will not hide accidental syncs when
a real accelerator namespace is swapped in.

Random numbers are generated *host-side* from the seed and then transferred
(:meth:`ArrayNamespace.random_normal`), so sampled values are bit-identical
across devices — the property the conformance oracles
(``repro verify --device fake_gpu``) gate on.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

import numpy as _np

__all__ = ["ArrayNamespace", "Workspace"]


class Workspace:
    """A small LRU cache of reusable device buffers keyed by (tag, shape, dtype).

    The trajectory engine and the specialized contraction-plan replay request
    the same buffer shapes thousands of times per serving session (one
    ``(batch, 2**n)`` scratch per noise channel per slab, one small tensor per
    bound Kraus value); allocating them once and reusing them is the gpuarray
    cache idiom from quantumsim's CUDA backend.  Keys carry an optional
    caller-supplied ``tag`` so two *live* buffers of the same shape (e.g. two
    Kraus substitution slots) never alias.

    Buffers are cached **per thread** (a :class:`repro.api.Session` dispatches
    work on thread pools, and two threads sharing a scratch buffer would race)
    and the per-thread cache is LRU-bounded by ``max_entries``.  Contents are
    undefined on reuse — callers must fully overwrite what they read, exactly
    as with ``numpy.empty``.
    """

    def __init__(self, allocate, max_entries: int = 32):
        self._allocate = allocate
        self.max_entries = int(max_entries)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def _buffers(self) -> OrderedDict:
        buffers = getattr(self._local, "buffers", None)
        if buffers is None:
            buffers = self._local.buffers = OrderedDict()
        return buffers

    def buffer(self, shape, dtype, tag: Hashable = None):
        """An uninitialised device buffer of ``shape``/``dtype`` (cached per thread)."""
        shape = tuple(int(dim) for dim in shape)
        key = (tag, shape, _np.dtype(dtype).str)
        buffers = self._buffers()
        cached = buffers.get(key)
        if cached is not None:
            buffers.move_to_end(key)
            with self._lock:
                self._hits += 1
            return cached
        fresh = self._allocate(shape, dtype)
        buffers[key] = fresh
        with self._lock:
            self._misses += 1
            while len(buffers) > self.max_entries:
                buffers.popitem(last=False)
                self._evictions += 1
        return fresh

    def stats(self) -> dict:
        """Aggregate counters across all threads (``hits``/``misses``/``evictions``)."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "entries": len(self._buffers()),
            }

    def clear(self) -> None:
        """Drop this thread's cached buffers and reset the shared counters."""
        with self._lock:
            self._buffers().clear()
            self._hits = self._misses = self._evictions = 0


class ArrayNamespace:
    """Base class wiring shared machinery (dtype policy, workspace cache).

    Subclasses implement the device-specific ops; the constructor pins the
    complex working precision (``complex128`` default, ``complex64`` opt-in
    for accelerators) and the paired real dtype used by norm/probability math.
    """

    #: Registry name of the namespace implementation (``numpy``, ``fake_gpu``, …).
    name = "abstract"
    #: Device string this namespace executes on (``cpu``, ``fake_gpu``, ``cuda``).
    device = "cpu"

    def __init__(self, dtype: Any = "complex128", workspace_entries: int = 32):
        self.complex_dtype = _np.dtype(dtype)
        if self.complex_dtype not in (_np.dtype(_np.complex64), _np.dtype(_np.complex128)):
            raise ValueError(f"dtype must be complex64 or complex128, got {dtype!r}")
        self.real_dtype = _np.dtype(
            _np.float32 if self.complex_dtype == _np.dtype(_np.complex64) else _np.float64
        )
        self._workspace = Workspace(self._allocate, max_entries=workspace_entries)

    # -- workspace buffer cache -----------------------------------------
    def _allocate(self, shape, dtype):
        return self.empty(shape, dtype=dtype)

    def workspace(self, shape, dtype=None, tag: Hashable = None):
        """A reusable uninitialised buffer from the per-thread LRU cache."""
        return self._workspace.buffer(shape, dtype or self.complex_dtype, tag=tag)

    def workspace_stats(self) -> dict:
        return self._workspace.stats()

    def workspace_clear(self) -> None:
        self._workspace.clear()

    # -- seeded randomness (host-side, then transferred) -----------------
    def random_normal(self, seed, shape, dtype=None):
        """Seeded standard-normal draws, bit-identical across devices.

        The values are always drawn on the host from
        ``numpy.random.default_rng(seed)`` (``seed`` may also be a live host
        Generator) and then transferred, so a given seed produces the same
        samples on every device — device RNGs never enter the results.
        """
        rng = seed if isinstance(seed, _np.random.Generator) else _np.random.default_rng(seed)
        draws = rng.standard_normal(shape)
        return self.asarray(draws.astype(dtype or self.real_dtype, copy=False))

    # -- protocol (implemented by subclasses) ----------------------------
    def _unimplemented(self, op: str):  # pragma: no cover - abstract guard
        raise NotImplementedError(f"{type(self).__name__} does not implement {op}")

    # creation / transfer
    def asarray(self, data, dtype=None):
        self._unimplemented("asarray")

    def to_host(self, array) -> _np.ndarray:
        self._unimplemented("to_host")

    def to_scalar(self, array):
        self._unimplemented("to_scalar")

    def zeros(self, shape, dtype=None):
        self._unimplemented("zeros")

    def empty(self, shape, dtype=None):
        self._unimplemented("empty")

    def full(self, shape, value, dtype=None):
        self._unimplemented("full")

    def is_device_array(self, value) -> bool:
        self._unimplemented("is_device_array")

    def copyto(self, destination, source) -> None:
        self._unimplemented("copyto")

    # shape manipulation
    def reshape(self, array, shape):
        self._unimplemented("reshape")

    def transpose(self, array, axes=None):
        self._unimplemented("transpose")

    def ascontiguousarray(self, array):
        self._unimplemented("ascontiguousarray")

    def repeat(self, array, repeats, axis=None):
        self._unimplemented("repeat")

    def stack(self, arrays, axis=0):
        self._unimplemented("stack")

    # contractions and elementwise math
    def tensordot(self, a, b, axes):
        self._unimplemented("tensordot")

    def einsum(self, subscripts, *operands):
        self._unimplemented("einsum")

    def matmul(self, a, b):
        self._unimplemented("matmul")

    def kron(self, a, b):
        self._unimplemented("kron")

    def add(self, a, b):
        self._unimplemented("add")

    def conj(self, array):
        self._unimplemented("conj")

    def abs(self, array):
        self._unimplemented("abs")

    def sqrt(self, array):
        self._unimplemented("sqrt")

    def sum(self, array, axis=None):
        self._unimplemented("sum")

    def cumsum(self, array, axis=None):
        self._unimplemented("cumsum")

    def vdot(self, a, b):
        self._unimplemented("vdot")

    def idivide(self, array, divisor):
        """In-place ``array /= divisor`` (broadcasting); returns ``array``."""
        self._unimplemented("idivide")

    def view_real(self, array):
        """Reinterpret a complex array as reals with the last axis doubled.

        The zero-copy trick behind the engine's Born-weight einsum:
        ``|z|² = re² + im²`` summed over the doubled axis, with no conjugate
        temporaries.  numpy/cupy implement it as ``.view(real_dtype)``; torch
        as ``view_as_real`` + flatten.
        """
        self._unimplemented("view_real")

    # linear algebra
    def svd(self, array, full_matrices=True):
        self._unimplemented("svd")

    def eigh(self, array):
        self._unimplemented("eigh")
