"""``repro.xp`` — the array-namespace seam between algorithms and devices.

Every dense-math hot path in the library (batched trajectory slabs,
contraction-plan replay, statevector/density-matrix evolution, PTM algebra)
reduces to ndarray ops: ``einsum``/``tensordot`` contractions, reshapes and a
little linear algebra on ``(batch, 2**n)`` arrays.  This package factors those
ops behind one dispatch point — an :class:`~repro.xp.namespace.ArrayNamespace`
— so the whole hot path can run on an accelerator without algorithm changes
(the pattern quantumsim's CUDA backend proves out: kernels swap in behind an
unchanged interface, with a buffer cache keyed by shape).

Three layers:

* :mod:`repro.xp.host` — a drop-in alias for ``numpy`` used by seam modules
  for *host-side* bookkeeping (RNG streams, index math, result buffers).
  Importing it instead of ``numpy`` keeps host math auditable and lets
  ``tools/check_xp_seam.py`` ban direct numpy imports wholesale.
* :class:`~repro.xp.namespace.ArrayNamespace` implementations — ``numpy``
  (reference, always available), ``fake_gpu`` (NumPy-backed but with a
  distinct array wrapper and mandatory explicit transfers, so host/device
  mixing bugs fail on CPU-only CI), and lazily-discovered ``cupy`` / ``torch``
  namespaces for real CUDA devices.
* :func:`~repro.xp.registry.get_namespace` — device-string resolution
  (``"cpu" | "fake_gpu" | "cuda" | "auto"``) with a structured
  :class:`~repro.xp.registry.DeviceUnavailableError` instead of silent
  fallback, plus the seam-enforcement registry hot-path modules declare
  themselves in (:func:`~repro.xp.registry.declare_seam`).

Quickstart::

    from repro.xp import get_namespace

    xp = get_namespace("fake_gpu")
    a = xp.asarray([[1, 2], [3, 4]])        # explicit host -> device transfer
    b = xp.matmul(a, a)
    xp.to_host(b)                            # explicit device -> host transfer
"""

from repro.xp.namespace import ArrayNamespace, Workspace
from repro.xp.registry import (
    KNOWN_DEVICES,
    DeviceUnavailableError,
    available_devices,
    declare_seam,
    default_device,
    device_available,
    get_namespace,
    seam_modules,
)

__all__ = [
    "ArrayNamespace",
    "DeviceUnavailableError",
    "KNOWN_DEVICES",
    "Workspace",
    "available_devices",
    "declare_seam",
    "default_device",
    "device_available",
    "get_namespace",
    "seam_modules",
]
