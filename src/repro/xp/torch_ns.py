"""Torch :class:`~repro.xp.namespace.ArrayNamespace` (CUDA via ``torch``).

Imported lazily by :func:`repro.xp.get_namespace` as the fallback ``cuda``
provider when CuPy is absent; never imported on machines without torch.
Torch diverges from the numpy API in a few places the protocol papers over:
``view_real`` is ``view_as_real`` + flatten (complex tensors are not
reinterpretable in place), ``transpose`` is ``permute``, and host transfer is
``.cpu().numpy()``.
"""

from __future__ import annotations

import numpy as np

import torch  # noqa: F401 - import error handled by the registry

from repro.xp.namespace import ArrayNamespace

__all__ = ["TorchNamespace"]


class TorchNamespace(ArrayNamespace):
    """CUDA namespace backed by torch (device ``cuda``)."""

    name = "torch"
    device = "cuda"

    def __init__(self, dtype="complex128", **kwargs):
        super().__init__(dtype=dtype, **kwargs)
        self._device = torch.device("cuda")
        self._complex = torch.complex64 if self.complex_dtype == np.dtype(
            np.complex64
        ) else torch.complex128
        self._real = torch.float32 if self._complex == torch.complex64 else torch.float64

    def _torch_dtype(self, dtype):
        if dtype is None:
            return None
        mapping = {
            np.dtype(np.complex64): torch.complex64,
            np.dtype(np.complex128): torch.complex128,
            np.dtype(np.float32): torch.float32,
            np.dtype(np.float64): torch.float64,
            np.dtype(np.int64): torch.int64,
        }
        return mapping[np.dtype(dtype)]

    # creation / transfer
    def asarray(self, data, dtype=None):
        if isinstance(data, torch.Tensor):
            tensor = data
        else:
            tensor = torch.as_tensor(np.ascontiguousarray(data))
        tensor = tensor.to(self._device)
        torch_dtype = self._torch_dtype(dtype)
        return tensor if torch_dtype is None else tensor.to(torch_dtype)

    def to_host(self, array) -> np.ndarray:
        return array.detach().cpu().numpy()

    def to_scalar(self, array):
        return array.detach().cpu().reshape(()).item()

    def zeros(self, shape, dtype=None):
        return torch.zeros(
            tuple(shape), dtype=self._torch_dtype(dtype) or self._complex, device=self._device
        )

    def empty(self, shape, dtype=None):
        return torch.empty(
            tuple(shape), dtype=self._torch_dtype(dtype) or self._complex, device=self._device
        )

    def full(self, shape, value, dtype=None):
        return torch.full(
            tuple(shape), value, dtype=self._torch_dtype(dtype), device=self._device
        )

    def is_device_array(self, value) -> bool:
        return isinstance(value, torch.Tensor)

    def copyto(self, destination, source) -> None:
        if not isinstance(source, torch.Tensor):
            source = torch.as_tensor(np.ascontiguousarray(source))
        destination.copy_(source)

    # shape manipulation
    def reshape(self, array, shape):
        return array.reshape(tuple(shape))

    def transpose(self, array, axes=None):
        if axes is None:
            axes = tuple(reversed(range(array.dim())))
        return array.permute(tuple(axes))

    def ascontiguousarray(self, array):
        return array.contiguous()

    def repeat(self, array, repeats, axis=None):
        return torch.repeat_interleave(array, repeats, dim=axis)

    def stack(self, arrays, axis=0):
        return torch.stack(list(arrays), dim=axis)

    # contractions and elementwise math
    def tensordot(self, a, b, axes):
        if isinstance(axes, tuple):
            axes = (list(axes[0]), list(axes[1]))
        return torch.tensordot(a, b, dims=axes)

    def einsum(self, subscripts, *operands):
        return torch.einsum(subscripts, *operands)

    def matmul(self, a, b):
        return a @ b

    def kron(self, a, b):
        return torch.kron(a, b)

    def add(self, a, b):
        return a + b

    def conj(self, array):
        return array.conj()

    def abs(self, array):
        return array.abs()

    def sqrt(self, array):
        return array.sqrt()

    def sum(self, array, axis=None):
        return array.sum() if axis is None else array.sum(dim=axis)

    def cumsum(self, array, axis=None):
        return array.cumsum(dim=0 if axis is None else axis)

    def vdot(self, a, b):
        return torch.vdot(a.reshape(-1), b.reshape(-1))

    def idivide(self, array, divisor):
        array.div_(divisor)
        return array

    def view_real(self, array):
        return torch.view_as_real(array).reshape(array.shape[:-1] + (-1,))

    # linear algebra
    def svd(self, array, full_matrices=True):
        return torch.linalg.svd(array, full_matrices=full_matrices)

    def eigh(self, array):
        return torch.linalg.eigh(array)
