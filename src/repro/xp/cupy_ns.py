"""CuPy :class:`~repro.xp.namespace.ArrayNamespace` (CUDA via ``cupy``).

Imported lazily by :func:`repro.xp.get_namespace` — this module must never be
imported on machines without CuPy (the registry catches the ``ImportError``
and raises a structured ``DeviceUnavailableError`` instead).  The mapping is
nearly one-to-one because CuPy mirrors the numpy API; the seams that differ
are exactly the protocol's transfer ops (``asarray``/``to_host``) and
``random_normal``, which draws on the host so seeded values stay bit-identical
with the cpu namespace.
"""

from __future__ import annotations

import numpy as np

import cupy  # noqa: F401 - import error handled by the registry

from repro.xp.namespace import ArrayNamespace

__all__ = ["CupyNamespace"]


class CupyNamespace(ArrayNamespace):
    """CUDA namespace backed by CuPy (device ``cuda``)."""

    name = "cupy"
    device = "cuda"

    # creation / transfer
    def asarray(self, data, dtype=None):
        return cupy.asarray(data, dtype=dtype)

    def to_host(self, array) -> np.ndarray:
        return cupy.asnumpy(array)

    def to_scalar(self, array):
        return cupy.asnumpy(array).reshape(()).item()

    def zeros(self, shape, dtype=None):
        return cupy.zeros(shape, dtype=dtype or self.complex_dtype)

    def empty(self, shape, dtype=None):
        return cupy.empty(shape, dtype=dtype or self.complex_dtype)

    def full(self, shape, value, dtype=None):
        return cupy.full(shape, value, dtype=dtype)

    def is_device_array(self, value) -> bool:
        return isinstance(value, cupy.ndarray)

    def copyto(self, destination, source) -> None:
        if isinstance(source, np.ndarray):
            destination.set(np.ascontiguousarray(source))
        else:
            cupy.copyto(destination, source)

    # shape manipulation
    def reshape(self, array, shape):
        return cupy.reshape(array, shape)

    def transpose(self, array, axes=None):
        return cupy.transpose(array, axes)

    def ascontiguousarray(self, array):
        return cupy.ascontiguousarray(array)

    def repeat(self, array, repeats, axis=None):
        return cupy.repeat(array, repeats, axis=axis)

    def stack(self, arrays, axis=0):
        return cupy.stack(arrays, axis=axis)

    # contractions and elementwise math
    def tensordot(self, a, b, axes):
        return cupy.tensordot(a, b, axes=axes)

    def einsum(self, subscripts, *operands):
        return cupy.einsum(subscripts, *operands)

    def matmul(self, a, b):
        return a @ b

    def kron(self, a, b):
        return cupy.kron(a, b)

    def add(self, a, b):
        return a + b

    def conj(self, array):
        return cupy.conj(array)

    def abs(self, array):
        return cupy.abs(array)

    def sqrt(self, array):
        return cupy.sqrt(array)

    def sum(self, array, axis=None):
        return cupy.sum(array, axis=axis)

    def cumsum(self, array, axis=None):
        return cupy.cumsum(array, axis=axis)

    def vdot(self, a, b):
        return cupy.vdot(a, b)

    def idivide(self, array, divisor):
        array /= divisor
        return array

    def view_real(self, array):
        return array.view(self.real_dtype)

    # linear algebra
    def svd(self, array, full_matrices=True):
        return cupy.linalg.svd(array, full_matrices=full_matrices)

    def eigh(self, array):
        return cupy.linalg.eigh(array)
