"""Reference :class:`~repro.xp.namespace.ArrayNamespace`: plain numpy on the host.

Always available; the behavioural baseline every other namespace must match
bit-for-bit (``tests/xp`` runs the same conformance suite against all of
them).  ``asarray``/``to_host`` are zero-copy when the input is already a
host ndarray of the right dtype, so routing the CPU hot path through this
namespace costs nothing over calling numpy directly.
"""

from __future__ import annotations

import numpy as np

from repro.xp.namespace import ArrayNamespace

__all__ = ["NumpyNamespace"]


class NumpyNamespace(ArrayNamespace):
    """The host reference implementation (device ``cpu``)."""

    name = "numpy"
    device = "cpu"

    # creation / transfer
    def asarray(self, data, dtype=None):
        return np.asarray(data, dtype=dtype)

    def to_host(self, array) -> np.ndarray:
        return np.asarray(array)

    def to_scalar(self, array):
        return np.asarray(array).reshape(()).item()

    def zeros(self, shape, dtype=None):
        return np.zeros(shape, dtype=dtype or self.complex_dtype)

    def empty(self, shape, dtype=None):
        return np.empty(shape, dtype=dtype or self.complex_dtype)

    def full(self, shape, value, dtype=None):
        return np.full(shape, value, dtype=dtype)

    def is_device_array(self, value) -> bool:
        return isinstance(value, np.ndarray)

    def copyto(self, destination, source) -> None:
        np.copyto(destination, source)

    # shape manipulation
    def reshape(self, array, shape):
        return np.reshape(array, shape)

    def transpose(self, array, axes=None):
        return np.transpose(array, axes)

    def ascontiguousarray(self, array):
        return np.ascontiguousarray(array)

    def repeat(self, array, repeats, axis=None):
        return np.repeat(array, repeats, axis=axis)

    def stack(self, arrays, axis=0):
        return np.stack(arrays, axis=axis)

    # contractions and elementwise math
    def tensordot(self, a, b, axes):
        return np.tensordot(a, b, axes=axes)

    def einsum(self, subscripts, *operands):
        return np.einsum(subscripts, *operands)

    def matmul(self, a, b):
        return a @ b

    def kron(self, a, b):
        return np.kron(a, b)

    def add(self, a, b):
        return a + b

    def conj(self, array):
        return np.conj(array)

    def abs(self, array):
        return np.abs(array)

    def sqrt(self, array):
        return np.sqrt(array)

    def sum(self, array, axis=None):
        return np.sum(array, axis=axis)

    def cumsum(self, array, axis=None):
        return np.cumsum(array, axis=axis)

    def vdot(self, a, b):
        return np.vdot(a, b)

    def idivide(self, array, divisor):
        array /= divisor
        return array

    def view_real(self, array):
        return array.view(self.real_dtype)

    # linear algebra
    def svd(self, array, full_matrices=True):
        return np.linalg.svd(array, full_matrices=full_matrices)

    def eigh(self, array):
        return np.linalg.eigh(array)
