"""Device-string resolution, namespace discovery and the seam registry.

>>> from repro.xp import get_namespace
>>> get_namespace("cpu").name
'numpy'
>>> get_namespace("fake_gpu").device
'fake_gpu'

``get_namespace`` maps a device string to a cached
:class:`~repro.xp.namespace.ArrayNamespace` instance:

``"cpu"``
    The numpy reference namespace (always available).
``"fake_gpu"``
    NumPy-backed with a distinct array type and mandatory explicit
    transfers (always available; the CI vehicle for transfer discipline).
``"cuda"``
    A real accelerator namespace, discovered lazily: CuPy first, torch as
    the fallback.  On machines with neither, a structured
    :class:`DeviceUnavailableError` is raised — never a silent cpu fallback.
``"auto"``
    ``"cuda"`` when available, else ``"cpu"``.
``None``
    The session default: the ``REPRO_DEVICE`` environment variable when set
    (how CI forces ``fake_gpu`` onto the device-capable backends), else
    ``"cpu"``.

Hot-path modules additionally *declare* themselves here
(:func:`declare_seam`), recording which namespace regime they run on:
``"host"`` modules route all math through :mod:`repro.xp.host`;
``"dispatch"`` modules accept a namespace and run device math through it.
``tools/check_xp_seam.py`` cross-checks the declarations against the import
graph so the seam cannot silently erode.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as _np

from repro.utils.validation import ValidationError
from repro.xp.namespace import ArrayNamespace

__all__ = [
    "KNOWN_DEVICES",
    "DeviceUnavailableError",
    "available_devices",
    "declare_seam",
    "default_device",
    "device_available",
    "get_namespace",
    "seam_modules",
]

#: Accepted ``device=`` strings (``auto`` resolves to ``cuda`` or ``cpu``).
KNOWN_DEVICES = ("cpu", "fake_gpu", "cuda", "auto")

#: Environment variable naming the session-default device (soft: applied only
#: to backends whose capabilities declare ``supports_device``).
DEVICE_ENV = "REPRO_DEVICE"


class DeviceUnavailableError(ValidationError):
    """A requested device exists in the registry but cannot run here.

    Raised by :func:`get_namespace` (and therefore by
    ``Session.compile(device=...)``) instead of silently falling back to the
    cpu namespace; ``device`` and ``reason`` are structured so serving-layer
    error responses can surface them.
    """

    def __init__(self, device: str, reason: str):
        self.device = device
        self.reason = reason
        super().__init__(f"device {device!r} is unavailable: {reason}")


# sentinel: provider probing is done once, not per get_namespace call
_UNPROBED = object()
_cuda_provider = _UNPROBED
_NAMESPACES: Dict[tuple, ArrayNamespace] = {}


def _probe_cuda_provider():
    """'cupy' | 'torch' | None — which library can serve ``device="cuda"``."""
    global _cuda_provider
    if _cuda_provider is not _UNPROBED:
        return _cuda_provider
    provider = None
    try:
        import cupy

        if cupy.cuda.runtime.getDeviceCount() > 0:
            provider = "cupy"
    except Exception:  # noqa: BLE001 - missing package or no driver/device
        provider = None
    if provider is None:
        try:
            import torch

            if torch.cuda.is_available():
                provider = "torch"
        except Exception:  # noqa: BLE001
            provider = None
    _cuda_provider = provider
    return provider


def default_device() -> str:
    """The session-default device: ``$REPRO_DEVICE`` when set, else ``cpu``."""
    device = os.environ.get(DEVICE_ENV, "cpu").strip() or "cpu"
    if device not in KNOWN_DEVICES:
        raise ValidationError(
            f"{DEVICE_ENV}={device!r} is not a known device; "
            f"known: {', '.join(KNOWN_DEVICES)}"
        )
    return device


def device_available(device: str) -> bool:
    """Whether ``get_namespace(device)`` would succeed on this machine."""
    if device in ("cpu", "fake_gpu", "auto"):
        return True
    if device == "cuda":
        return _probe_cuda_provider() is not None
    return False


def available_devices() -> tuple:
    """The concrete devices usable here (``auto`` excluded; it is an alias)."""
    devices = ["cpu", "fake_gpu"]
    if device_available("cuda"):
        devices.append("cuda")
    return tuple(devices)


def get_namespace(device: str | None = None, dtype=None) -> ArrayNamespace:
    """The cached :class:`ArrayNamespace` for ``device`` at working ``dtype``.

    Raises :class:`~repro.utils.validation.ValidationError` for unknown device
    strings and :class:`DeviceUnavailableError` when the device is known but
    cannot run on this machine (e.g. ``"cuda"`` without CuPy/torch).
    """
    if device is None:
        device = default_device()
    device = str(device)
    if device not in KNOWN_DEVICES:
        raise ValidationError(
            f"unknown device {device!r}; known: {', '.join(KNOWN_DEVICES)}"
        )
    if device == "auto":
        device = "cuda" if device_available("cuda") else "cpu"
    dtype_key = _np.dtype(dtype or "complex128").str
    key = (device, dtype_key)
    cached = _NAMESPACES.get(key)
    if cached is not None:
        return cached
    namespace = _build_namespace(device, dtype_key)
    _NAMESPACES[key] = namespace
    return namespace


def _build_namespace(device: str, dtype: str) -> ArrayNamespace:
    if device == "cpu":
        from repro.xp.numpy_ns import NumpyNamespace

        return NumpyNamespace(dtype=dtype)
    if device == "fake_gpu":
        from repro.xp.fake_gpu import FakeGpuNamespace

        return FakeGpuNamespace(dtype=dtype)
    # device == "cuda"
    provider = _probe_cuda_provider()
    if provider == "cupy":
        from repro.xp.cupy_ns import CupyNamespace

        return CupyNamespace(dtype=dtype)
    if provider == "torch":
        from repro.xp.torch_ns import TorchNamespace

        return TorchNamespace(dtype=dtype)
    raise DeviceUnavailableError(
        "cuda", "neither CuPy nor torch with a CUDA device is importable here"
    )


# ---------------------------------------------------------------------------
# Seam-enforcement registry
# ---------------------------------------------------------------------------

_SEAM_MODULES: Dict[str, str] = {}


def declare_seam(module: str, mode: str = "host") -> None:
    """Record that ``module`` routes its dense math through the xp seam.

    ``mode="host"`` — all math goes through the :mod:`repro.xp.host` alias
    (cpu-only today, auditable and lint-enforced).  ``mode="dispatch"`` — the
    module's hot paths additionally accept an :class:`ArrayNamespace` and run
    device math through it.  Called at import time by every module under the
    seam directories; ``tools/check_xp_seam.py`` fails CI when a seam module
    forgets to declare itself or imports numpy directly.
    """
    if mode not in ("host", "dispatch"):
        raise ValidationError(f"unknown seam mode {mode!r}; use 'host' or 'dispatch'")
    _SEAM_MODULES[str(module)] = mode


def seam_modules() -> Dict[str, str]:
    """A copy of the declared seam registry (module name -> mode)."""
    return dict(_SEAM_MODULES)
