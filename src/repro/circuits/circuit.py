"""Circuit intermediate representation.

A :class:`Circuit` is an ordered list of :class:`Instruction` objects.  Each
instruction applies an *operation* to a tuple of qubits.  Operations are
either unitary gates (:class:`repro.circuits.gates.Gate`) or Kraus noise
channels (:class:`repro.noise.kraus.KrausChannel`); the circuit only relies on
the small duck-typed interface both expose (``name``, ``num_qubits`` and
either ``matrix`` or ``kraus_operators``).

This mirrors the paper's definition of a noisy circuit
``E_N = E_d ∘ … ∘ E_1`` where each ``E_i`` is a noiseless gate or a noise
channel.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.circuits import gates as glib
from repro.circuits.gates import Gate
from repro.circuits.parameters import Parameter, ParameterExpression, ParametricGate
from repro.utils.linalg import embed_operator
from repro.utils.validation import ValidationError, check_qubit_index

__all__ = ["Instruction", "Circuit"]


def _is_gate(operation) -> bool:
    """Return True when ``operation`` is a unitary gate (has a ``matrix``).

    Parametric gates are recognised by their class marker *before* the
    ``matrix`` probe: an unbound :class:`~repro.circuits.parameters.
    ParametricGate` raises on matrix access (not ``AttributeError``, so
    ``hasattr`` would propagate it), and a gate's gate-ness must not depend
    on whether its angles are bound yet.
    """
    if getattr(operation, "is_parametric_gate", False):
        return True
    return hasattr(operation, "matrix") and not hasattr(operation, "kraus_operators")


def _symbolic(theta) -> bool:
    """True when an angle argument is a parameter or parameter expression."""
    return isinstance(theta, (Parameter, ParameterExpression))


def _is_channel(operation) -> bool:
    """Return True when ``operation`` is a Kraus channel."""
    return hasattr(operation, "kraus_operators")


@dataclass(frozen=True)
class Instruction:
    """A single operation applied to specific qubits of a circuit."""

    operation: object
    qubits: Tuple[int, ...]

    def __post_init__(self) -> None:
        qubits = tuple(int(q) for q in self.qubits)
        object.__setattr__(self, "qubits", qubits)
        if len(set(qubits)) != len(qubits):
            raise ValidationError(f"instruction acts twice on the same qubit: {qubits}")
        expected = getattr(self.operation, "num_qubits", None)
        if expected is None:
            raise ValidationError(
                f"operation {self.operation!r} does not expose num_qubits"
            )
        if expected != len(qubits):
            raise ValidationError(
                f"operation {self.operation} acts on {expected} qubits, got {len(qubits)} indices"
            )
        if not (_is_gate(self.operation) or _is_channel(self.operation)):
            raise ValidationError(
                f"operation {self.operation!r} is neither a gate nor a Kraus channel"
            )

    # -- predicates ------------------------------------------------------
    @property
    def is_gate(self) -> bool:
        """True when this instruction is a unitary gate."""
        return _is_gate(self.operation)

    @property
    def is_noise(self) -> bool:
        """True when this instruction is a (generally non-unitary) Kraus channel."""
        return _is_channel(self.operation)

    @property
    def name(self) -> str:
        """Name of the underlying operation."""
        return getattr(self.operation, "name", type(self.operation).__name__)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kind = "noise" if self.is_noise else "gate"
        return f"{kind} {self.operation} on {self.qubits}"


class Circuit:
    """An ordered sequence of gate and noise instructions on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits <= 0:
            raise ValidationError(f"num_qubits must be positive, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        self.name = str(name)
        self._instructions: List[Instruction] = []

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, index):
        if isinstance(index, slice):
            sub = Circuit(self.num_qubits, name=f"{self.name}[{index.start}:{index.stop}]")
            sub._instructions = list(self._instructions[index])
            return sub
        return self._instructions[index]

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        """Immutable view of the instruction list."""
        return tuple(self._instructions)

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def append(self, operation, qubits: Sequence[int] | int) -> "Circuit":
        """Append ``operation`` acting on ``qubits`` and return ``self`` (chainable)."""
        if isinstance(qubits, (int, np.integer)):
            qubits = (int(qubits),)
        qubits = tuple(int(q) for q in qubits)
        for q in qubits:
            check_qubit_index(q, self.num_qubits)
        self._instructions.append(Instruction(operation, qubits))
        return self

    def extend(self, instructions: Iterable[Instruction]) -> "Circuit":
        """Append every instruction from ``instructions``."""
        for instruction in instructions:
            self.append(instruction.operation, instruction.qubits)
        return self

    def insert(self, index: int, operation, qubits: Sequence[int] | int) -> "Circuit":
        """Insert an operation at position ``index``."""
        if isinstance(qubits, (int, np.integer)):
            qubits = (int(qubits),)
        qubits = tuple(int(q) for q in qubits)
        for q in qubits:
            check_qubit_index(q, self.num_qubits)
        self._instructions.insert(index, Instruction(operation, qubits))
        return self

    # Convenience single-gate builders -----------------------------------
    def h(self, qubit: int) -> "Circuit":
        """Append a Hadamard gate."""
        return self.append(glib.H(), qubit)

    def x(self, qubit: int) -> "Circuit":
        """Append a Pauli-X gate."""
        return self.append(glib.X(), qubit)

    def y(self, qubit: int) -> "Circuit":
        """Append a Pauli-Y gate."""
        return self.append(glib.Y(), qubit)

    def z(self, qubit: int) -> "Circuit":
        """Append a Pauli-Z gate."""
        return self.append(glib.Z(), qubit)

    def s(self, qubit: int) -> "Circuit":
        """Append an S gate."""
        return self.append(glib.S(), qubit)

    def t(self, qubit: int) -> "Circuit":
        """Append a T gate."""
        return self.append(glib.T(), qubit)

    def rx(self, theta: float, qubit: int) -> "Circuit":
        """Append an Rx rotation (``theta`` may be a symbolic parameter)."""
        if _symbolic(theta):
            return self.append(ParametricGate("rx", (theta,)), qubit)
        return self.append(glib.Rx(theta), qubit)

    def ry(self, theta: float, qubit: int) -> "Circuit":
        """Append an Ry rotation (``theta`` may be a symbolic parameter)."""
        if _symbolic(theta):
            return self.append(ParametricGate("ry", (theta,)), qubit)
        return self.append(glib.Ry(theta), qubit)

    def rz(self, theta: float, qubit: int) -> "Circuit":
        """Append an Rz rotation (``theta`` may be a symbolic parameter)."""
        if _symbolic(theta):
            return self.append(ParametricGate("rz", (theta,)), qubit)
        return self.append(glib.Rz(theta), qubit)

    def cx(self, control: int, target: int) -> "Circuit":
        """Append a CNOT gate."""
        return self.append(glib.CX(), (control, target))

    def cz(self, qubit_a: int, qubit_b: int) -> "Circuit":
        """Append a CZ gate."""
        return self.append(glib.CZ(), (qubit_a, qubit_b))

    def swap(self, qubit_a: int, qubit_b: int) -> "Circuit":
        """Append a SWAP gate."""
        return self.append(glib.SWAP(), (qubit_a, qubit_b))

    def zz(self, theta: float, qubit_a: int, qubit_b: int) -> "Circuit":
        """Append a ZZ interaction (the QAOA cost gate; ``theta`` may be symbolic)."""
        if _symbolic(theta):
            return self.append(ParametricGate("zzphase", (theta,)), (qubit_a, qubit_b))
        return self.append(glib.ZZPhase(theta), (qubit_a, qubit_b))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def gate_instructions(self) -> List[Instruction]:
        """All unitary-gate instructions, in order."""
        return [inst for inst in self._instructions if inst.is_gate]

    @property
    def noise_instructions(self) -> List[Instruction]:
        """All noise-channel instructions, in order."""
        return [inst for inst in self._instructions if inst.is_noise]

    def gate_count(self) -> int:
        """Number of unitary-gate instructions."""
        return len(self.gate_instructions)

    def noise_count(self) -> int:
        """Number of noise-channel instructions."""
        return len(self.noise_instructions)

    def noise_positions(self) -> List[int]:
        """Instruction indices at which noise channels occur."""
        return [i for i, inst in enumerate(self._instructions) if inst.is_noise]

    def is_noiseless(self) -> bool:
        """True when the circuit contains no noise channels."""
        return self.noise_count() == 0

    def depth(self) -> int:
        """Circuit depth counted over gate instructions (greedy moment packing).

        Noise channels are ignored for the depth count, matching the way
        circuit depth is reported in the paper's Table II (the noise channels
        are inserted after gates and do not add logical depth).
        """
        frontier = [0] * self.num_qubits
        depth = 0
        for inst in self.gate_instructions:
            level = max(frontier[q] for q in inst.qubits) + 1
            for q in inst.qubits:
                frontier[q] = level
            depth = max(depth, level)
        return depth

    def moments(self) -> List[List[Instruction]]:
        """Group gate instructions into parallel moments (greedy left packing)."""
        frontier = [0] * self.num_qubits
        moments: List[List[Instruction]] = []
        for inst in self.gate_instructions:
            level = max(frontier[q] for q in inst.qubits)
            if level == len(moments):
                moments.append([])
            moments[level].append(inst)
            for q in inst.qubits:
                frontier[q] = level + 1
        return moments

    def _digest(self, structural: bool) -> str:
        """Shared fingerprint machinery (see :meth:`fingerprint`).

        Literal gate and noise instructions contribute identical bytes in
        both modes, so for circuits without parametric gates the structural
        and exact fingerprints coincide (pre-existing plan-cache keys stay
        stable).  A parametric instruction contributes its structure token
        (gate name + expression shape) in both modes, plus its bound values
        and parameter-shift offsets in exact mode only.
        """
        digest = hashlib.sha256()
        digest.update(str(self.num_qubits).encode())
        for inst in self._instructions:
            operation = inst.operation
            if getattr(operation, "is_parametric_gate", False):
                digest.update(b"\x1fpgate")
                digest.update(operation.structure_token().encode())
                digest.update(repr(inst.qubits).encode())
                if not structural:
                    digest.update(operation.value_token().encode())
                continue
            digest.update(b"\x1fnoise" if inst.is_noise else b"\x1fgate")
            digest.update(inst.name.encode())
            digest.update(repr(inst.qubits).encode())
            if inst.is_noise:
                for kraus in operation.kraus_operators:
                    digest.update(
                        np.ascontiguousarray(np.asarray(kraus, dtype=complex)).tobytes()
                    )
            else:
                digest.update(
                    np.ascontiguousarray(np.asarray(operation.matrix, dtype=complex)).tobytes()
                )
        return digest.hexdigest()[:16]

    def fingerprint(self) -> str:
        """Stable content hash of the circuit's exact structure.

        Covers the qubit count and, per instruction, the operation kind,
        name, qubit tuple and the exact tensor bytes (gate matrix or Kraus
        operators), so two circuits share a fingerprint iff they describe the
        same computation element-for-element.  Parametric gates contribute
        their expression structure plus their bound values and offsets, so
        two bindings of one circuit fingerprint differently here but share a
        :meth:`structural_fingerprint`.
        """
        return self._digest(structural=False)

    def structural_fingerprint(self) -> str:
        """Value-independent fingerprint: parametric angles count as free slots.

        Identical to :meth:`fingerprint` for circuits without parametric
        gates; for parametric circuits every binding (and every
        parameter-shift offset) shares one structural fingerprint.  This is
        the identity the session layer's compiled-plan cache keys on: a plan
        recorded for one binding replays for any other binding of the same
        structure (see :func:`repro.api.executable.plan_cache_key`).
        """
        return self._digest(structural=True)

    def count_ops(self) -> dict:
        """Return a histogram ``{operation name: count}``."""
        counts: dict = {}
        for inst in self._instructions:
            counts[inst.name] = counts.get(inst.name, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "Circuit":
        """Return a shallow copy (instructions are immutable, so this is safe)."""
        new = Circuit(self.num_qubits, name=name or self.name)
        new._instructions = list(self._instructions)
        return new

    def compose(self, other: "Circuit") -> "Circuit":
        """Return a new circuit running ``self`` first and then ``other``."""
        if other.num_qubits != self.num_qubits:
            raise ValidationError(
                f"cannot compose circuits on {self.num_qubits} and {other.num_qubits} qubits"
            )
        new = self.copy(name=f"{self.name}+{other.name}")
        new._instructions.extend(other._instructions)
        return new

    def inverse(self) -> "Circuit":
        """Return the inverse circuit.  Only defined for noiseless circuits."""
        if not self.is_noiseless():
            raise ValidationError("cannot invert a circuit containing noise channels")
        new = Circuit(self.num_qubits, name=f"{self.name}_inv")
        for inst in reversed(self._instructions):
            new.append(inst.operation.inverse(), inst.qubits)
        return new

    def without_noise(self) -> "Circuit":
        """Return a copy with all noise channels removed (the ideal circuit)."""
        new = Circuit(self.num_qubits, name=f"{self.name}_ideal")
        for inst in self._instructions:
            if inst.is_gate:
                new.append(inst.operation, inst.qubits)
        return new

    def unitary(self) -> np.ndarray:
        """Return the dense unitary of a noiseless circuit (small qubit counts only)."""
        if not self.is_noiseless():
            raise ValidationError("a noisy circuit has no single unitary representation")
        if self.num_qubits > 12:
            raise ValidationError(
                "dense unitary construction is limited to 12 qubits "
                f"(requested {self.num_qubits})"
            )
        result = np.eye(2**self.num_qubits, dtype=complex)
        for inst in self._instructions:
            full = embed_operator(inst.operation.matrix, inst.qubits, self.num_qubits)
            result = full @ result
        return result

    # ------------------------------------------------------------------
    # Pretty printing
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-line summary used by the benchmark harness tables."""
        return (
            f"{self.name}: qubits={self.num_qubits} gates={self.gate_count()} "
            f"depth={self.depth()} noises={self.noise_count()}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Circuit {self.summary()}>"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [self.summary()]
        for i, inst in enumerate(self._instructions):
            lines.append(f"  [{i:>3}] {inst}")
        return "\n".join(lines)
