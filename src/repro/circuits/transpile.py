"""Circuit transpilation utilities.

Two passes are provided:

* :func:`decompose_to_native` — rewrite composite two-qubit gates (``ZZPhase``,
  ``XXPhase``, ``Givens``, ``FSim``, ``iSWAP``, ``SWAP``, ``CPhase``, ``CRz``)
  into the superconducting-native set {CX/CZ + single-qubit rotations}, using
  exact Pauli-exponential identities.  This is how the hardware-style
  benchmark circuits are produced and is useful before handing circuits to
  backends that only understand elementary gates.
* :func:`merge_single_qubit_gates` — fuse runs of consecutive single-qubit
  gates on the same qubit into a single unitary, which shrinks tensor networks
  and statevector simulations alike.

Both passes preserve the circuit's unitary exactly (up to global phase the
passes introduce explicit ``gphase`` gates, so even the global phase is kept).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.circuits import gates as glib
from repro.circuits.circuit import Circuit, Instruction
from repro.circuits.gates import Gate
from repro.circuits.passes.fusion import is_identity_up_to_phase
from repro.circuits.pauli import pauli_exponential_circuit
from repro.utils.validation import ValidationError

__all__ = ["decompose_to_native", "merge_single_qubit_gates", "count_two_qubit_gates"]

#: Gates considered native to superconducting hardware (plus anything 1-qubit).
NATIVE_TWO_QUBIT = {"cx", "cz"}


def _global_phase_gate(phase: float) -> Gate:
    """A single-qubit gate implementing a global phase ``e^{i·phase}``."""
    return Gate("gphase", 1, np.exp(1j * phase) * np.eye(2), (phase,))


def _extend_with(circuit: Circuit, fragment: Circuit, qubit_map: dict) -> None:
    """Append ``fragment`` to ``circuit`` after relabelling its qubits."""
    for inst in fragment:
        circuit.append(inst.operation, tuple(qubit_map[q] for q in inst.qubits))


def _decompose_two_qubit(inst: Instruction, target: Circuit) -> None:
    """Append a native decomposition of a composite two-qubit gate to ``target``."""
    gate = inst.operation
    a, b = inst.qubits
    qubit_map = {0: a, 1: b}
    name = gate.name
    params = gate.params

    if name == "zzphase":
        (theta,) = params
        target.cx(a, b)
        target.rz(theta, b)
        target.cx(a, b)
        return
    if name == "xxphase":
        (theta,) = params
        _extend_with(target, pauli_exponential_circuit("XX", theta), qubit_map)
        return
    if name == "givens":
        (theta,) = params
        _extend_with(target, pauli_exponential_circuit("XY", -theta), qubit_map)
        _extend_with(target, pauli_exponential_circuit("YX", theta), qubit_map)
        return
    if name == "cp":
        (theta,) = params
        target.append(_global_phase_gate(theta / 4.0), (a,))
        target.rz(theta / 2.0, a)
        target.rz(theta / 2.0, b)
        # exp(+iθ/4 Z⊗Z) = ZZPhase(-θ/2), decomposed natively.
        target.cx(a, b)
        target.rz(-theta / 2.0, b)
        target.cx(a, b)
        return
    if name == "crz":
        (theta,) = params
        target.rz(theta / 2.0, b)
        target.cx(a, b)
        target.rz(-theta / 2.0, b)
        target.cx(a, b)
        return
    if name == "swap":
        target.cx(a, b)
        target.cx(b, a)
        target.cx(a, b)
        return
    if name == "iswap":
        # iSWAP = exp(+iπ/4 (XX + YY)) · … ; equivalently fsim(-π/2, 0).
        _extend_with(target, pauli_exponential_circuit("XX", -math.pi / 2.0), qubit_map)
        _extend_with(target, pauli_exponential_circuit("YY", -math.pi / 2.0), qubit_map)
        return
    if name == "fsim":
        theta, phi = params
        _extend_with(target, pauli_exponential_circuit("XX", theta), qubit_map)
        _extend_with(target, pauli_exponential_circuit("YY", theta), qubit_map)
        # The conditional phase e^{-iφ} on |11⟩ is a CPhase(-φ).
        _decompose_two_qubit(Instruction(glib.CPhase(-phi), (a, b)), target)
        return
    raise ValidationError(f"no native decomposition known for two-qubit gate {name!r}")


def decompose_to_native(circuit: Circuit) -> Circuit:
    """Rewrite composite two-qubit gates into the native CX/CZ + rotation set.

    Single-qubit gates, native two-qubit gates and noise channels pass through
    unchanged; gates on three or more qubits are rejected (decompose them by
    hand or avoid them for hardware-style circuits).
    """
    native = Circuit(circuit.num_qubits, name=f"{circuit.name}_native")
    for inst in circuit:
        if inst.is_noise or len(inst.qubits) == 1:
            native.append(inst.operation, inst.qubits)
            continue
        if len(inst.qubits) != 2:
            raise ValidationError(
                "decompose_to_native handles 1- and 2-qubit gates only "
                f"(got {len(inst.qubits)}-qubit gate {inst.name!r})"
            )
        if inst.operation.name in NATIVE_TWO_QUBIT:
            native.append(inst.operation, inst.qubits)
        else:
            _decompose_two_qubit(inst, native)
    return native


def merge_single_qubit_gates(circuit: Circuit) -> Circuit:
    """Fuse consecutive single-qubit gates on the same qubit into one unitary.

    Noise channels and multi-qubit gates act as barriers on the qubits they
    touch.  The merged gates are emitted as ``u`` gates carrying the fused
    matrix.

    Runs that fuse to the identity *up to a global phase* (e.g. ``X·X``,
    ``Rz(θ)·Rz(−θ)``, ``H·S·S·H·X``) are eliminated entirely — dead-gate
    elimination — with the accumulated phase re-emitted as one trailing
    ``gphase`` gate, keeping the circuit's unitary exactly equal to the
    original (the module promise above).
    """
    merged = Circuit(circuit.num_qubits, name=f"{circuit.name}_merged")
    pending: dict[int, np.ndarray] = {}
    dropped_phase = 0.0

    def flush(qubits) -> None:
        nonlocal dropped_phase
        for qubit in qubits:
            matrix = pending.pop(qubit, None)
            if matrix is None:
                continue
            if is_identity_up_to_phase(matrix, atol=1e-9):
                # Dead run: keep only its global phase (exactly e^{iφ} I).
                dropped_phase += float(np.angle(np.trace(matrix) / 2.0))
                continue
            merged.append(Gate("u", 1, matrix), (qubit,))

    for inst in circuit:
        if inst.is_gate and len(inst.qubits) == 1:
            qubit = inst.qubits[0]
            current = pending.get(qubit, np.eye(2, dtype=complex))
            pending[qubit] = inst.operation.matrix @ current
            continue
        flush(inst.qubits)
        merged.append(inst.operation, inst.qubits)
    flush(list(pending.keys()))
    if not math.isclose(math.remainder(dropped_phase, 2.0 * math.pi), 0.0, abs_tol=1e-12):
        merged.append(_global_phase_gate(dropped_phase), (0,))
    return merged


def count_two_qubit_gates(circuit: Circuit) -> int:
    """Number of two-qubit gate instructions (a common hardware cost metric)."""
    return sum(1 for inst in circuit if inst.is_gate and len(inst.qubits) == 2)
