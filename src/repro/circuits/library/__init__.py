"""Benchmark circuit generators used by the paper's evaluation.

``qaoa_circuit``, ``hf_circuit`` and ``supremacy_circuit`` reproduce the
three circuit families of the paper (qaoa_N, hf_N, inst_RxC_D); the standard
circuits (GHZ, QFT, Grover, random) are used by tests and examples.

``benchmark_circuit(name)`` resolves a paper-style benchmark name such as
``"qaoa_16"``, ``"hf_8"`` or ``"inst_3x3_10"``.
"""

from __future__ import annotations

from repro.circuits.circuit import Circuit
from repro.circuits.library.hf_vqe import givens_layer_pattern, hf_circuit
from repro.circuits.library.qaoa import (
    QAOAProblem,
    cost_expectation_bruteforce,
    grid_graph,
    maxcut_value,
    qaoa_circuit,
    qaoa_problem_circuit,
    ring_graph,
    sk_graph,
)
from repro.circuits.library.standard import (
    ghz_circuit,
    grover_circuit,
    qft_circuit,
    random_circuit,
)
from repro.circuits.library.supremacy import (
    coupler_patterns,
    parse_inst_name,
    supremacy_circuit,
)
from repro.utils.validation import ValidationError

__all__ = [
    "qaoa_circuit",
    "qaoa_problem_circuit",
    "QAOAProblem",
    "grid_graph",
    "ring_graph",
    "sk_graph",
    "maxcut_value",
    "cost_expectation_bruteforce",
    "hf_circuit",
    "givens_layer_pattern",
    "supremacy_circuit",
    "coupler_patterns",
    "parse_inst_name",
    "ghz_circuit",
    "qft_circuit",
    "grover_circuit",
    "random_circuit",
    "benchmark_circuit",
]


def benchmark_circuit(name: str, seed: int | None = 7, native_gates: bool = True) -> Circuit:
    """Resolve a paper-style benchmark name into a circuit.

    Supported forms: ``qaoa_N``, ``hf_N``, ``inst_RxC_D``, ``ghz_N``,
    ``qft_N``.
    """
    parts = name.split("_")
    family = parts[0].lower()
    if family == "qaoa" and len(parts) == 2:
        return qaoa_circuit(int(parts[1]), seed=seed, native_gates=native_gates)
    if family == "hf" and len(parts) == 2:
        return hf_circuit(int(parts[1]), seed=seed, native_gates=native_gates)
    if family == "inst":
        rows, cols, depth = parse_inst_name(name)
        return supremacy_circuit(rows, cols, depth, seed=seed)
    if family == "ghz" and len(parts) == 2:
        return ghz_circuit(int(parts[1]))
    if family == "qft" and len(parts) == 2:
        return qft_circuit(int(parts[1]))
    raise ValidationError(f"unknown benchmark circuit name {name!r}")
