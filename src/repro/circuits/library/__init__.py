"""Benchmark circuit generators used by the paper's evaluation.

``qaoa_circuit``, ``hf_circuit`` and ``supremacy_circuit`` reproduce the
three circuit families of the paper (qaoa_N, hf_N, inst_RxC_D); the standard
circuits (GHZ, QFT, Grover, random) are used by tests and examples.

``benchmark_circuit(name)`` resolves a paper-style benchmark name such as
``"qaoa_16"``, ``"hf_8"`` or ``"inst_3x3_10"``.
"""

from __future__ import annotations

from repro.circuits.circuit import Circuit
from repro.circuits.library.families import (
    FAMILY_BUILDERS,
    brickwork_circuit,
    clifford_t_circuit,
    deep_narrow_circuit,
    ghz_ladder_circuit,
    qaoa_like_circuit,
    wide_shallow_circuit,
)
from repro.circuits.library.hf_vqe import givens_layer_pattern, hf_circuit
from repro.circuits.library.qaoa import (
    QAOAProblem,
    cost_expectation_bruteforce,
    grid_graph,
    maxcut_value,
    qaoa_circuit,
    qaoa_problem_circuit,
    ring_graph,
    sk_graph,
)
from repro.circuits.library.standard import (
    ghz_circuit,
    grover_circuit,
    qft_circuit,
    random_circuit,
)
from repro.circuits.library.supremacy import (
    coupler_patterns,
    parse_inst_name,
    supremacy_circuit,
)
from repro.utils.validation import ValidationError

__all__ = [
    "qaoa_circuit",
    "qaoa_problem_circuit",
    "QAOAProblem",
    "grid_graph",
    "ring_graph",
    "sk_graph",
    "maxcut_value",
    "cost_expectation_bruteforce",
    "hf_circuit",
    "givens_layer_pattern",
    "supremacy_circuit",
    "coupler_patterns",
    "parse_inst_name",
    "ghz_circuit",
    "qft_circuit",
    "grover_circuit",
    "random_circuit",
    "FAMILY_BUILDERS",
    "brickwork_circuit",
    "clifford_t_circuit",
    "qaoa_like_circuit",
    "ghz_ladder_circuit",
    "deep_narrow_circuit",
    "wide_shallow_circuit",
    "benchmark_circuit",
]

#: Conformance-family benchmark names: ``<prefix>_N`` resolves to the family
#: builder at its default size parameter (``<prefix>_NxS`` pins the size).
_FAMILY_PREFIXES = {
    "brickwork": "brickwork",
    "cliffordt": "clifford_t",
    "qaoalike": "qaoa_like",
    "ghzladder": "ghz_ladder",
    "deepnarrow": "deep_narrow",
    "wideshallow": "wide_shallow",
}


def benchmark_circuit(
    name: str,
    seed: int | None = 7,
    native_gates: bool = True,
    parametric: bool = False,
) -> Circuit:
    """Resolve a paper-style benchmark name into a circuit.

    Supported forms: ``qaoa_N``, ``hf_N``, ``inst_RxC_D``, ``ghz_N``,
    ``qft_N``, plus the conformance families of
    :mod:`repro.circuits.library.families` as ``brickwork_N`` /
    ``brickwork_NxS``, ``cliffordt_N``, ``qaoalike_N``, ``ghzladder_N``,
    ``deepnarrow_N`` and ``wideshallow_N`` (``S`` pins the depth/layer/rung
    count, otherwise the family default applies).

    ``parametric=True`` builds the variational families (``qaoa_N`` /
    ``hf_N``) with symbolic angles for use with ``Executable.bind``; the
    non-variational families have no parameters and reject the flag.
    """
    parts = name.split("_")
    family = parts[0].lower()
    if parametric and family not in ("qaoa", "hf"):
        raise ValidationError(
            f"benchmark family {family!r} has no parametric form (only qaoa_N / hf_N do)"
        )
    if family in _FAMILY_PREFIXES and len(parts) == 2:
        builder = FAMILY_BUILDERS[_FAMILY_PREFIXES[family]]
        size = parts[1]
        try:
            if "x" in size:
                width, _, depth = size.partition("x")
                return builder(int(width), int(depth), seed=seed)
            return builder(int(size), seed=seed)
        except ValueError as exc:
            raise ValidationError(f"malformed benchmark circuit name {name!r}") from exc
    if family == "qaoa" and len(parts) == 2:
        return qaoa_circuit(
            int(parts[1]), seed=seed, native_gates=native_gates, parametric=parametric
        )
    if family == "hf" and len(parts) == 2:
        return hf_circuit(
            int(parts[1]), seed=seed, native_gates=native_gates, parametric=parametric
        )
    if family == "inst":
        rows, cols, depth = parse_inst_name(name)
        return supremacy_circuit(rows, cols, depth, seed=seed)
    if family == "ghz" and len(parts) == 2:
        return ghz_circuit(int(parts[1]))
    if family == "qft" and len(parts) == 2:
        return qft_circuit(int(parts[1]))
    raise ValidationError(f"unknown benchmark circuit name {name!r}")
