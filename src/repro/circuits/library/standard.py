"""Standard textbook circuits used in tests, examples and extended experiments."""

from __future__ import annotations

import math

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits import gates as glib
from repro.utils.validation import ValidationError

__all__ = ["ghz_circuit", "qft_circuit", "grover_circuit", "random_circuit"]


def ghz_circuit(num_qubits: int) -> Circuit:
    """Prepare the ``num_qubits``-qubit GHZ state from ``|0…0⟩``."""
    if num_qubits < 1:
        raise ValidationError("GHZ circuit needs at least one qubit")
    circuit = Circuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for qubit in range(1, num_qubits):
        circuit.cx(qubit - 1, qubit)
    return circuit


def qft_circuit(num_qubits: int, include_swaps: bool = True) -> Circuit:
    """Quantum Fourier transform on ``num_qubits`` qubits."""
    if num_qubits < 1:
        raise ValidationError("QFT circuit needs at least one qubit")
    circuit = Circuit(num_qubits, name=f"qft_{num_qubits}")
    for target in range(num_qubits):
        circuit.h(target)
        for offset, control in enumerate(range(target + 1, num_qubits), start=2):
            circuit.append(glib.CPhase(2.0 * math.pi / (2**offset)), (control, target))
    if include_swaps:
        for qubit in range(num_qubits // 2):
            circuit.swap(qubit, num_qubits - 1 - qubit)
    return circuit


def grover_circuit(num_qubits: int, marked: int = 0, iterations: int | None = None) -> Circuit:
    """Grover search over ``num_qubits`` qubits with a single marked element.

    Uses a phase oracle built from a multi-controlled Z and the standard
    diffusion operator.  The default iteration count is the optimal
    ``⌊π/4 · √N⌋``.
    """
    if num_qubits < 2:
        raise ValidationError("Grover circuit needs at least two qubits")
    dim = 2**num_qubits
    if not 0 <= marked < dim:
        raise ValidationError(f"marked element {marked} out of range for {num_qubits} qubits")
    if iterations is None:
        iterations = max(1, int(math.floor(math.pi / 4.0 * math.sqrt(dim))))

    mcz = glib.controlled(glib.Z(), num_controls=num_qubits - 1)
    bits = format(marked, f"0{num_qubits}b")

    circuit = Circuit(num_qubits, name=f"grover_{num_qubits}_{marked}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for _ in range(iterations):
        # Oracle: flip the phase of |marked⟩.
        for qubit, bit in enumerate(bits):
            if bit == "0":
                circuit.x(qubit)
        circuit.append(mcz, tuple(range(num_qubits)))
        for qubit, bit in enumerate(bits):
            if bit == "0":
                circuit.x(qubit)
        # Diffusion operator.
        for qubit in range(num_qubits):
            circuit.h(qubit)
            circuit.x(qubit)
        circuit.append(mcz, tuple(range(num_qubits)))
        for qubit in range(num_qubits):
            circuit.x(qubit)
            circuit.h(qubit)
    return circuit


def random_circuit(
    num_qubits: int,
    depth: int,
    rng: np.random.Generator | int | None = None,
    two_qubit_probability: float = 0.4,
) -> Circuit:
    """A generic random circuit of rotation and CZ/CX gates (used by property tests)."""
    if num_qubits < 1 or depth < 1:
        raise ValidationError("random_circuit needs at least one qubit and depth >= 1")
    rng = np.random.default_rng(rng)
    circuit = Circuit(num_qubits, name=f"random_{num_qubits}x{depth}")
    for _ in range(depth):
        qubit = int(rng.integers(num_qubits))
        if num_qubits >= 2 and rng.random() < two_qubit_probability:
            other = int(rng.integers(num_qubits - 1))
            if other >= qubit:
                other += 1
            gate = glib.CZ() if rng.random() < 0.5 else glib.CX()
            circuit.append(gate, (qubit, other))
        else:
            angle = float(rng.uniform(0.0, 2.0 * math.pi))
            gate = rng.choice(["rx", "ry", "rz", "h"])
            if gate == "h":
                circuit.h(qubit)
            elif gate == "rx":
                circuit.rx(angle, qubit)
            elif gate == "ry":
                circuit.ry(angle, qubit)
            else:
                circuit.rz(angle, qubit)
    return circuit
