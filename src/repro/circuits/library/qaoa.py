"""Hardware-style QAOA benchmark circuits.

The paper's ``qaoa_N`` benchmarks are the hardware-grid QAOA circuits Google
ran in the "Quantum approximate optimization of non-planar graph problems on
a planar superconducting processor" experiment: qubits on a 2-D grid, a cost
layer of ZZ interactions on grid edges (decomposed into the native CZ + Rz
pattern shown in the paper's Fig. 1), and an Rx mixer layer.

``qaoa_circuit(n)`` reproduces that structure for ``n`` a perfect square (a
``√n × √n`` grid) and falls back to a ring graph otherwise, so the same
generator covers qaoa_64 / qaoa_121 / qaoa_225 as well as the reduced-scale
instances used by this repository's benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits import gates as glib
from repro.circuits.parameters import Parameter
from repro.utils.validation import ValidationError

__all__ = [
    "QAOAProblem",
    "grid_graph",
    "ring_graph",
    "sk_graph",
    "qaoa_circuit",
    "qaoa_problem_circuit",
    "maxcut_value",
    "cost_expectation_bruteforce",
]


@dataclass(frozen=True)
class QAOAProblem:
    """An Ising cost Hamiltonian ``C = Σ_{(i,j)} w_ij Z_i Z_j`` plus QAOA parameters."""

    num_qubits: int
    edges: Tuple[Tuple[int, int, float], ...]
    gammas: Tuple[float, ...]
    betas: Tuple[float, ...]

    @property
    def rounds(self) -> int:
        """Number of QAOA rounds (p)."""
        return len(self.gammas)


def grid_graph(rows: int, cols: int, rng: np.random.Generator | int | None = None) -> nx.Graph:
    """A ``rows x cols`` grid graph with random ±1 edge weights (hardware-grid QAOA)."""
    rng = np.random.default_rng(rng)
    graph = nx.grid_2d_graph(rows, cols)
    mapping = {node: node[0] * cols + node[1] for node in graph.nodes}
    graph = nx.relabel_nodes(graph, mapping)
    for u, v in graph.edges:
        graph.edges[u, v]["weight"] = float(rng.choice([-1.0, 1.0]))
    return graph


def ring_graph(num_qubits: int, rng: np.random.Generator | int | None = None) -> nx.Graph:
    """A weighted ring graph (used when the qubit count is not a perfect square)."""
    rng = np.random.default_rng(rng)
    graph = nx.cycle_graph(num_qubits)
    for u, v in graph.edges:
        graph.edges[u, v]["weight"] = float(rng.choice([-1.0, 1.0]))
    return graph


def sk_graph(num_qubits: int, rng: np.random.Generator | int | None = None) -> nx.Graph:
    """A fully connected Sherrington-Kirkpatrick graph with ±1 couplings."""
    rng = np.random.default_rng(rng)
    graph = nx.complete_graph(num_qubits)
    for u, v in graph.edges:
        graph.edges[u, v]["weight"] = float(rng.choice([-1.0, 1.0]))
    return graph


def _problem_from_graph(
    graph: nx.Graph, rounds: int, rng: np.random.Generator
) -> QAOAProblem:
    edges = tuple(
        (int(u), int(v), float(data.get("weight", 1.0))) for u, v, data in graph.edges(data=True)
    )
    gammas = tuple(float(g) for g in rng.uniform(0.1, 0.9, size=rounds))
    betas = tuple(float(b) for b in rng.uniform(0.1, 0.9, size=rounds))
    return QAOAProblem(graph.number_of_nodes(), edges, gammas, betas)


def qaoa_problem_circuit(
    problem: QAOAProblem,
    native_gates: bool = True,
    hardware_prep: bool | None = None,
    parametric: bool = False,
) -> Circuit:
    """Build the QAOA circuit for ``problem``.

    With ``native_gates=True`` (default) every cost term ``exp(-i γ w Z_u Z_v)``
    is decomposed into the superconducting-native CZ gate plus single-qubit
    rotations (``H·CZ·H`` reproducing a CNOT conjugation of ``Rz``), which is
    the style of the paper's Fig. 1 circuits; with ``native_gates=False`` the
    composite ``ZZPhase`` gate is used directly, which contracts faster and is
    convenient in tests.  ``hardware_prep`` selects the hardware state
    preparation ``Ry(-π/2)·Rz(π/2)`` instead of a plain Hadamard layer and
    defaults to ``native_gates``.

    With ``parametric=True`` the variational angles stay symbolic — round
    ``r`` uses :class:`~repro.circuits.parameters.Parameter` symbols
    ``gamma{r}`` / ``beta{r}`` instead of ``problem.gammas`` /
    ``problem.betas`` — so the circuit can be compiled once and bound per
    optimizer iteration (``Executable.bind``).  ``problem.gammas`` then
    serve only as a natural initial point.
    """
    hardware_prep = native_gates if hardware_prep is None else hardware_prep
    circuit = Circuit(problem.num_qubits, name=f"qaoa_{problem.num_qubits}")
    for qubit in range(problem.num_qubits):
        if hardware_prep:
            circuit.ry(-math.pi / 2.0, qubit)
            circuit.rz(math.pi / 2.0, qubit)
        else:
            circuit.h(qubit)

    gammas, betas = problem.gammas, problem.betas
    if parametric:
        gammas = tuple(Parameter(f"gamma{r}") for r in range(problem.rounds))
        betas = tuple(Parameter(f"beta{r}") for r in range(problem.rounds))
    for gamma, beta in zip(gammas, betas):
        for u, v, weight in problem.edges:
            angle = 2.0 * gamma * weight
            if native_gates:
                # Exact decomposition of exp(-i γ w Z_u Z_v): conjugating the
                # target's Rz by a CNOT built from the native CZ and Hadamards.
                circuit.h(v)
                circuit.cz(u, v)
                circuit.h(v)
                circuit.rz(angle, v)
                circuit.h(v)
                circuit.cz(u, v)
                circuit.h(v)
            else:
                circuit.zz(angle, u, v)
        for qubit in range(problem.num_qubits):
            circuit.rx(2.0 * beta, qubit)
    return circuit


def qaoa_circuit(
    num_qubits: int,
    rounds: int = 1,
    seed: int | None = 7,
    native_gates: bool = True,
    graph: nx.Graph | None = None,
    parametric: bool = False,
) -> Circuit:
    """Build the ``qaoa_N`` benchmark circuit for ``num_qubits`` qubits.

    A perfect-square qubit count produces the hardware-grid problem (matching
    qaoa_64 / qaoa_121 / qaoa_225 of the paper); other counts use a ring graph.
    ``parametric=True`` keeps the per-round angles symbolic (``gamma{r}`` /
    ``beta{r}``, see :func:`qaoa_problem_circuit`).
    """
    if num_qubits < 2:
        raise ValidationError("QAOA circuits need at least 2 qubits")
    rng = np.random.default_rng(seed)
    if graph is None:
        side = int(round(math.sqrt(num_qubits)))
        if side * side == num_qubits and side >= 2:
            graph = grid_graph(side, side, rng)
        else:
            graph = ring_graph(num_qubits, rng)
    if graph.number_of_nodes() != num_qubits:
        raise ValidationError(
            f"graph has {graph.number_of_nodes()} nodes but num_qubits={num_qubits}"
        )
    problem = _problem_from_graph(graph, rounds, rng)
    circuit = qaoa_problem_circuit(problem, native_gates=native_gates, parametric=parametric)
    circuit.name = f"qaoa_{num_qubits}"
    return circuit


def maxcut_value(bitstring: str, edges: Sequence[Tuple[int, int, float]]) -> float:
    """Weighted cut value of ``bitstring`` for the given edge list."""
    if any(c not in "01" for c in bitstring):
        raise ValidationError(f"invalid bitstring {bitstring!r}")
    total = 0.0
    for u, v, weight in edges:
        if bitstring[u] != bitstring[v]:
            total += weight
    return total


def cost_expectation_bruteforce(
    problem: QAOAProblem, probabilities: Dict[str, float]
) -> float:
    """Ising cost expectation ``Σ_x p(x) Σ_{(i,j)} w_ij z_i z_j`` with ``z ∈ {±1}``."""
    total = 0.0
    for bitstring, prob in probabilities.items():
        z = [1.0 if c == "0" else -1.0 for c in bitstring]
        energy = sum(w * z[u] * z[v] for u, v, w in problem.edges)
        total += prob * energy
    return total
