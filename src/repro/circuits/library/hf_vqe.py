"""Hartree-Fock VQE benchmark circuits (``hf_N``).

The paper's ``hf_N`` circuits are the Hartree-Fock variational circuits
Google executed in "Hartree-Fock on a superconducting qubit quantum
computer": the occupied orbitals are prepared with X gates and a triangular
network of Givens rotations implements an arbitrary basis rotation of the
occupied subspace.

``hf_circuit(n)`` reproduces that structure.  With ``native_gates=True``
(default) every Givens rotation is decomposed into the native gate set
(CNOT + single-qubit rotations via two commuting Pauli exponentials), giving
gate counts and depths of the same order as the paper's Table II; with
``native_gates=False`` the composite ``Givens`` gate is used directly, which
is faster to simulate and convenient in unit tests.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits import gates as glib
from repro.circuits.parameters import Parameter, ParameterExpression, ParametricGate
from repro.circuits.pauli import pauli_exponential_circuit
from repro.utils.validation import ValidationError

__all__ = ["givens_layer_pattern", "hf_circuit"]


def givens_layer_pattern(num_qubits: int) -> List[List[Tuple[int, int]]]:
    """Return the brickwork pattern of adjacent pairs used by the basis rotation.

    Layer ``k`` couples pairs ``(i, i+1)`` with ``i ≡ k (mod 2)``; there are
    ``num_qubits`` layers, which is enough to implement an arbitrary
    single-particle basis rotation (the triangular Givens network).
    """
    layers: List[List[Tuple[int, int]]] = []
    for layer in range(num_qubits):
        start = layer % 2
        pairs = [(i, i + 1) for i in range(start, num_qubits - 1, 2)]
        if pairs:
            layers.append(pairs)
    return layers


def _append_givens(circuit: Circuit, theta, pair: Tuple[int, int], native: bool) -> None:
    """Append a Givens rotation on ``pair``, optionally decomposed into native gates.

    ``theta`` may be a float or a symbolic parameter/expression; the native
    decomposition threads it into the ``Rz`` of each Pauli exponential, the
    composite form wraps the ``givens`` factory in a ``ParametricGate``.
    """
    a, b = pair
    if not native:
        if isinstance(theta, (Parameter, ParameterExpression)):
            circuit.append(ParametricGate("givens", (theta,)), (a, b))
        else:
            circuit.append(glib.Givens(theta), (a, b))
        return
    # G(θ) = exp(iθ (X⊗Y − Y⊗X)/2) = exp(-i(-θ)/2 · XY) · exp(-iθ/2 · YX);
    # the two Pauli exponentials commute, so the decomposition is exact.
    xy = pauli_exponential_circuit("XY", -theta, qubits=[a, b], num_qubits=circuit.num_qubits)
    yx = pauli_exponential_circuit("YX", theta, qubits=[a, b], num_qubits=circuit.num_qubits)
    circuit.extend(xy)
    circuit.extend(yx)


def hf_circuit(
    num_qubits: int,
    num_occupied: int | None = None,
    seed: int | None = 11,
    native_gates: bool = True,
    parametric: bool = False,
) -> Circuit:
    """Build the ``hf_N`` Hartree-Fock VQE benchmark circuit.

    Parameters
    ----------
    num_qubits:
        Number of spin orbitals (qubits).
    num_occupied:
        Number of occupied orbitals; defaults to ``num_qubits // 2`` as in the
        hydrogen-chain experiments.
    seed:
        Seed for the Givens rotation angles.
    native_gates:
        Decompose Givens rotations into CNOT + rotations when True.
    parametric:
        Keep the Givens angles symbolic: rotation ``k`` (in append order)
        uses the :class:`~repro.circuits.parameters.Parameter` ``theta{k}``,
        so the circuit compiles once and binds per VQE iteration.
    """
    if num_qubits < 2:
        raise ValidationError("Hartree-Fock circuits need at least 2 qubits")
    if num_occupied is None:
        num_occupied = num_qubits // 2
    if not 0 < num_occupied <= num_qubits:
        raise ValidationError(
            f"num_occupied must be in (0, {num_qubits}], got {num_occupied}"
        )
    rng = np.random.default_rng(seed)

    circuit = Circuit(num_qubits, name=f"hf_{num_qubits}")
    for qubit in range(num_occupied):
        circuit.x(qubit)
    index = 0
    for pairs in givens_layer_pattern(num_qubits):
        for pair in pairs:
            theta = float(rng.uniform(-np.pi / 4.0, np.pi / 4.0))
            if parametric:
                theta = Parameter(f"theta{index}")
            index += 1
            _append_givens(circuit, theta, pair, native_gates)
    return circuit
