"""Random quantum-supremacy benchmark circuits (``inst_RxC_D``).

These follow the structure of the Boixo et al. / Arute et al. random circuits
that the ``inst_{R}x{C}_{D}`` benchmarks in the paper are drawn from:

* qubits on an ``R × C`` grid;
* an initial layer of Hadamards;
* ``D - 1`` cycles, each consisting of a CZ layer following one of eight
  coupler activation patterns, plus random single-qubit gates from
  ``{T, √X, √Y}`` applied to the qubits that interacted in the previous cycle
  (never repeating the gate a qubit received last);
* the qubit count is ``R*C`` and the reported depth is ``D`` (initial layer
  plus ``D − 1`` cycles), matching the naming convention of the benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits import gates as glib
from repro.utils.validation import ValidationError

__all__ = ["coupler_patterns", "supremacy_circuit", "parse_inst_name"]


def coupler_patterns(rows: int, cols: int) -> List[List[Tuple[int, int]]]:
    """Return the eight CZ activation patterns of the grid.

    Patterns 0–3 activate alternating horizontal couplers, 4–7 alternating
    vertical couplers, so consecutive cycles touch different qubit pairs as in
    the Google random-circuit schedule.
    """
    if rows < 1 or cols < 1:
        raise ValidationError("grid dimensions must be positive")

    def index(r: int, c: int) -> int:
        return r * cols + c

    horizontal = [[], [], [], []]
    for r in range(rows):
        for c in range(cols - 1):
            slot = (c % 2) + 2 * (r % 2)
            horizontal[slot].append((index(r, c), index(r, c + 1)))
    vertical = [[], [], [], []]
    for r in range(rows - 1):
        for c in range(cols):
            slot = (r % 2) + 2 * (c % 2)
            vertical[slot].append((index(r, c), index(r + 1, c)))
    patterns = horizontal + vertical
    return [p for p in patterns if p] or [[]]


def supremacy_circuit(
    rows: int,
    cols: int,
    depth: int,
    seed: int | None = 23,
    final_hadamards: bool = False,
) -> Circuit:
    """Build the ``inst_{rows}x{cols}_{depth}`` random supremacy circuit."""
    if depth < 1:
        raise ValidationError("depth must be at least 1")
    rng = np.random.default_rng(seed)
    num_qubits = rows * cols
    circuit = Circuit(num_qubits, name=f"inst_{rows}x{cols}_{depth}")

    for qubit in range(num_qubits):
        circuit.h(qubit)

    single_qubit_gates = {
        "t": glib.T,
        "sx": glib.SX,
        "sy": glib.SY,
    }
    last_gate: Dict[int, str] = {}
    touched_last_cycle: set[int] = set()
    patterns = coupler_patterns(rows, cols)

    for cycle in range(depth - 1):
        # Random single-qubit gates on qubits that interacted last cycle.
        for qubit in sorted(touched_last_cycle):
            choices = [name for name in single_qubit_gates if name != last_gate.get(qubit)]
            name = str(rng.choice(choices))
            circuit.append(single_qubit_gates[name](), (qubit,))
            last_gate[qubit] = name
        # CZ layer for this cycle's coupler pattern.
        pattern = patterns[cycle % len(patterns)]
        touched_last_cycle = set()
        for a, b in pattern:
            circuit.cz(a, b)
            touched_last_cycle.update((a, b))

    if final_hadamards:
        for qubit in range(num_qubits):
            circuit.h(qubit)
    return circuit


def parse_inst_name(name: str) -> Tuple[int, int, int]:
    """Parse an ``inst_RxC_D`` benchmark name into ``(rows, cols, depth)``."""
    try:
        _, grid, depth = name.split("_")
        rows, cols = grid.split("x")
        return int(rows), int(cols), int(depth)
    except (ValueError, AttributeError) as exc:
        raise ValidationError(f"invalid supremacy benchmark name {name!r}") from exc
