"""Parametrised conformance-workload circuit families.

Six seeded families spanning the structural axes on which the simulators
behave differently — entanglement growth, non-Clifford content, diagonal
two-qubit structure, width vs depth:

* :func:`brickwork_circuit` — alternating random single-qubit rotation layers
  and brick-pattern CZ layers (hardware-style random circuits);
* :func:`clifford_t_circuit` — random Clifford gates sprinkled with T/T†
  (the canonical universality benchmark, stresses phase bookkeeping);
* :func:`qaoa_like_circuit` — ZZ cost layers over a random graph alternating
  with Rx mixer layers (diagonal-entangler workloads);
* :func:`ghz_ladder_circuit` — a GHZ backbone decorated with CZ rungs and
  local rotations (maximal long-range correlations);
* :func:`deep_narrow_circuit` — few qubits, many layers (deep sequential
  structure, stresses accumulated floating-point error);
* :func:`wide_shallow_circuit` — many qubits, one or two layers (stresses
  width limits and contraction ordering).

Every builder is deterministic for a fixed ``seed`` and emits only 1- and
2-qubit gates from :data:`repro.circuits.gates.GATE_FACTORIES`, so the
circuits transpile, export to OpenQASM and run on every registered backend.
The families are resolvable through
:func:`repro.circuits.library.benchmark_circuit` (``brickwork_5``,
``cliffordt_4``, …), which makes them available to sweep specs and the CLI,
and they parametrise the differential-testing workloads of
:mod:`repro.verify`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuits import gates as glib
from repro.circuits.circuit import Circuit
from repro.utils.validation import ValidationError

__all__ = [
    "FAMILY_BUILDERS",
    "brickwork_circuit",
    "clifford_t_circuit",
    "deep_narrow_circuit",
    "ghz_ladder_circuit",
    "qaoa_like_circuit",
    "wide_shallow_circuit",
]

#: Single-qubit Clifford generators used by :func:`clifford_t_circuit`.
_CLIFFORD_1Q = ("h", "s", "sdg", "x", "y", "z")


def _check_size(num_qubits: int, minimum: int, family: str) -> None:
    if num_qubits < minimum:
        raise ValidationError(f"{family} circuits need at least {minimum} qubits")


def _rotation_layer(circuit: Circuit, rng: np.random.Generator) -> None:
    """One layer of random Rx/Ry/Rz rotations on every qubit."""
    for qubit in range(circuit.num_qubits):
        axis = int(rng.integers(3))
        theta = float(rng.uniform(0.0, 2.0 * math.pi))
        if axis == 0:
            circuit.rx(theta, qubit)
        elif axis == 1:
            circuit.ry(theta, qubit)
        else:
            circuit.rz(theta, qubit)


def brickwork_circuit(num_qubits: int, depth: int = 8, seed: int | None = 7) -> Circuit:
    """Brickwork random circuit: rotation layers alternating with CZ bricks.

    >>> from repro.circuits.library import brickwork_circuit
    >>> circuit = brickwork_circuit(4, depth=4, seed=1)
    >>> circuit.num_qubits, circuit.noise_count()
    (4, 0)
    """
    _check_size(num_qubits, 2, "brickwork")
    if depth < 1:
        raise ValidationError("brickwork depth must be positive")
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits, name=f"brickwork_{num_qubits}x{depth}")
    for layer in range(depth):
        _rotation_layer(circuit, rng)
        offset = layer % 2
        for qubit in range(offset, num_qubits - 1, 2):
            circuit.cz(qubit, qubit + 1)
    _rotation_layer(circuit, rng)
    return circuit


def clifford_t_circuit(
    num_qubits: int, depth: int = 10, seed: int | None = 7, t_fraction: float = 0.25
) -> Circuit:
    """Random Clifford+T circuit (``t_fraction`` of the 1-qubit slots are T/T†).

    The circuit always contains at least one T gate, so the family never
    degenerates into a pure stabilizer workload.
    """
    _check_size(num_qubits, 2, "clifford_t")
    if depth < 1:
        raise ValidationError("clifford_t depth must be positive")
    if not 0.0 <= t_fraction <= 1.0:
        raise ValidationError("t_fraction must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits, name=f"cliffordt_{num_qubits}x{depth}")
    t_emitted = 0
    for _ in range(depth):
        for qubit in range(num_qubits):
            if rng.random() < t_fraction:
                name = "t" if rng.random() < 0.5 else "tdg"
                t_emitted += 1
            else:
                name = _CLIFFORD_1Q[int(rng.integers(len(_CLIFFORD_1Q)))]
            circuit.append(glib.GATE_FACTORIES[name](), qubit)
        a, b = rng.choice(num_qubits, size=2, replace=False)
        if rng.random() < 0.5:
            circuit.cx(int(a), int(b))
        else:
            circuit.cz(int(a), int(b))
    if t_emitted == 0:
        circuit.t(int(rng.integers(num_qubits)))
    return circuit


def qaoa_like_circuit(num_qubits: int, layers: int = 2, seed: int | None = 7) -> Circuit:
    """QAOA-style circuit over a random ring-plus-chords graph.

    Each layer applies ``ZZ(γ)`` on every edge followed by ``Rx(β)`` on every
    qubit, with per-layer random angles — the diagonal-entangler structure of
    the paper's qaoa benchmarks at randomised sizes.
    """
    _check_size(num_qubits, 3, "qaoa_like")
    if layers < 1:
        raise ValidationError("qaoa_like needs at least one layer")
    rng = np.random.default_rng(seed)
    edges = [(qubit, (qubit + 1) % num_qubits) for qubit in range(num_qubits)]
    num_chords = int(rng.integers(0, max(1, num_qubits // 2) + 1))
    for _ in range(num_chords):
        a, b = rng.choice(num_qubits, size=2, replace=False)
        edge = (int(min(a, b)), int(max(a, b)))
        if edge not in edges:
            edges.append(edge)
    circuit = Circuit(num_qubits, name=f"qaoalike_{num_qubits}x{layers}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for _ in range(layers):
        gamma = float(rng.uniform(0.0, math.pi))
        beta = float(rng.uniform(0.0, math.pi))
        for a, b in edges:
            circuit.zz(gamma, a, b)
        for qubit in range(num_qubits):
            circuit.rx(beta, qubit)
    return circuit


def ghz_ladder_circuit(num_qubits: int, rungs: int | None = None, seed: int | None = 7) -> Circuit:
    """A GHZ backbone decorated with CZ rungs and random local rotations."""
    _check_size(num_qubits, 3, "ghz_ladder")
    rng = np.random.default_rng(seed)
    if rungs is None:
        rungs = num_qubits
    if rungs < 0:
        raise ValidationError("rungs must be non-negative")
    circuit = Circuit(num_qubits, name=f"ghzladder_{num_qubits}x{rungs}")
    circuit.h(0)
    for qubit in range(1, num_qubits):
        circuit.cx(qubit - 1, qubit)
    for _ in range(rungs):
        qubit = int(rng.integers(num_qubits - 1))
        circuit.rz(float(rng.uniform(0.0, 2.0 * math.pi)), qubit)
        circuit.cz(qubit, qubit + 1)
        circuit.ry(float(rng.uniform(0.0, math.pi)), qubit + 1)
    return circuit


def deep_narrow_circuit(num_qubits: int = 3, depth: int = 24, seed: int | None = 7) -> Circuit:
    """Few qubits, many random layers: deep sequential structure."""
    _check_size(num_qubits, 2, "deep_narrow")
    if num_qubits > 4:
        raise ValidationError("deep_narrow circuits are 2-4 qubits wide by definition")
    if depth < 1:
        raise ValidationError("deep_narrow depth must be positive")
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits, name=f"deepnarrow_{num_qubits}x{depth}")
    for _ in range(depth):
        _rotation_layer(circuit, rng)
        a, b = rng.choice(num_qubits, size=2, replace=False)
        circuit.cx(int(a), int(b))
    return circuit


def wide_shallow_circuit(num_qubits: int = 8, depth: int = 2, seed: int | None = 7) -> Circuit:
    """Many qubits, one or two layers: stresses width, not depth."""
    _check_size(num_qubits, 4, "wide_shallow")
    if not 1 <= depth <= 3:
        raise ValidationError("wide_shallow depth must be 1-3 by definition")
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits, name=f"wideshallow_{num_qubits}x{depth}")
    for layer in range(depth):
        _rotation_layer(circuit, rng)
        offset = layer % 2
        for qubit in range(offset, num_qubits - 1, 2):
            circuit.cx(qubit, qubit + 1)
    return circuit


#: Family name -> ``builder(num_qubits, <size>, seed)``; the registry the
#: benchmark-name resolver and :mod:`repro.verify.generators` share.
FAMILY_BUILDERS = {
    "brickwork": brickwork_circuit,
    "clifford_t": clifford_t_circuit,
    "qaoa_like": qaoa_like_circuit,
    "ghz_ladder": ghz_ladder_circuit,
    "deep_narrow": deep_narrow_circuit,
    "wide_shallow": wide_shallow_circuit,
}
