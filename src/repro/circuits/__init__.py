"""Quantum circuit IR: gates, circuits and benchmark circuit generators."""

from repro.circuits import gates
from repro.circuits.circuit import Circuit, Instruction
from repro.circuits.gates import Gate, controlled, gate_from_matrix
from repro.circuits.observables import PauliObservable, PauliTerm, ising_cost_observable
from repro.circuits.pauli import pauli_exponential_circuit, pauli_string_matrix
from repro.circuits.qasm import QasmError, from_qasm, to_qasm
from repro.circuits.transpile import (
    count_two_qubit_gates,
    decompose_to_native,
    merge_single_qubit_gates,
)

__all__ = [
    "gates",
    "Gate",
    "Circuit",
    "Instruction",
    "controlled",
    "gate_from_matrix",
    "to_qasm",
    "from_qasm",
    "QasmError",
    "PauliObservable",
    "PauliTerm",
    "ising_cost_observable",
    "pauli_exponential_circuit",
    "pauli_string_matrix",
    "decompose_to_native",
    "merge_single_qubit_gates",
    "count_two_qubit_gates",
    "PassConfig",
    "PassProfile",
    "PassStats",
    "run_passes",
]

# The optimizing pass pipeline lives in the `passes` subpackage, which
# imports the circuit IR above — re-export at the end to keep the package
# import acyclic.
from repro.circuits.passes import PassConfig, PassProfile, PassStats, run_passes  # noqa: E402
