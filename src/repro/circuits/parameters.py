"""Symbolic circuit parameters: free angles bound after compilation.

A :class:`Parameter` is a named symbolic angle usable anywhere a gate angle
goes; arithmetic on parameters builds linear
:class:`ParameterExpression` objects (``2.0 * gamma + 0.1``), which is the
closure the circuit library needs (QAOA cost angles are ``2·w·γ``, the
Hartree-Fock Givens decomposition emits ``±θ``).  A gate whose angle is
symbolic is represented by a :class:`ParametricGate`: a named factory from
:data:`repro.circuits.gates.GATE_FACTORIES` whose parameter slots hold
expressions instead of floats.

The load-bearing property of this module is the **structure/value split**:

* :meth:`ParametricGate.structure_token` depends only on the gate name and
  the *expressions* (names and coefficients) — never on bound values or
  parameter-shift offsets — so every binding of one parametric circuit
  shares a structural fingerprint, which is what the session's plan cache
  keys on (see :meth:`repro.circuits.circuit.Circuit.structural_fingerprint`).
* :meth:`ParametricGate.bind` and :func:`substitute` perform partial
  evaluation only — the original expressions are retained, so a bound gate
  still *is* parametric.  The optimizing passes treat every parametric gate
  (bound or not) as an opaque barrier, which makes
  ``passes(substitute(c, p))`` and ``substitute(passes(c), p)`` agree
  instruction-for-instruction; that exact commutation is the foundation of
  the bind-equivalence oracle's bit-identity guarantee.

Example::

    >>> from repro.circuits.parameters import (
    ...     Parameter, circuit_parameters, substitute)
    >>> from repro.circuits.circuit import Circuit
    >>> theta = Parameter("theta")
    >>> circuit = Circuit(1).rx(2.0 * theta, 0)
    >>> sorted(circuit_parameters(circuit))
    ['theta']
    >>> bound = substitute(circuit, {"theta": 0.25})
    >>> bound[0].operation.params
    (0.5,)
"""

from __future__ import annotations

import numbers
from typing import Dict, FrozenSet, Mapping, Tuple, Union

import numpy as np

from repro.circuits import gates as glib
from repro.utils.validation import ValidationError

__all__ = [
    "Parameter",
    "ParameterExpression",
    "ParametricGate",
    "UnboundParameterError",
    "circuit_parameters",
    "is_parametric",
    "substitute",
]


class UnboundParameterError(ValidationError):
    """A concrete value (matrix, inverse, …) was requested from an unbound symbol."""


#: Anything accepted in a parametric gate's parameter slot.
ParamLike = Union[float, "Parameter", "ParameterExpression"]


class Parameter:
    """A named symbolic angle (the leaf of :class:`ParameterExpression`).

    >>> gamma = Parameter("gamma")
    >>> (2.0 * gamma + 0.5).evaluate({"gamma": 0.25})
    1.0
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not isinstance(name, str) or not name.isidentifier():
            raise ValidationError(
                f"parameter name must be a valid identifier, got {name!r}"
            )
        self.name = name

    # -- expression protocol (delegates to the single-term expression) ----
    def _expr(self) -> "ParameterExpression":
        return ParameterExpression(((self.name, 1.0),), 0.0)

    @property
    def parameters(self) -> FrozenSet[str]:
        """The free parameter names (just this one)."""
        return frozenset((self.name,))

    def evaluate(self, binding: Mapping[str, float]) -> float:
        """Resolve this parameter from ``binding`` (see :meth:`ParameterExpression.evaluate`)."""
        return self._expr().evaluate(binding)

    def structure_key(self) -> str:
        """Canonical structural token (see :meth:`ParameterExpression.structure_key`)."""
        return self._expr().structure_key()

    # -- arithmetic -------------------------------------------------------
    def __add__(self, other):
        return self._expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self._expr() - other

    def __rsub__(self, other):
        return (-self._expr()) + other

    def __mul__(self, other):
        return self._expr() * other

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._expr() / other

    def __neg__(self):
        return -self._expr()

    def __eq__(self, other) -> bool:
        if isinstance(other, Parameter):
            return self.name == other.name
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Parameter", self.name))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter({self.name!r})"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def _as_expression(value: ParamLike) -> "ParameterExpression":
    if isinstance(value, ParameterExpression):
        return value
    if isinstance(value, Parameter):
        return value._expr()
    if isinstance(value, numbers.Real) and not isinstance(value, bool):
        return ParameterExpression((), float(value))
    raise ValidationError(f"cannot use {value!r} in a parameter expression")


class ParameterExpression:
    """A linear combination of parameters: ``Σ coeff·name + const``.

    Closed under addition, subtraction, negation and scaling by real
    constants — the operations the circuit library needs.  Products of two
    symbols are rejected (the parameter-shift rule below assumes linearity).

    >>> gamma, beta = Parameter("gamma"), Parameter("beta")
    >>> expr = 2.0 * gamma - beta / 2 + 1.0
    >>> sorted(expr.parameters)
    ['beta', 'gamma']
    >>> expr.evaluate({"gamma": 0.5, "beta": 2.0})
    1.0
    """

    __slots__ = ("terms", "const")

    def __init__(self, terms, const: float = 0.0) -> None:
        collected: Dict[str, float] = {}
        for name, coeff in terms:
            coeff = float(coeff)
            if coeff != 0.0:
                collected[name] = collected.get(name, 0.0) + coeff
        #: Canonical (name, coefficient) pairs, sorted by name, zeros dropped.
        self.terms: Tuple[Tuple[str, float], ...] = tuple(
            (name, collected[name])
            for name in sorted(collected)
            if collected[name] != 0.0
        )
        self.const = float(const)

    @property
    def parameters(self) -> FrozenSet[str]:
        """Names of the free parameters this expression depends on."""
        return frozenset(name for name, _ in self.terms)

    def coefficient(self, name: str) -> float:
        """The linear coefficient of ``name`` (0.0 when absent)."""
        for term_name, coeff in self.terms:
            if term_name == name:
                return coeff
        return 0.0

    def evaluate(self, binding: Mapping[str, float]) -> float:
        """Resolve to a float; raises :class:`UnboundParameterError` on gaps."""
        missing = sorted(name for name, _ in self.terms if name not in binding)
        if missing:
            raise UnboundParameterError(
                f"unbound parameters {missing} (bind them before execution)"
            )
        total = self.const
        for name, coeff in self.terms:
            total += coeff * float(binding[name])
        return float(total)

    def structure_key(self) -> str:
        """Canonical token covering names and exact coefficient reprs.

        Two expressions share a key iff they are the same linear form, so
        structural fingerprints distinguish ``2·γ`` from ``γ`` while staying
        independent of any bound values.
        """
        parts = [f"{coeff!r}*{name}" for name, coeff in self.terms]
        parts.append(repr(self.const))
        return "+".join(parts)

    # -- arithmetic -------------------------------------------------------
    def __add__(self, other):
        other = _as_expression(other)
        return ParameterExpression(
            self.terms + other.terms, self.const + other.const
        )

    __radd__ = __add__

    def __sub__(self, other):
        return self + (-_as_expression(other))

    def __rsub__(self, other):
        return (-self) + other

    def __neg__(self):
        return ParameterExpression(
            tuple((name, -coeff) for name, coeff in self.terms), -self.const
        )

    def __mul__(self, other):
        if isinstance(other, (Parameter, ParameterExpression)):
            raise ValidationError(
                "parameter expressions are linear; cannot multiply two symbols"
            )
        factor = float(other)
        return ParameterExpression(
            tuple((name, coeff * factor) for name, coeff in self.terms),
            self.const * factor,
        )

    __rmul__ = __mul__

    def __truediv__(self, other):
        if isinstance(other, (Parameter, ParameterExpression)):
            raise ValidationError("cannot divide by a symbolic parameter")
        return self * (1.0 / float(other))

    def __eq__(self, other) -> bool:
        if isinstance(other, (Parameter, ParameterExpression)):
            other = _as_expression(other)
            return self.terms == other.terms and self.const == other.const
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.terms, self.const))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParameterExpression({self.structure_key()})"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.structure_key()


class ParametricGate:
    """A gate factory applied to symbolic parameter slots.

    ``ParametricGate("rz", (2.0 * gamma,))`` behaves like the gate
    ``Rz(2·γ)`` whose angle is decided later: :meth:`bind` partially
    evaluates (the expressions are kept, so the gate stays parametric and
    keeps its structural identity), and once every parameter is bound the
    duck-typed gate interface (``matrix``, ``params``, ``tensor``,
    ``inverse``) delegates to the concrete factory-built gate.

    ``offsets`` are post-evaluation additive angle shifts, one per slot —
    the parameter-shift gradient's ±π/2 evaluations.  They participate in
    the *value* (matrix, exact fingerprint) but not in the structure token,
    so every shifted evaluation of one circuit replays the same compiled
    plan.
    """

    #: Class marker checked (via ``getattr``) by the circuit layer and the
    #: passes, so parametric gates are recognised without importing this
    #: module and — crucially — without touching the ``matrix`` property,
    #: which raises on unbound gates.
    is_parametric_gate = True

    __slots__ = ("name", "num_qubits", "_factory", "_params", "binding", "offsets", "_bound_gate")

    def __init__(
        self,
        name: str,
        params,
        binding: Mapping[str, float] | None = None,
        offsets=None,
    ) -> None:
        factory = glib.GATE_FACTORIES.get(name)
        if factory is None:
            raise ValidationError(
                f"unknown parametric gate {name!r} (not in GATE_FACTORIES)"
            )
        params = tuple(
            p if isinstance(p, ParameterExpression) else _as_expression(p)
            for p in params
        )
        if not params:
            raise ValidationError(f"parametric gate {name!r} needs at least one parameter")
        try:
            probe = factory(*(0.0,) * len(params))
        except TypeError as exc:
            raise ValidationError(
                f"gate {name!r} does not take {len(params)} parameter(s)"
            ) from exc
        self.name = name
        self.num_qubits = probe.num_qubits
        self._factory = factory
        self._params = params
        relevant = frozenset().union(*(p.parameters for p in params))
        self.binding = {
            str(key): float(value)
            for key, value in dict(binding or {}).items()
            if str(key) in relevant
        }
        if offsets is None:
            offsets = (0.0,) * len(params)
        offsets = tuple(float(o) for o in offsets)
        if len(offsets) != len(params):
            raise ValidationError(
                f"gate {name!r}: {len(offsets)} offsets for {len(params)} parameters"
            )
        self.offsets = offsets
        self._bound_gate = None

    # -- structure / value split -----------------------------------------
    @property
    def expressions(self) -> Tuple[ParameterExpression, ...]:
        """The raw parameter expressions (independent of any binding)."""
        return self._params

    @property
    def free_parameters(self) -> FrozenSet[str]:
        """Parameter names still unbound on this gate."""
        names = frozenset().union(*(p.parameters for p in self._params))
        return names - frozenset(self.binding)

    @property
    def is_bound(self) -> bool:
        """True when every parameter slot can be evaluated to a float."""
        return not self.free_parameters

    def structure_token(self) -> str:
        """Value-independent identity: gate name + expression structure.

        Stable across :meth:`bind` and :meth:`shifted`, so every binding
        (and every gradient shift) of a circuit shares one structural
        fingerprint and therefore one compiled plan.
        """
        parts = [self.name] + [p.structure_key() for p in self._params]
        return "|".join(parts)

    def value_token(self) -> str:
        """Exact-value identity: bound values and offsets (for fingerprints)."""
        bound = ",".join(f"{k}={self.binding[k]!r}" for k in sorted(self.binding))
        return f"bind[{bound}]offsets{self.offsets!r}"

    # -- binding ----------------------------------------------------------
    def bind(self, binding: Mapping[str, float]) -> "ParametricGate":
        """Return a copy with ``binding`` merged in (partial binding is fine).

        Names irrelevant to this gate are ignored — :func:`substitute`
        passes one full mapping to every instruction.
        """
        merged = dict(self.binding)
        for key, value in dict(binding).items():
            merged[str(key.name if isinstance(key, Parameter) else key)] = float(value)
        return ParametricGate(self.name, self._params, binding=merged, offsets=self.offsets)

    def shifted(self, slot: int, delta: float) -> "ParametricGate":
        """Return a copy with slot ``slot``'s evaluated angle shifted by ``delta``."""
        if not 0 <= slot < len(self._params):
            raise ValidationError(
                f"gate {self.name!r} has {len(self._params)} parameter slots, got slot {slot}"
            )
        offsets = list(self.offsets)
        offsets[slot] += float(delta)
        return ParametricGate(
            self.name, self._params, binding=self.binding, offsets=tuple(offsets)
        )

    # -- bound-gate delegation -------------------------------------------
    def bound_gate(self) -> glib.Gate:
        """The concrete :class:`~repro.circuits.gates.Gate` this binding selects."""
        if self._bound_gate is None:
            free = sorted(self.free_parameters)
            if free:
                raise UnboundParameterError(
                    f"gate {self.name!r} has unbound parameters {free}; "
                    "bind them (Executable.bind / substitute) before execution"
                )
            values = [
                p.evaluate(self.binding) + offset
                for p, offset in zip(self._params, self.offsets)
            ]
            self._bound_gate = self._factory(*values)
        return self._bound_gate

    @property
    def matrix(self) -> np.ndarray:
        """Dense unitary of the bound gate (raises while parameters are free)."""
        return self.bound_gate().matrix

    @property
    def params(self) -> Tuple[ParamLike, ...]:
        """Evaluated angles when bound; the raw expressions otherwise."""
        if self.is_bound:
            return self.bound_gate().params
        return self._params

    def tensor(self) -> np.ndarray:
        """Rank-``2k`` tensor view of the bound matrix."""
        return self.bound_gate().tensor()

    def inverse(self) -> glib.Gate:
        """Inverse of the bound gate (a concrete :class:`Gate`)."""
        return self.bound_gate().inverse()

    def conjugate(self) -> glib.Gate:
        """Entry-wise conjugate of the bound gate."""
        return self.bound_gate().conjugate()

    @property
    def dim(self) -> int:
        """Hilbert-space dimension the gate acts on."""
        return 2**self.num_qubits

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        args = ", ".join(str(p) for p in self._params)
        suffix = "" if not self.binding else f"@{self.binding}"
        return f"{self.name}({args}){suffix}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ParametricGate {self}>"


# ---------------------------------------------------------------------------
# Circuit-level helpers
# ---------------------------------------------------------------------------

def is_parametric(circuit) -> bool:
    """True when any instruction carries a :class:`ParametricGate` (bound or not)."""
    return any(
        getattr(inst.operation, "is_parametric_gate", False) for inst in circuit
    )


def circuit_parameters(circuit) -> FrozenSet[str]:
    """The free (unbound) parameter names of ``circuit``."""
    names: set = set()
    for inst in circuit:
        if getattr(inst.operation, "is_parametric_gate", False):
            names |= inst.operation.free_parameters
    return frozenset(names)


def normalize_binding(binding: Mapping) -> Dict[str, float]:
    """Normalise a ``{Parameter|str: value}`` mapping to ``{name: float}``."""
    normalized: Dict[str, float] = {}
    for key, value in dict(binding).items():
        name = key.name if isinstance(key, Parameter) else str(key)
        normalized[name] = float(value)
    return normalized


def substitute(circuit, binding: Mapping):
    """Return a copy of ``circuit`` with every free parameter bound.

    The result's parametric gates are *bound*, not erased: expressions are
    retained so the substituted circuit keeps the structural fingerprint of
    the original — the property the plan cache and the bind-equivalence
    oracle rely on.  Raises :class:`UnboundParameterError` when ``binding``
    misses a free parameter; extra names are ignored.
    """
    from repro.circuits.circuit import Circuit

    normalized = normalize_binding(binding)
    missing = sorted(circuit_parameters(circuit) - frozenset(normalized))
    if missing:
        raise UnboundParameterError(
            f"substitute() is missing values for parameters {missing}"
        )
    new = Circuit(circuit.num_qubits, name=circuit.name)
    for inst in circuit:
        operation = inst.operation
        if getattr(operation, "is_parametric_gate", False):
            operation = operation.bind(normalized)
        new.append(operation, inst.qubits)
    return new
