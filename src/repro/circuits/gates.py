"""Quantum gate library.

Contains the 1-qubit gates listed in Table I of the paper, the standard
2-qubit entangling gates used by the benchmark circuits (CZ, CNOT, CPhase,
iSWAP, fSim, Givens rotations) and a generic mechanism for building
controlled and parameterised gates.

A :class:`Gate` is an immutable description: a name, a number of qubits, the
parameter values and the unitary matrix.  Circuits store :class:`Gate`
instances together with the qubit indices they act on (see
:mod:`repro.circuits.circuit`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from repro.utils.linalg import is_unitary
from repro.utils.validation import ValidationError, check_power_of_two

__all__ = [
    "Gate",
    "I",
    "H",
    "X",
    "Y",
    "Z",
    "S",
    "SDG",
    "T",
    "TDG",
    "SX",
    "SY",
    "SW",
    "Rx",
    "Ry",
    "Rz",
    "Phase",
    "U3",
    "CX",
    "CZ",
    "CY",
    "SWAP",
    "ISWAP",
    "CPhase",
    "CRz",
    "FSim",
    "Givens",
    "XXPhase",
    "ZZPhase",
    "controlled",
    "gate_from_matrix",
    "GATE_FACTORIES",
]

_SQRT2 = math.sqrt(2.0)


@dataclass(frozen=True)
class Gate:
    """An immutable quantum gate.

    Attributes
    ----------
    name:
        Canonical gate name (e.g. ``"rz"``, ``"cz"``).
    num_qubits:
        Number of qubits the unitary acts on.
    matrix:
        Dense ``2**num_qubits x 2**num_qubits`` unitary.
    params:
        Tuple of real parameters (rotation angles), possibly empty.
    """

    name: str
    num_qubits: int
    matrix: np.ndarray = field(repr=False, compare=False)
    params: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=complex)
        n = check_power_of_two(matrix.shape[0], name="gate dimension")
        if matrix.shape[0] != matrix.shape[1]:
            raise ValidationError(f"gate matrix must be square, got {matrix.shape}")
        if n != self.num_qubits:
            raise ValidationError(
                f"gate {self.name!r}: matrix acts on {n} qubits, declared {self.num_qubits}"
            )
        object.__setattr__(self, "matrix", matrix)
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))

    # -- convenience -----------------------------------------------------
    @property
    def dim(self) -> int:
        """Hilbert-space dimension the gate acts on."""
        return 2**self.num_qubits

    def inverse(self) -> "Gate":
        """Return the inverse (adjoint) gate."""
        return Gate(
            name=f"{self.name}_dg" if not self.name.endswith("_dg") else self.name[:-3],
            num_qubits=self.num_qubits,
            matrix=self.matrix.conj().T,
            params=tuple(-p for p in self.params),
        )

    def conjugate(self) -> "Gate":
        """Return the entry-wise complex conjugate gate (used in the doubled diagram)."""
        return Gate(
            name=f"{self.name}*",
            num_qubits=self.num_qubits,
            matrix=self.matrix.conj(),
            params=self.params,
        )

    def is_unitary(self, atol: float = 1e-9) -> bool:
        """Check unitarity of the stored matrix."""
        return is_unitary(self.matrix, atol=atol)

    def tensor(self) -> np.ndarray:
        """Return the matrix reshaped into a rank-``2k`` tensor (outputs then inputs)."""
        k = self.num_qubits
        return self.matrix.reshape([2] * (2 * k))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.params:
            args = ", ".join(f"{p:.4g}" for p in self.params)
            return f"{self.name}({args})"
        return self.name


# ---------------------------------------------------------------------------
# Fixed 1-qubit gates (Table I of the paper)
# ---------------------------------------------------------------------------

def I() -> Gate:
    """Identity gate."""
    return Gate("id", 1, np.eye(2, dtype=complex))


def H() -> Gate:
    """Hadamard gate."""
    return Gate("h", 1, np.array([[1, 1], [1, -1]], dtype=complex) / _SQRT2)


def X() -> Gate:
    """Pauli-X gate."""
    return Gate("x", 1, np.array([[0, 1], [1, 0]], dtype=complex))


def Y() -> Gate:
    """Pauli-Y gate."""
    return Gate("y", 1, np.array([[0, -1j], [1j, 0]], dtype=complex))


def Z() -> Gate:
    """Pauli-Z gate."""
    return Gate("z", 1, np.array([[1, 0], [0, -1]], dtype=complex))


def S() -> Gate:
    """Phase gate ``S = diag(1, i)``."""
    return Gate("s", 1, np.array([[1, 0], [0, 1j]], dtype=complex))


def SDG() -> Gate:
    """Adjoint of the S gate."""
    return Gate("sdg", 1, np.array([[1, 0], [0, -1j]], dtype=complex))


def T() -> Gate:
    """T gate ``diag(1, e^{iπ/4})``."""
    return Gate("t", 1, np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=complex))


def TDG() -> Gate:
    """Adjoint of the T gate."""
    return Gate("tdg", 1, np.array([[1, 0], [0, np.exp(-1j * np.pi / 4)]], dtype=complex))


def SX() -> Gate:
    """Square root of X (used by the supremacy circuit layer pattern)."""
    return Gate(
        "sx",
        1,
        0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex),
    )


def SY() -> Gate:
    """Square root of Y (used by the supremacy circuit layer pattern)."""
    return Gate(
        "sy",
        1,
        0.5 * np.array([[1 + 1j, -1 - 1j], [1 + 1j, 1 + 1j]], dtype=complex),
    )


def SW() -> Gate:
    """Square root of W = (X + Y)/√2, the third Sycamore 1-qubit layer gate."""
    return Gate(
        "sw",
        1,
        0.5 * np.array(
            [[1 + 1j, -np.sqrt(2) * 1j], [np.sqrt(2), 1 + 1j]], dtype=complex
        ),
    )


# ---------------------------------------------------------------------------
# Parameterised 1-qubit gates
# ---------------------------------------------------------------------------

def Rx(theta: float) -> Gate:
    """Rotation about the X axis by ``theta``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return Gate("rx", 1, np.array([[c, -1j * s], [-1j * s, c]], dtype=complex), (theta,))


def Ry(theta: float) -> Gate:
    """Rotation about the Y axis by ``theta``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return Gate("ry", 1, np.array([[c, -s], [s, c]], dtype=complex), (theta,))


def Rz(theta: float) -> Gate:
    """Rotation about the Z axis by ``theta``."""
    phase = np.exp(1j * theta / 2)
    return Gate("rz", 1, np.array([[1 / phase, 0], [0, phase]], dtype=complex), (theta,))


def Phase(theta: float) -> Gate:
    """Phase gate ``diag(1, e^{iθ})``."""
    return Gate("p", 1, np.array([[1, 0], [0, np.exp(1j * theta)]], dtype=complex), (theta,))


def U3(theta: float, phi: float, lam: float) -> Gate:
    """General 1-qubit unitary in the standard ``U3`` parameterisation."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    matrix = np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )
    return Gate("u3", 1, matrix, (theta, phi, lam))


# ---------------------------------------------------------------------------
# 2-qubit gates
# ---------------------------------------------------------------------------

def CX() -> Gate:
    """Controlled-X (CNOT) with qubit 0 as control."""
    matrix = np.eye(4, dtype=complex)
    matrix[2:, 2:] = np.array([[0, 1], [1, 0]])
    return Gate("cx", 2, matrix)


def CY() -> Gate:
    """Controlled-Y with qubit 0 as control."""
    matrix = np.eye(4, dtype=complex)
    matrix[2:, 2:] = np.array([[0, -1j], [1j, 0]])
    return Gate("cy", 2, matrix)


def CZ() -> Gate:
    """Controlled-Z gate (symmetric; common on superconducting hardware)."""
    return Gate("cz", 2, np.diag([1, 1, 1, -1]).astype(complex))


def SWAP() -> Gate:
    """SWAP gate."""
    matrix = np.eye(4, dtype=complex)[[0, 2, 1, 3]]
    return Gate("swap", 2, matrix)


def ISWAP() -> Gate:
    """iSWAP gate."""
    matrix = np.array(
        [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
    )
    return Gate("iswap", 2, matrix)


def CPhase(theta: float) -> Gate:
    """Controlled-phase gate ``diag(1, 1, 1, e^{iθ})``."""
    return Gate("cp", 2, np.diag([1, 1, 1, np.exp(1j * theta)]).astype(complex), (theta,))


def CRz(theta: float) -> Gate:
    """Controlled-Rz gate."""
    phase = np.exp(1j * theta / 2)
    matrix = np.diag([1, 1, 1 / phase, phase]).astype(complex)
    return Gate("crz", 2, matrix, (theta,))


def FSim(theta: float, phi: float) -> Gate:
    """fSim gate used by Google's Sycamore processor.

    ``FSim(θ, φ)`` swaps with amplitude ``sin θ`` and applies a conditional
    phase ``e^{-iφ}`` on ``|11⟩``.
    """
    c, s = math.cos(theta), math.sin(theta)
    matrix = np.array(
        [
            [1, 0, 0, 0],
            [0, c, -1j * s, 0],
            [0, -1j * s, c, 0],
            [0, 0, 0, np.exp(-1j * phi)],
        ],
        dtype=complex,
    )
    return Gate("fsim", 2, matrix, (theta, phi))


def Givens(theta: float) -> Gate:
    """Givens rotation used by the Hartree-Fock VQE ansatz.

    Rotates within the single-excitation subspace ``span{|01⟩, |10⟩}``.
    """
    c, s = math.cos(theta), math.sin(theta)
    matrix = np.array(
        [[1, 0, 0, 0], [0, c, -s, 0], [0, s, c, 0], [0, 0, 0, 1]], dtype=complex
    )
    return Gate("givens", 2, matrix, (theta,))


def XXPhase(theta: float) -> Gate:
    """Two-qubit XX interaction ``exp(-i θ/2 X⊗X)``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    matrix = np.array(
        [[c, 0, 0, -1j * s], [0, c, -1j * s, 0], [0, -1j * s, c, 0], [-1j * s, 0, 0, c]],
        dtype=complex,
    )
    return Gate("xxphase", 2, matrix, (theta,))


def ZZPhase(theta: float) -> Gate:
    """Two-qubit ZZ interaction ``exp(-i θ/2 Z⊗Z)`` (the QAOA cost-layer gate)."""
    phase = np.exp(1j * theta / 2)
    matrix = np.diag([1 / phase, phase, phase, 1 / phase]).astype(complex)
    return Gate("zzphase", 2, matrix, (theta,))


# ---------------------------------------------------------------------------
# Generic constructions
# ---------------------------------------------------------------------------

def controlled(gate: Gate, num_controls: int = 1) -> Gate:
    """Return the controlled version of ``gate`` with ``num_controls`` controls.

    Control qubits come first (most significant); the gate applies to the
    remaining qubits only when every control is ``|1⟩``.
    """
    if num_controls < 1:
        raise ValidationError(f"num_controls must be >= 1, got {num_controls}")
    dim = gate.dim
    total = 2**num_controls * dim
    matrix = np.eye(total, dtype=complex)
    matrix[total - dim :, total - dim :] = gate.matrix
    return Gate(
        name=("c" * num_controls) + gate.name,
        num_qubits=gate.num_qubits + num_controls,
        matrix=matrix,
        params=gate.params,
    )


def gate_from_matrix(matrix: np.ndarray, name: str = "unitary") -> Gate:
    """Wrap an arbitrary unitary matrix as a :class:`Gate`."""
    matrix = np.asarray(matrix, dtype=complex)
    n = check_power_of_two(matrix.shape[0], name="gate dimension")
    if not is_unitary(matrix, atol=1e-7):
        raise ValidationError(f"matrix for gate {name!r} is not unitary")
    return Gate(name, n, matrix)


#: Registry mapping gate names to factories; used by the QASM reader and tests.
GATE_FACTORIES: Dict[str, Callable[..., Gate]] = {
    "id": I,
    "h": H,
    "x": X,
    "y": Y,
    "z": Z,
    "s": S,
    "sdg": SDG,
    "t": T,
    "tdg": TDG,
    "sx": SX,
    "sy": SY,
    "sw": SW,
    "rx": Rx,
    "ry": Ry,
    "rz": Rz,
    "p": Phase,
    "u3": U3,
    "cx": CX,
    "cy": CY,
    "cz": CZ,
    "swap": SWAP,
    "iswap": ISWAP,
    "cp": CPhase,
    "crz": CRz,
    "fsim": FSim,
    "givens": Givens,
    "xxphase": XXPhase,
    "zzphase": ZZPhase,
}
