"""The optimizing pass pipeline run by :meth:`repro.api.Session.compile`.

Order of the passes:

1. **noise folding** first — rewriting unitary channels as gates creates new
   fusion opportunities;
2. **gate fusion** — collapses gate runs (including freshly folded noise)
   into single superoperator tensors and drops identity blocks;
3. **boundary pruning** last — fusion can collapse a prefix into a single
   gate that fixes the input product state, which only then becomes
   removable.

Each pass runs only when *both* the caller's :class:`PassConfig` and the
backend's :class:`PassProfile` enable it; the profile is how a backend vetoes
transformations that would change its semantics (see
:mod:`repro.circuits.passes.config`).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.circuits.circuit import Circuit
from repro.circuits.passes.config import PassConfig, PassProfile, PassStats
from repro.circuits.passes.folding import fold_unitary_channels, merge_adjacent_channels
from repro.circuits.passes.fusion import fuse_gates
from repro.circuits.passes.pruning import prune_boundaries
from repro.xp import declare_seam

declare_seam(__name__, mode="host")  # no array math; declared so the seam lint stays total

__all__ = ["run_passes"]


def run_passes(
    circuit: Circuit,
    config: Optional[PassConfig] = None,
    profile: Optional[PassProfile] = None,
    input_state=None,
    output_state=None,
) -> Tuple[Circuit, PassStats]:
    """Optimize ``circuit`` and report what changed.

    Returns ``(optimized_circuit, stats)``; the input circuit is never
    mutated, and when every pass is disabled (or nothing applies) the
    original circuit object is returned unchanged so downstream fingerprint
    caches are unaffected.
    """
    config = PassConfig() if config is None else config
    profile = PassProfile() if profile is None else profile

    gates_before = circuit.gate_count()
    noises_before = circuit.noise_count()
    current = circuit
    channels_folded = 0
    gates_fused = 0
    sites_pruned = 0

    if config.fold_noise and profile.fold_unitary:
        current, folded = fold_unitary_channels(current)
        channels_folded += folded
    if config.fold_noise and profile.merge_channels:
        current, merged = merge_adjacent_channels(current)
        channels_folded += merged
    if config.fuse_gates and profile.fuse_gates:
        current, gates_fused = fuse_gates(current)
    if config.prune_lightcone and profile.prune:
        current, sites_pruned = prune_boundaries(
            current, input_state=input_state, output_state=output_state
        )

    stats = PassStats(
        gates_fused=gates_fused,
        channels_folded=channels_folded,
        sites_pruned=sites_pruned,
        gates_before=gates_before,
        gates_after=current.gate_count(),
        noises_before=noises_before,
        noises_after=current.noise_count(),
    )
    if not stats.changed():
        return circuit, stats
    return current, stats
