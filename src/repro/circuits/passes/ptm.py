"""Superoperator / Pauli-transfer-matrix conversions for the pass pipeline.

All conversions are phrased in the library's row-major vectorisation
convention (:func:`repro.utils.linalg.vec_row`): a channel with Kraus
operators ``{E_k}`` has the superoperator ``M = Σ_k E_k ⊗ E_k*`` acting on
``vec_row(rho)``.  The Pauli-transfer matrix is the same linear map written
in the normalised Pauli basis, ``R = B† M B`` where the columns of ``B`` are
``vec_row(P_i)/sqrt(d)`` — a unitary change of basis, so superoperator
products and PTM products are interchangeable.

``kraus_from_ptm`` closes the loop: PTM → superoperator → Choi →
eigendecomposition, the same construction as
:meth:`repro.noise.KrausChannel.canonical_kraus`.  It is what lets the
folding pass multiply two channels in PTM form and hand the result back to
the circuit IR as an ordinary :class:`~repro.noise.KrausChannel`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence

from repro.utils.linalg import kron_all
from repro.utils.validation import ValidationError, check_square

from repro.xp import declare_seam
from repro.xp import host as np

declare_seam(__name__, mode="host")

__all__ = [
    "pauli_basis_matrices",
    "superoperator_from_kraus",
    "ptm_from_superoperator",
    "superoperator_from_ptm",
    "choi_from_superoperator",
    "kraus_from_ptm",
    "kraus_from_superoperator",
    "is_identity_ptm",
]

_PAULIS = (
    np.eye(2, dtype=complex),
    np.array([[0, 1], [1, 0]], dtype=complex),
    np.array([[0, -1j], [1j, 0]], dtype=complex),
    np.array([[1, 0], [0, -1]], dtype=complex),
)


@lru_cache(maxsize=8)
def pauli_basis_matrices(num_qubits: int) -> tuple:
    """Return the ``4**k`` tensor-product Pauli matrices for ``k`` qubits.

    Ordered with qubit 0 as the most significant factor, matching the
    big-endian register convention used everywhere else in the library.
    """
    if num_qubits < 1:
        raise ValidationError("pauli basis needs at least one qubit")
    matrices = list(_PAULIS)
    for _ in range(num_qubits - 1):
        matrices = [np.kron(a, p) for a in matrices for p in _PAULIS]
    return tuple(matrices)


@lru_cache(maxsize=8)
def _pauli_change_of_basis(num_qubits: int) -> np.ndarray:
    """Unitary ``B`` with columns ``vec_row(P_i)/sqrt(d)``."""
    d = 2**num_qubits
    columns = [p.reshape(-1) / np.sqrt(d) for p in pauli_basis_matrices(num_qubits)]
    return np.stack(columns, axis=1)


def superoperator_from_kraus(kraus_operators: Sequence[np.ndarray]) -> np.ndarray:
    """Return ``M = Σ_k E_k ⊗ E_k*`` acting on row-major vectorised states."""
    if not kraus_operators:
        raise ValidationError("cannot build a superoperator from zero Kraus operators")
    first = check_square(kraus_operators[0])
    total = np.zeros((first.shape[0] ** 2, first.shape[0] ** 2), dtype=complex)
    for op in kraus_operators:
        arr = np.asarray(op, dtype=complex)
        total += np.kron(arr, arr.conj())
    return total


def ptm_from_superoperator(superoperator: np.ndarray) -> np.ndarray:
    """Rewrite a row-major superoperator in the normalised Pauli basis."""
    arr = check_square(superoperator)
    num_qubits = _superoperator_qubits(arr)
    basis = _pauli_change_of_basis(num_qubits)
    return basis.conj().T @ arr @ basis


def superoperator_from_ptm(ptm: np.ndarray) -> np.ndarray:
    """Invert :func:`ptm_from_superoperator` (``B`` is unitary)."""
    arr = check_square(ptm)
    num_qubits = _superoperator_qubits(arr)
    basis = _pauli_change_of_basis(num_qubits)
    return basis @ arr @ basis.conj().T


def choi_from_superoperator(superoperator: np.ndarray) -> np.ndarray:
    """Reshuffle a row-major superoperator into its Choi matrix.

    With ``M[(i,j),(k,l)]`` mapping ``rho[k,l] -> rho'[i,j]``, the Choi matrix
    is ``C[(i,k),(j,l)] = M[(i,j),(k,l)]`` — for ``M = Σ E ⊗ E*`` this gives
    ``C = Σ vec_row(E) vec_row(E)†``, matching
    :meth:`repro.noise.KrausChannel.choi_matrix`.
    """
    arr = check_square(superoperator)
    d = 2 ** _superoperator_qubits(arr)
    return arr.reshape(d, d, d, d).transpose(0, 2, 1, 3).reshape(d * d, d * d)


def kraus_from_superoperator(superoperator: np.ndarray, atol: float = 1e-12) -> List[np.ndarray]:
    """Extract a canonical Kraus decomposition from a superoperator.

    Eigendecomposes the (Hermitian, for a CP map) Choi matrix and keeps the
    eigenvectors with eigenvalue above ``atol``, largest first — the same
    canonical form :meth:`repro.noise.KrausChannel.canonical_kraus` produces.
    """
    arr = check_square(superoperator)
    d = 2 ** _superoperator_qubits(arr)
    choi = choi_from_superoperator(arr)
    if not np.allclose(choi, choi.conj().T, atol=1e-9):
        raise ValidationError("superoperator is not completely positive (non-Hermitian Choi)")
    eigenvalues, eigenvectors = np.linalg.eigh((choi + choi.conj().T) / 2)
    order = np.argsort(eigenvalues)[::-1]
    operators: List[np.ndarray] = []
    for index in order:
        value = float(eigenvalues[index])
        if value <= atol:
            if value < -1e-7:
                raise ValidationError(
                    f"superoperator is not completely positive (Choi eigenvalue {value:.3e})"
                )
            continue
        operators.append(np.sqrt(value) * eigenvectors[:, index].reshape(d, d))
    if not operators:
        raise ValidationError("superoperator has no Kraus operators above tolerance")
    return operators


def kraus_from_ptm(ptm: np.ndarray, atol: float = 1e-12) -> List[np.ndarray]:
    """Extract a canonical Kraus decomposition from a Pauli-transfer matrix."""
    return kraus_from_superoperator(superoperator_from_ptm(ptm), atol=atol)


def is_identity_ptm(ptm: np.ndarray, atol: float = 1e-9) -> bool:
    """True when the PTM (or superoperator) is the identity map."""
    arr = check_square(ptm)
    return bool(np.allclose(arr, np.eye(arr.shape[0]), atol=atol))


def _superoperator_qubits(matrix: np.ndarray) -> int:
    """Number of qubits of a ``d² x d²`` superoperator/PTM."""
    dim = matrix.shape[0]
    d = int(round(np.sqrt(dim)))
    if d * d != dim:
        raise ValidationError(f"matrix of dimension {dim} is not a superoperator (need d²)")
    num_qubits = int(round(np.log2(d)))
    if 2**num_qubits != d:
        raise ValidationError(f"superoperator dimension {dim} is not 4**k")
    return num_qubits
