"""Deterministic noise folding: remove sampling-free noise sites.

Two transformations, both phrased through :mod:`repro.circuits.passes.ptm`:

``fold_unitary_channels``
    A channel that is *unitary* (a single effective Kraus operator — no
    sampling freedom, every trajectory applies the same map) is rewritten as
    an ordinary gate.  The fusion pass then merges it into neighbouring gate
    tensors, so the site disappears from the doubled network, the trajectory
    stream and Algorithm 1's noise list alike.  Exact for every backend: the
    trajectory sampler draws nothing for it (the dominant Kraus branch has
    probability 1), and Algorithm 1's SVD of a unitary channel has exactly
    one term, so no level-budget choice is lost.

``merge_adjacent_channels``
    Two noise channels acting back-to-back on the same qubit support are
    composed into one channel by multiplying their superoperators (equal, up
    to the unitary Pauli change of basis, to multiplying their PTMs) and
    re-extracting a canonical Kraus form.  Exact for the superoperator
    backends, but it changes the circuit's *noise count* — the quantity
    Algorithm 1's level budget and the per-channel trajectory RNG stream are
    indexed by — so backends opt in via
    :meth:`~repro.backends.SimulationBackend.pass_profile`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.circuits.circuit import Circuit, Instruction
from repro.circuits.gates import Gate
from repro.circuits.passes.fusion import expand_matrix
from repro.circuits.passes.ptm import kraus_from_superoperator, superoperator_from_kraus
from repro.noise.kraus import KrausChannel

from repro.xp import declare_seam
from repro.xp import host as np

declare_seam(__name__, mode="host")

__all__ = ["fold_unitary_channels", "merge_adjacent_channels"]


def fold_unitary_channels(circuit: Circuit) -> Tuple[Circuit, int]:
    """Rewrite unitary (deterministic) noise channels as gates.

    Returns the rewritten circuit and the number of channels folded.
    """
    output: List[Instruction] = []
    folded = 0
    for instruction in circuit:
        operation = instruction.operation
        if not (instruction.is_noise and operation.is_unitary_channel()):
            output.append(instruction)
            continue
        if operation.num_kraus == 1:
            matrix = np.asarray(operation.kraus_operators[0], dtype=complex)
        else:
            # All but one operator are numerically zero; the canonical form
            # isolates the dominant one exactly.
            matrix = operation.canonical_kraus().kraus_operators[0]
        gate = Gate(f"folded_{operation.name}", operation.num_qubits, matrix)
        output.append(Instruction(gate, instruction.qubits))
        folded += 1

    result = Circuit(circuit.num_qubits, name=circuit.name)
    result.extend(output)
    return result, folded


def merge_adjacent_channels(circuit: Circuit) -> Tuple[Circuit, int]:
    """Compose back-to-back same-support noise channels into one channel.

    Returns the rewritten circuit and the number of channels merged away.
    """
    output: List[Instruction] = []
    #: Per qubit, the index in ``output`` of the last instruction touching it.
    last_touch: Dict[int, int] = {}
    merged = 0

    for instruction in circuit:
        support = set(instruction.qubits)
        if instruction.is_noise:
            indices = {last_touch.get(q, -1) for q in support}
            if len(indices) == 1:
                index = next(iter(indices))
                previous = output[index] if index >= 0 else None
                if (
                    previous is not None
                    and previous.is_noise
                    and set(previous.qubits) == support
                ):
                    output[index] = _compose_channels(previous, instruction)
                    merged += 1
                    continue
        position = len(output)
        output.append(instruction)
        for qubit in instruction.qubits:
            last_touch[qubit] = position

    result = Circuit(circuit.num_qubits, name=circuit.name)
    result.extend(output)
    return result, merged


def _compose_channels(first: Instruction, second: Instruction) -> Instruction:
    """Compose two same-support channels (``first`` applied before ``second``)."""
    frame = first.qubits
    kraus_second = [
        expand_matrix(op, second.qubits, frame) for op in second.operation.kraus_operators
    ]
    superop = superoperator_from_kraus(kraus_second) @ superoperator_from_kraus(
        first.operation.kraus_operators
    )
    channel = KrausChannel(
        kraus_from_superoperator(superop),
        name=f"{second.operation.name}∘{first.operation.name}",
    )
    return Instruction(channel, frame)
