"""Optimizing compiler passes run by :meth:`repro.api.Session.compile`.

The pipeline (:func:`run_passes`) applies, in order: deterministic noise
folding (:mod:`~repro.circuits.passes.folding`), superoperator gate fusion
(:mod:`~repro.circuits.passes.fusion`) and boundary/lightcone pruning
(:mod:`~repro.circuits.passes.pruning`).  :class:`PassConfig` carries the
caller's toggles, :class:`PassProfile` a backend's safety contract, and
:class:`PassStats` the per-circuit report surfaced through
``Executable.describe()["passes"]``.  See ``docs/compiler.md`` for the
per-pass invariants.

This package only depends on the circuit/noise IR and linear-algebra
utilities — never on the backend or session layers — so it can be imported
from :mod:`repro.backends.base` without cycles.
"""

from repro.circuits.passes.config import PassConfig, PassProfile, PassStats
from repro.circuits.passes.folding import fold_unitary_channels, merge_adjacent_channels
from repro.circuits.passes.fusion import fuse_gates
from repro.circuits.passes.pipeline import run_passes
from repro.circuits.passes.pruning import prune_boundaries, prune_to_observable_cone

__all__ = [
    "PassConfig",
    "PassProfile",
    "PassStats",
    "fold_unitary_channels",
    "fuse_gates",
    "merge_adjacent_channels",
    "prune_boundaries",
    "prune_to_observable_cone",
    "run_passes",
]
