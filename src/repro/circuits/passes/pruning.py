"""Boundary and lightcone pruning: delete sites that cannot affect the output.

Two entry points:

``prune_boundaries``
    Removes instructions that act trivially against the *fixed boundary
    states* of the task.  A forward sweep tracks the per-qubit product state
    evolved from the input boundary and removes any gate that leaves it
    invariant up to a global phase (``Gψ = e^{iφ}ψ``) or channel that fixes
    it exactly (``E(|ψ⟩⟨ψ|) = |ψ⟩⟨ψ|``); a backward sweep does the adjoint
    analysis from the output boundary (``G†v = λv`` with ``|λ| = 1``;
    ``Σ_k E_k† P E_k = P``).  Both conditions make the removal exact for
    every figure of merit of the form ``tr(P_out E_circuit(ρ_in))`` — global
    phases cancel and the adjoint-fixed-point identity
    ``tr(P E(ρ)) = tr(E†(P) ρ)`` holds for any input.  Dense (non-product)
    boundaries disable the corresponding sweep.

``prune_to_observable_cone``
    Removes every site outside the backward causal cone of an observable's
    support.  Valid because the qubits outside the cone are traced out and
    the adjoint of any trace-preserving map is unital (``E†(I) = I``), so
    dropped sites contribute exactly the identity.  Used per Pauli term by
    :meth:`repro.simulators.TNSimulator.expectation`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.circuits.circuit import Circuit, Instruction
from repro.utils.linalg import kron_all, projector

from repro.xp import declare_seam
from repro.xp import host as np

declare_seam(__name__, mode="host")

__all__ = ["prune_boundaries", "prune_to_observable_cone"]


def _product_factors(state, num_qubits: int) -> Optional[Dict[int, np.ndarray]]:
    """Per-qubit boundary factors, or None when the state is dense/absent."""
    if state is None:
        return None
    from repro.tensornetwork.circuit_to_tn import resolve_product_state

    resolved = resolve_product_state(state, num_qubits)
    if not isinstance(resolved, list):
        return None
    factors: Dict[int, np.ndarray] = {}
    for qubit, factor in enumerate(resolved):
        norm = np.linalg.norm(factor)
        if norm <= 0:
            return None
        factors[qubit] = factor / norm
    return factors


def _local_state(factors: Dict[int, np.ndarray], qubits) -> Optional[np.ndarray]:
    """Kron of the known factors on ``qubits`` (None when any is unknown)."""
    parts = []
    for qubit in qubits:
        factor = factors.get(qubit)
        if factor is None:
            return None
        parts.append(factor)
    return kron_all([part.reshape(2, 1) for part in parts]).ravel()


def _fixes_vector(matrix: np.ndarray, vector: np.ndarray, atol: float) -> bool:
    """True when ``matrix @ vector = e^{iφ} vector`` for a unimodular phase."""
    image = matrix @ vector
    overlap = np.vdot(vector, image)
    if not np.isclose(abs(overlap), 1.0, atol=atol):
        return False
    return bool(np.linalg.norm(image - overlap * vector) < atol)


def _channel_fixes_state(channel, vector: np.ndarray, atol: float) -> bool:
    """True when ``E(|ψ⟩⟨ψ|) = |ψ⟩⟨ψ|`` exactly."""
    rho = projector(vector)
    return bool(np.allclose(channel.apply(rho), rho, atol=atol))


def _channel_adjoint_fixes(channel, vector: np.ndarray, atol: float) -> bool:
    """True when ``E†(|v⟩⟨v|) = |v⟩⟨v|`` (``Σ E_k† P E_k = P``)."""
    p = projector(vector)
    total = sum(op.conj().T @ p @ op for op in channel.kraus_operators)
    return bool(np.allclose(total, p, atol=atol))


def _forward_sweep(
    instructions: List[Instruction],
    factors: Optional[Dict[int, np.ndarray]],
    atol: float,
) -> Tuple[List[Instruction], int]:
    """One pass from the input boundary; returns (kept instructions, removed)."""
    if factors is None:
        return instructions, 0
    factors = dict(factors)
    kept: List[Instruction] = []
    removed = 0
    for instruction in instructions:
        if getattr(instruction.operation, "is_parametric_gate", False):
            # A parametric angle (even a bound one) is a value-dependent
            # rewrite opportunity this pass must provably skip: keep the
            # instruction and stop tracking its qubits' factors.
            for qubit in instruction.qubits:
                factors[qubit] = None
            kept.append(instruction)
            continue
        local = _local_state(factors, instruction.qubits)
        if local is None:
            for qubit in instruction.qubits:
                factors[qubit] = None
            kept.append(instruction)
            continue
        operation = instruction.operation
        if instruction.is_gate:
            if _fixes_vector(operation.matrix, local, atol):
                removed += 1
                continue
            if len(instruction.qubits) == 1:
                image = operation.matrix @ local
                factors[instruction.qubits[0]] = image / np.linalg.norm(image)
            else:
                for qubit in instruction.qubits:
                    factors[qubit] = None
        else:
            if _channel_fixes_state(operation, local, atol):
                removed += 1
                continue
            for qubit in instruction.qubits:
                factors[qubit] = None
        kept.append(instruction)
    return kept, removed


def _backward_sweep(
    instructions: List[Instruction],
    factors: Optional[Dict[int, np.ndarray]],
    atol: float,
) -> Tuple[List[Instruction], int]:
    """One pass from the output boundary; returns (kept instructions, removed)."""
    if factors is None:
        return instructions, 0
    factors = dict(factors)
    kept_reversed: List[Instruction] = []
    removed = 0
    for instruction in reversed(instructions):
        if getattr(instruction.operation, "is_parametric_gate", False):
            # Same barrier rule as the forward sweep (see above).
            for qubit in instruction.qubits:
                factors[qubit] = None
            kept_reversed.append(instruction)
            continue
        local = _local_state(factors, instruction.qubits)
        if local is None:
            for qubit in instruction.qubits:
                factors[qubit] = None
            kept_reversed.append(instruction)
            continue
        operation = instruction.operation
        if instruction.is_gate:
            adjoint = operation.matrix.conj().T
            if _fixes_vector(adjoint, local, atol):
                removed += 1
                continue
            if len(instruction.qubits) == 1:
                image = adjoint @ local
                factors[instruction.qubits[0]] = image / np.linalg.norm(image)
            else:
                for qubit in instruction.qubits:
                    factors[qubit] = None
        else:
            if _channel_adjoint_fixes(operation, local, atol):
                removed += 1
                continue
            for qubit in instruction.qubits:
                factors[qubit] = None
        kept_reversed.append(instruction)
    return list(reversed(kept_reversed)), removed


def prune_boundaries(
    circuit: Circuit,
    input_state=None,
    output_state=None,
    atol: float = 1e-9,
) -> Tuple[Circuit, int]:
    """Remove instructions that act trivially against the task boundaries.

    Iterates forward and backward sweeps to a fixpoint (a backward removal
    can expose a new forward removal and vice versa).  Returns the pruned
    circuit and the number of instructions removed.
    """
    input_factors = _product_factors(input_state, circuit.num_qubits)
    output_factors = _product_factors(output_state, circuit.num_qubits)
    instructions = list(circuit)
    total_removed = 0
    while True:
        instructions, forward_removed = _forward_sweep(instructions, input_factors, atol)
        instructions, backward_removed = _backward_sweep(instructions, output_factors, atol)
        total_removed += forward_removed + backward_removed
        if not (forward_removed or backward_removed):
            break

    if not total_removed:
        return circuit, 0
    pruned = Circuit(circuit.num_qubits, name=circuit.name)
    pruned.extend(instructions)
    return pruned, total_removed


def prune_to_observable_cone(circuit: Circuit, support) -> Tuple[Circuit, int]:
    """Keep only the sites inside the backward causal cone of ``support``.

    ``support`` is the set of qubits the observable acts on.  Returns the
    pruned circuit and the number of instructions removed.
    """
    live = {int(q) for q in support}
    kept_reversed: List[Instruction] = []
    removed = 0
    for instruction in reversed(circuit.instructions):
        if live.intersection(instruction.qubits):
            live.update(instruction.qubits)
            kept_reversed.append(instruction)
        else:
            removed += 1
    if not removed:
        return circuit, 0
    pruned = Circuit(circuit.num_qubits, name=circuit.name)
    pruned.extend(reversed(kept_reversed))
    return pruned, removed
