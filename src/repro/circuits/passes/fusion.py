"""Superoperator gate fusion: collapse runs of adjacent gates into one tensor.

Generalises :func:`repro.circuits.transpile.merge_single_qubit_gates` from
single qubits to arbitrary gate supports.  The pass keeps a *live block* per
region of qubits — the product of every gate merged into it so far — and
folds each incoming gate into an existing block whenever the supports nest:

* same/subset support: the gate multiplies into the covering block;
* superset support: every overlapped block is absorbed into a new block on
  the gate's support (overlapped blocks are pairwise disjoint, so their
  embedded matrices commute and the absorption order is irrelevant);
* partial overlap: the overlapped blocks are flushed to the output first.

Because a block's support is always the support of one of the original
gates, fusion never *increases* gate arity — a circuit whose gates all fit a
backend's arity constraint (e.g. the MPS backend's nearest-neighbour
two-qubit limit) still fits it after fusion.  Noise channels act as
barriers: they flush every block they touch, preserving the gate/noise
interleaving the trajectory sampler and Algorithm 1 depend on.

Blocks that fuse to the identity up to a global phase are dropped outright
(dead-gate elimination); every figure of merit the backends report is
insensitive to global phase, so this is exact.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.circuits.circuit import Circuit, Instruction
from repro.circuits.gates import Gate
from repro.utils.linalg import embed_operator

from repro.xp import declare_seam
from repro.xp import host as np

declare_seam(__name__, mode="host")

__all__ = ["fuse_gates", "expand_matrix", "is_identity_up_to_phase"]


def expand_matrix(
    matrix: np.ndarray, qubits: Sequence[int], target_qubits: Sequence[int]
) -> np.ndarray:
    """Embed an operator on ``qubits`` into the frame spanned by ``target_qubits``.

    ``qubits`` must be a subset of ``target_qubits``; the result acts as
    ``matrix`` on them (in order) and as the identity on the rest, with the
    output axis order following ``target_qubits``.
    """
    target = list(target_qubits)
    return embed_operator(matrix, [target.index(q) for q in qubits], len(target))


def is_identity_up_to_phase(matrix: np.ndarray, atol: float = 1e-9) -> bool:
    """True when ``matrix = e^{iφ} I`` for some global phase ``φ``."""
    arr = np.asarray(matrix, dtype=complex)
    dim = arr.shape[0]
    trace = np.trace(arr)
    if not np.isclose(abs(trace), dim, atol=atol * dim):
        return False
    return bool(np.allclose(arr, (trace / dim) * np.eye(dim), atol=atol))


class _Block:
    """A live fusion block: the running product of gates on one support."""

    __slots__ = ("qubits", "matrix", "count", "order", "first")

    def __init__(self, instruction: Instruction, order: int) -> None:
        self.qubits: Tuple[int, ...] = instruction.qubits
        self.matrix: np.ndarray = np.asarray(instruction.operation.matrix, dtype=complex)
        self.count = 1
        self.order = order
        #: The original instruction, emitted verbatim when nothing fused in.
        self.first = instruction

    def absorb_gate(self, instruction: Instruction) -> None:
        """Multiply a gate whose support is a subset of this block's."""
        self.matrix = (
            expand_matrix(instruction.operation.matrix, instruction.qubits, self.qubits)
            @ self.matrix
        )
        self.count += 1

    def emit(self) -> Instruction | None:
        """Render the block back into an instruction (None = fused to identity)."""
        if is_identity_up_to_phase(self.matrix):
            return None
        if self.count == 1:
            return self.first
        gate = Gate("fused", len(self.qubits), self.matrix)
        return Instruction(gate, self.qubits)


def fuse_gates(circuit: Circuit) -> Tuple[Circuit, int]:
    """Run superoperator gate fusion over ``circuit``.

    Returns the fused circuit and the number of gate instructions removed
    (gates merged into blocks plus blocks dropped as identity).
    """
    owner: Dict[int, _Block] = {}
    output: List[Instruction] = []
    next_order = 0

    def flush(blocks: List[_Block]) -> None:
        for block in sorted(blocks, key=lambda b: b.order):
            emitted = block.emit()
            if emitted is not None:
                output.append(emitted)
            for qubit in block.qubits:
                del owner[qubit]

    for instruction in circuit:
        support = instruction.qubits
        overlapping: List[_Block] = []
        seen: set = set()
        for qubit in support:
            block = owner.get(qubit)
            if block is not None and id(block) not in seen:
                seen.add(id(block))
                overlapping.append(block)

        if instruction.is_noise or getattr(
            instruction.operation, "is_parametric_gate", False
        ):
            # Parametric gates (bound or not) are barriers exactly like noise:
            # fusing a bound value would break the structural identity every
            # binding of one circuit must share, and the bind-equivalence
            # guarantee needs passes to commute with substitution exactly.
            flush(overlapping)
            output.append(instruction)
            continue

        support_set = set(support)
        if len(overlapping) == 1 and support_set <= set(overlapping[0].qubits):
            overlapping[0].absorb_gate(instruction)
            continue
        if overlapping and all(set(b.qubits) <= support_set for b in overlapping):
            # Superset absorption: embed each covered block (pairwise
            # disjoint, so the product order among them is immaterial) and
            # apply the new gate on top.
            merged = _Block(instruction, next_order)
            next_order += 1
            for block in overlapping:
                merged.matrix = merged.matrix @ expand_matrix(
                    block.matrix, block.qubits, support
                )
                merged.count += block.count
                for qubit in block.qubits:
                    del owner[qubit]
            for qubit in support:
                owner[qubit] = merged
            continue
        if overlapping:
            flush(overlapping)
        block = _Block(instruction, next_order)
        next_order += 1
        for qubit in support:
            owner[qubit] = block

    flush(list({id(b): b for b in owner.values()}.values()))

    fused = Circuit(circuit.num_qubits, name=circuit.name)
    fused.extend(output)
    return fused, circuit.gate_count() - fused.gate_count()
