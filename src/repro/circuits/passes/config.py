"""Pass-pipeline configuration: what the caller asks for, what a backend allows.

Two small frozen dataclasses steer the optimizing pipeline that
:meth:`repro.api.Session.compile` runs before backend plan construction:

* :class:`PassConfig` — the *caller's* toggles (one per pass).  Resolved from
  the ``passes=`` argument of the session layer, which accepts ``True`` /
  ``False``, a mapping of individual flags, or an existing config.
* :class:`PassProfile` — the *backend's* safety contract, returned by
  :meth:`repro.backends.SimulationBackend.pass_profile`.  A pass only runs
  when both the caller's config and the backend's profile allow it; e.g.
  channel merging is enabled only for the exact superoperator backends,
  because it changes the noise count Algorithm 1's level semantics and the
  trajectory sampler's RNG stream are defined over.

:class:`PassStats` is the pipeline's report card — what
:meth:`repro.api.Executable.describe` surfaces under ``"passes"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping

from repro.utils.validation import ValidationError
from repro.xp import declare_seam

declare_seam(__name__, mode="host")  # no array math; declared so the seam lint stays total

__all__ = ["PassConfig", "PassProfile", "PassStats"]


@dataclass(frozen=True)
class PassConfig:
    """Caller-side toggles of the compile-time optimizing passes."""

    #: Fuse runs of adjacent gates with compatible qubit support into one
    #: superoperator tensor (and drop blocks that fuse to the identity).
    fuse_gates: bool = True
    #: Fold deterministic noise (unitary channels) into gate tensors and
    #: merge adjacent same-support channels in PTM representation.
    fold_noise: bool = True
    #: Delete gate/noise sites outside the causal cone of the measured
    #: boundary states (and of observables, for expectation values).
    prune_lightcone: bool = True

    _FLAGS = ("fuse_gates", "fold_noise", "prune_lightcone")

    @classmethod
    def resolve(cls, value: Any) -> "PassConfig":
        """Normalise a ``passes=`` argument into a :class:`PassConfig`.

        ``True`` enables every pass, ``False`` disables them all, a mapping
        sets individual flags (unknown keys are rejected), and an existing
        config passes through unchanged.

        >>> PassConfig.resolve(False).enabled()
        False
        >>> PassConfig.resolve({"prune_lightcone": False}).fuse_gates
        True
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, bool):
            return cls(fuse_gates=value, fold_noise=value, prune_lightcone=value)
        if isinstance(value, Mapping):
            unknown = sorted(set(value) - set(cls._FLAGS))
            if unknown:
                raise ValidationError(
                    f"unknown pass flag(s) {', '.join(map(repr, unknown))}; "
                    f"allowed: {', '.join(cls._FLAGS)}"
                )
            return cls(**{key: bool(value[key]) for key in value})
        raise ValidationError(
            "passes must be a bool, a mapping of pass flags, or a PassConfig "
            f"(got {type(value).__name__})"
        )

    def enabled(self) -> bool:
        """True when at least one pass is switched on."""
        return self.fuse_gates or self.fold_noise or self.prune_lightcone

    def to_dict(self) -> Dict[str, bool]:
        """Plain-dict form (stored in ``Executable.describe()['passes']``)."""
        return {flag: getattr(self, flag) for flag in self._FLAGS}


@dataclass(frozen=True)
class PassProfile:
    """Backend-side contract: which transformations preserve *its* semantics.

    The defaults are the universally safe subset: gate fusion, folding
    unitary channels into gates, and boundary/lightcone pruning are exact for
    every backend (all the library's figures of merit are insensitive to
    global phase).  ``merge_channels`` composes adjacent same-support Kraus
    channels into one channel; that is exact for the superoperator backends
    but changes the noise count ``N`` that Algorithm 1's level budget and the
    trajectory sampler's per-channel RNG stream are defined over, so it
    defaults to off and is opted into per adapter.
    """

    fuse_gates: bool = True
    fold_unitary: bool = True
    merge_channels: bool = False
    prune: bool = True


@dataclass(frozen=True)
class PassStats:
    """What the pipeline did to one circuit (reported via ``describe()``)."""

    gates_fused: int = 0
    channels_folded: int = 0
    sites_pruned: int = 0
    gates_before: int = 0
    gates_after: int = 0
    noises_before: int = 0
    noises_after: int = 0

    def changed(self) -> bool:
        """True when any pass modified the circuit."""
        return bool(self.gates_fused or self.channels_folded or self.sites_pruned)

    def to_dict(self) -> Dict[str, int]:
        """Plain-dict form for reports and snapshot tests."""
        return {
            "gates_fused": self.gates_fused,
            "channels_folded": self.channels_folded,
            "sites_pruned": self.sites_pruned,
            "gates_before": self.gates_before,
            "gates_after": self.gates_after,
            "noises_before": self.noises_before,
            "noises_after": self.noises_after,
        }
