"""Minimal OpenQASM 2.0 export/import.

Only the gate subset used by this library is supported (the gates in
:data:`repro.circuits.gates.GATE_FACTORIES` that have a direct OpenQASM
spelling).  Noise channels cannot be expressed in OpenQASM 2.0 and are
rejected on export.

The goal is interoperability for the *ideal* benchmark circuits — e.g. dumping
a generated QAOA circuit so it can be cross-checked in another simulator —
not a full QASM toolchain.

Parametric circuits round-trip symbolically: an *unbound*
:class:`~repro.circuits.parameters.ParametricGate` serialises its linear
expressions as text (``rz(2.0*gamma0+0.1) q[3];``) and parses back to an
equal parametric gate.  A *bound* parametric gate serialises its evaluated
literal angles — the binding is baked in and the symbolic identity is lost,
which matches what any external QASM consumer would see anyway.
"""

from __future__ import annotations

import ast
import math
import re
from typing import List

from repro.circuits import gates as glib
from repro.circuits.circuit import Circuit
from repro.circuits.parameters import (
    Parameter,
    ParameterExpression,
    ParametricGate,
)
from repro.utils.validation import ValidationError

__all__ = ["to_qasm", "from_qasm", "QasmError"]


class QasmError(ValidationError):
    """Raised when a circuit cannot be converted to or from OpenQASM."""


#: Gates with a native OpenQASM 2.0 spelling.  Everything else is decomposed
#: or rejected.
_NATIVE = {
    "id", "h", "x", "y", "z", "s", "sdg", "t", "tdg",
    "rx", "ry", "rz", "p", "u3", "cx", "cy", "cz", "swap", "cp", "crz",
}

_QASM_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


def _param_text(param) -> str:
    # repr() is the shortest string that round-trips the float exactly, so
    # parse -> emit -> parse is the identity (%.12g silently truncated the
    # mantissa, which the verify fuzz corpus surfaced as a round-trip drift).
    # Symbolic expressions use their canonical structure key, whose
    # coefficients are repr()s too, so they round-trip to an equal expression.
    if isinstance(param, (Parameter, ParameterExpression)):
        return param.structure_key()
    return repr(float(param))


def _format_params(params) -> str:
    if not params:
        return ""
    return "(" + ",".join(_param_text(p) for p in params) + ")"


def to_qasm(circuit: Circuit) -> str:
    """Serialise a noiseless circuit as OpenQASM 2.0 text."""
    if not circuit.is_noiseless():
        raise QasmError("OpenQASM 2.0 cannot represent noise channels; export the ideal circuit")
    lines: List[str] = [_QASM_HEADER + f"qreg q[{circuit.num_qubits}];"]
    for inst in circuit:
        name = inst.operation.name
        params = inst.operation.params
        if name not in _NATIVE:
            # Decompose unsupported 2-qubit diagonal/rotation gates into native ones.
            if name == "zzphase":
                (theta,) = params
                a, b = inst.qubits
                lines.append(f"cx q[{a}],q[{b}];")
                lines.append(f"rz({_param_text(theta)}) q[{b}];")
                lines.append(f"cx q[{a}],q[{b}];")
                continue
            if name == "sx":
                (q,) = inst.qubits
                lines.append(f"rx({math.pi / 2!r}) q[{q}];")
                continue
            if name == "sy":
                (q,) = inst.qubits
                lines.append(f"ry({math.pi / 2!r}) q[{q}];")
                continue
            raise QasmError(f"gate {name!r} has no OpenQASM 2.0 spelling")
        args = ",".join(f"q[{q}]" for q in inst.qubits)
        lines.append(f"{name}{_format_params(params)} {args};")
    return "\n".join(lines) + "\n"


_INSTR_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*(?:\((?P<params>[^)]*)\))?\s+(?P<args>.+);$"
)
_QREG_RE = re.compile(r"^qreg\s+(?P<name>\w+)\[(?P<size>\d+)\];$")


def _eval_param(text: str):
    """Parse a QASM parameter: arithmetic over numbers, ``pi``, and identifiers.

    Purely numeric expressions evaluate to a float.  Expressions mentioning
    identifiers other than ``pi`` build a linear
    :class:`~repro.circuits.parameters.ParameterExpression` over those names
    (``2.0*gamma0+0.1``); non-linear forms are rejected.
    """
    try:
        tree = ast.parse(text.strip(), mode="eval")
    except SyntaxError as exc:
        raise QasmError(f"cannot parse parameter {text!r}") from exc

    def walk(node):
        if isinstance(node, ast.Expression):
            return walk(node.body)
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            return float(node.value)
        if isinstance(node, ast.Name):
            if node.id == "pi":
                return math.pi
            return Parameter(node.id)._expr()
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            operand = walk(node.operand)
            return -operand if isinstance(node.op, ast.USub) else operand
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)
        ):
            left, right = walk(node.left), walk(node.right)
            try:
                if isinstance(node.op, ast.Add):
                    return left + right
                if isinstance(node.op, ast.Sub):
                    return left - right
                if isinstance(node.op, ast.Mult):
                    return left * right
                return left / right
            except (ValidationError, ZeroDivisionError) as exc:
                raise QasmError(f"unsupported parameter expression {text!r}") from exc
        raise QasmError(f"unsupported parameter expression {text!r}")

    value = walk(tree)
    if isinstance(value, ParameterExpression):
        if value.parameters:
            return value
        return float(value.const)
    return float(value)


def from_qasm(text: str) -> Circuit:
    """Parse OpenQASM 2.0 text produced by :func:`to_qasm` (or a compatible subset)."""
    num_qubits = None
    body: List[tuple] = []
    for raw_line in text.splitlines():
        line = raw_line.split("//")[0].strip()
        if not line or line.startswith(("OPENQASM", "include", "creg", "barrier", "measure")):
            continue
        qreg = _QREG_RE.match(line)
        if qreg:
            num_qubits = int(qreg.group("size"))
            continue
        match = _INSTR_RE.match(line)
        if not match:
            raise QasmError(f"cannot parse line {line!r}")
        name = match.group("name").lower()
        params = (
            tuple(_eval_param(p) for p in match.group("params").split(","))
            if match.group("params")
            else ()
        )
        qubits = tuple(
            int(re.search(r"\[(\d+)\]", arg).group(1))
            for arg in match.group("args").split(",")
        )
        body.append((name, params, qubits))

    if num_qubits is None:
        raise QasmError("no qreg declaration found")
    circuit = Circuit(num_qubits, name="from_qasm")
    for name, params, qubits in body:
        factory = glib.GATE_FACTORIES.get(name)
        if factory is None:
            raise QasmError(f"unknown gate {name!r}")
        if any(isinstance(p, ParameterExpression) for p in params):
            circuit.append(ParametricGate(name, params), qubits)
            continue
        gate = factory(*params) if params else factory()
        circuit.append(gate, qubits)
    return circuit
