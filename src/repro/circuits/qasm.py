"""Minimal OpenQASM 2.0 export/import.

Only the gate subset used by this library is supported (the gates in
:data:`repro.circuits.gates.GATE_FACTORIES` that have a direct OpenQASM
spelling).  Noise channels cannot be expressed in OpenQASM 2.0 and are
rejected on export.

The goal is interoperability for the *ideal* benchmark circuits — e.g. dumping
a generated QAOA circuit so it can be cross-checked in another simulator —
not a full QASM toolchain.
"""

from __future__ import annotations

import math
import re
from typing import List

from repro.circuits import gates as glib
from repro.circuits.circuit import Circuit
from repro.utils.validation import ValidationError

__all__ = ["to_qasm", "from_qasm", "QasmError"]


class QasmError(ValidationError):
    """Raised when a circuit cannot be converted to or from OpenQASM."""


#: Gates with a native OpenQASM 2.0 spelling.  Everything else is decomposed
#: or rejected.
_NATIVE = {
    "id", "h", "x", "y", "z", "s", "sdg", "t", "tdg",
    "rx", "ry", "rz", "p", "u3", "cx", "cy", "cz", "swap", "cp", "crz",
}

_QASM_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


def _format_params(params) -> str:
    # repr() is the shortest string that round-trips the float exactly, so
    # parse -> emit -> parse is the identity (%.12g silently truncated the
    # mantissa, which the verify fuzz corpus surfaced as a round-trip drift).
    if not params:
        return ""
    return "(" + ",".join(repr(float(p)) for p in params) + ")"


def to_qasm(circuit: Circuit) -> str:
    """Serialise a noiseless circuit as OpenQASM 2.0 text."""
    if not circuit.is_noiseless():
        raise QasmError("OpenQASM 2.0 cannot represent noise channels; export the ideal circuit")
    lines: List[str] = [_QASM_HEADER + f"qreg q[{circuit.num_qubits}];"]
    for inst in circuit:
        name = inst.operation.name
        params = inst.operation.params
        if name not in _NATIVE:
            # Decompose unsupported 2-qubit diagonal/rotation gates into native ones.
            if name == "zzphase":
                (theta,) = params
                a, b = inst.qubits
                lines.append(f"cx q[{a}],q[{b}];")
                lines.append(f"rz({float(theta)!r}) q[{b}];")
                lines.append(f"cx q[{a}],q[{b}];")
                continue
            if name == "sx":
                (q,) = inst.qubits
                lines.append(f"rx({math.pi / 2!r}) q[{q}];")
                continue
            if name == "sy":
                (q,) = inst.qubits
                lines.append(f"ry({math.pi / 2!r}) q[{q}];")
                continue
            raise QasmError(f"gate {name!r} has no OpenQASM 2.0 spelling")
        args = ",".join(f"q[{q}]" for q in inst.qubits)
        lines.append(f"{name}{_format_params(params)} {args};")
    return "\n".join(lines) + "\n"


_INSTR_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*(?:\((?P<params>[^)]*)\))?\s+(?P<args>.+);$"
)
_QREG_RE = re.compile(r"^qreg\s+(?P<name>\w+)\[(?P<size>\d+)\];$")


def _eval_param(text: str) -> float:
    """Evaluate a numeric QASM parameter expression (numbers, pi, + - * /)."""
    allowed = set("0123456789.+-*/() epi")
    expr = text.strip().replace("pi", str(math.pi))
    if not set(expr) <= allowed:
        raise QasmError(f"unsupported parameter expression {text!r}")
    try:
        return float(eval(expr, {"__builtins__": {}}, {}))  # noqa: S307 - sanitised above
    except Exception as exc:  # pragma: no cover - defensive
        raise QasmError(f"could not evaluate parameter {text!r}") from exc


def from_qasm(text: str) -> Circuit:
    """Parse OpenQASM 2.0 text produced by :func:`to_qasm` (or a compatible subset)."""
    num_qubits = None
    body: List[tuple] = []
    for raw_line in text.splitlines():
        line = raw_line.split("//")[0].strip()
        if not line or line.startswith(("OPENQASM", "include", "creg", "barrier", "measure")):
            continue
        qreg = _QREG_RE.match(line)
        if qreg:
            num_qubits = int(qreg.group("size"))
            continue
        match = _INSTR_RE.match(line)
        if not match:
            raise QasmError(f"cannot parse line {line!r}")
        name = match.group("name").lower()
        params = (
            tuple(_eval_param(p) for p in match.group("params").split(","))
            if match.group("params")
            else ()
        )
        qubits = tuple(
            int(re.search(r"\[(\d+)\]", arg).group(1))
            for arg in match.group("args").split(",")
        )
        body.append((name, params, qubits))

    if num_qubits is None:
        raise QasmError("no qreg declaration found")
    circuit = Circuit(num_qubits, name="from_qasm")
    for name, params, qubits in body:
        factory = glib.GATE_FACTORIES.get(name)
        if factory is None:
            raise QasmError(f"unknown gate {name!r}")
        gate = factory(*params) if params else factory()
        circuit.append(gate, qubits)
    return circuit
