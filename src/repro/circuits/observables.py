"""Pauli-sum observables.

Used by the noisy-expectation extension (``TNSimulator.expectation``), the
QAOA/VQE examples and the ATPG utilities.  An observable is a weighted sum of
Pauli strings ``O = Σ_m c_m P_m`` with real coefficients; each Pauli string is
stored sparsely as ``{qubit: 'X'|'Y'|'Z'}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.circuits.pauli import pauli_matrix
from repro.utils.linalg import kron_all
from repro.utils.validation import ValidationError

__all__ = ["PauliTerm", "PauliObservable", "ising_cost_observable"]


@dataclass(frozen=True)
class PauliTerm:
    """A single weighted Pauli string, stored sparsely."""

    coefficient: float
    paulis: Tuple[Tuple[int, str], ...]

    def __post_init__(self) -> None:
        seen = set()
        cleaned: List[Tuple[int, str]] = []
        for qubit, label in self.paulis:
            qubit = int(qubit)
            label = label.upper()
            if label not in ("X", "Y", "Z"):
                raise ValidationError(f"invalid Pauli label {label!r} (identity factors are implicit)")
            if qubit in seen:
                raise ValidationError(f"qubit {qubit} appears twice in a Pauli term")
            seen.add(qubit)
            cleaned.append((qubit, label))
        object.__setattr__(self, "paulis", tuple(sorted(cleaned)))
        object.__setattr__(self, "coefficient", float(self.coefficient))

    @property
    def support(self) -> Tuple[int, ...]:
        """Qubits the term acts on non-trivially."""
        return tuple(q for q, _ in self.paulis)

    @property
    def weight(self) -> int:
        """Number of non-identity factors (Pauli weight)."""
        return len(self.paulis)

    def operator_map(self) -> Dict[int, np.ndarray]:
        """Return ``{qubit: 2x2 matrix}`` for the non-identity factors."""
        return {qubit: pauli_matrix(label) for qubit, label in self.paulis}

    def label(self, num_qubits: int) -> str:
        """Dense string label such as ``"IZZI"``."""
        chars = ["I"] * num_qubits
        for qubit, pauli in self.paulis:
            if qubit >= num_qubits:
                raise ValidationError(f"term touches qubit {qubit} outside a {num_qubits}-qubit register")
            chars[qubit] = pauli
        return "".join(chars)


class PauliObservable:
    """A real-weighted sum of Pauli strings ``Σ_m c_m P_m``."""

    def __init__(self, terms: Iterable[PauliTerm] = (), constant: float = 0.0) -> None:
        self.terms: List[PauliTerm] = list(terms)
        self.constant = float(constant)

    # ------------------------------------------------------------------
    @classmethod
    def from_strings(
        cls, weighted_strings: Sequence[Tuple[float, str]], constant: float = 0.0
    ) -> "PauliObservable":
        """Build from dense labels, e.g. ``[(0.5, "ZZI"), (-1.0, "IXX")]``."""
        terms = []
        for coefficient, label in weighted_strings:
            paulis = tuple(
                (qubit, char) for qubit, char in enumerate(label.upper()) if char != "I"
            )
            if any(char not in "IXYZ" for char in label.upper()):
                raise ValidationError(f"invalid Pauli string {label!r}")
            terms.append(PauliTerm(coefficient, paulis))
        return cls(terms, constant=constant)

    def add_term(self, coefficient: float, paulis: Mapping[int, str]) -> "PauliObservable":
        """Append a term given as ``{qubit: label}`` and return ``self``."""
        self.terms.append(PauliTerm(coefficient, tuple(paulis.items())))
        return self

    # ------------------------------------------------------------------
    @property
    def num_terms(self) -> int:
        """Number of Pauli terms (excluding the constant)."""
        return len(self.terms)

    def support(self) -> Tuple[int, ...]:
        """All qubits touched by any term."""
        qubits = sorted({q for term in self.terms for q in term.support})
        return tuple(qubits)

    def matrix(self, num_qubits: int) -> np.ndarray:
        """Dense matrix (small registers only; used for validation)."""
        if num_qubits > 12:
            raise ValidationError("dense observable construction limited to 12 qubits")
        dim = 2**num_qubits
        total = self.constant * np.eye(dim, dtype=complex)
        for term in self.terms:
            factors = []
            op_map = term.operator_map()
            for qubit in range(num_qubits):
                factors.append(op_map.get(qubit, np.eye(2, dtype=complex)))
            total += term.coefficient * kron_all(factors)
        return total

    def __iter__(self):
        return iter(self.terms)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PauliObservable terms={self.num_terms} constant={self.constant:g}>"


def ising_cost_observable(edges: Sequence[Tuple[int, int, float]]) -> PauliObservable:
    """The Ising cost Hamiltonian ``Σ w_ij Z_i Z_j`` of a QAOA problem."""
    observable = PauliObservable()
    for u, v, weight in edges:
        observable.add_term(float(weight), {int(u): "Z", int(v): "Z"})
    return observable
