"""Pauli-string utilities: operators and exponentials.

Used by the QAOA and Hartree-Fock circuit generators to decompose
interaction terms (``ZZ``, Givens rotations) into the native gate set
(CZ/CNOT + single-qubit rotations), and by tests/examples that compute
cost-Hamiltonian expectation values.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.circuits import gates as glib
from repro.circuits.circuit import Circuit
from repro.circuits.parameters import Parameter, ParameterExpression
from repro.utils.linalg import kron_all
from repro.utils.validation import ValidationError

__all__ = ["pauli_matrix", "pauli_string_matrix", "pauli_exponential_circuit"]

_PAULI: Dict[str, np.ndarray] = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


def pauli_matrix(label: str) -> np.ndarray:
    """Return the 2x2 matrix of a single Pauli label (I, X, Y or Z)."""
    label = label.upper()
    if label not in _PAULI:
        raise ValidationError(f"unknown Pauli label {label!r}")
    return _PAULI[label].copy()


def pauli_string_matrix(pauli: str) -> np.ndarray:
    """Return the dense matrix of a Pauli string such as ``"XIZY"`` (qubit 0 first)."""
    if not pauli:
        raise ValidationError("Pauli string must be non-empty")
    return kron_all(pauli_matrix(c) for c in pauli.upper())


def pauli_exponential_circuit(
    pauli: str,
    angle: float,
    qubits: Sequence[int] | None = None,
    num_qubits: int | None = None,
) -> Circuit:
    """Return a circuit implementing ``exp(-i * angle/2 * P)`` for a Pauli string ``P``.

    The construction is the textbook one: basis-change each non-identity
    factor to ``Z``, accumulate parity with a CNOT ladder, apply ``Rz(angle)``
    on the last active qubit, then undo the ladder and basis changes.

    Parameters
    ----------
    pauli:
        Pauli string, e.g. ``"ZZ"`` or ``"XY"``; the character at position
        ``i`` acts on ``qubits[i]``.
    angle:
        Rotation angle; the circuit implements ``exp(-i * angle/2 * P)``.
    qubits:
        Register qubits the string acts on (defaults to ``0..len(pauli)-1``).
    num_qubits:
        Register size (defaults to ``max(qubits) + 1``).
    """
    pauli = pauli.upper()
    if not pauli or any(c not in "IXYZ" for c in pauli):
        raise ValidationError(f"invalid Pauli string {pauli!r}")
    if qubits is None:
        qubits = list(range(len(pauli)))
    qubits = [int(q) for q in qubits]
    if len(qubits) != len(pauli):
        raise ValidationError("qubits must have the same length as the Pauli string")
    if num_qubits is None:
        num_qubits = max(qubits) + 1

    circuit = Circuit(num_qubits, name=f"exp({pauli})")
    active = [(q, c) for q, c in zip(qubits, pauli) if c != "I"]
    if not active:
        # exp(-i angle/2 I) is a global phase; represent it on qubit 0 so the
        # circuit still reproduces the exact matrix.
        if isinstance(angle, (Parameter, ParameterExpression)):
            raise ValidationError(
                "an all-identity Pauli string needs a concrete angle "
                "(a global phase has no parametric gate form)"
            )
        circuit.append(glib.Gate("gphase", 1, np.exp(-1j * angle / 2) * np.eye(2)), (qubits[0],))
        return circuit

    # Basis changes so that B Z B† = P with B = H for X and B = S·H for Y.
    # The pre-rotation block applies B† (circuit order: S† then H for Y).
    for q, c in active:
        if c == "X":
            circuit.h(q)
        elif c == "Y":
            circuit.append(glib.SDG(), (q,))
            circuit.h(q)
    # CNOT ladder accumulating parity onto the last active qubit.
    chain = [q for q, _ in active]
    for a, b in zip(chain[:-1], chain[1:]):
        circuit.cx(a, b)
    circuit.rz(angle, chain[-1])
    for a, b in reversed(list(zip(chain[:-1], chain[1:]))):
        circuit.cx(a, b)
    for q, c in active:
        if c == "X":
            circuit.h(q)
        elif c == "Y":
            circuit.h(q)
            circuit.append(glib.S(), (q,))
    return circuit
