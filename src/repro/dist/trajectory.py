"""Continuous perf trajectory: append-only history + regression gate.

Every benchmark run records machine-readable reports (``pytest benchmarks/
--json OUT`` writes ``OUT/BENCH_<name>.json``).  This module folds those
reports into a checked-in, append-only trajectory file —
``benchmarks/trajectory.jsonl``, one JSON row per **bench x metric x
commit** — and gates fresh runs against the *last recorded* point of every
tracked metric, so a speed win recorded once stays protected forever instead
of eroding one noisy run at a time.

Row schema::

    {"bench": "compile_amortization", "metric": "aggregate_speedup",
     "value": 2.49, "direction": "higher", "commit": "1669452",
     "recorded_at": "2026-08-07T02:29:21", "source": "baseline"}

Metrics are extracted by :func:`metrics_from_report`:

* any speedup-style report (``data`` rows with a ``method == "aggregate"``
  entry) yields ``aggregate_speedup`` — machine-relative ratios, so they
  transfer across runners;
* the serving-throughput report yields one ``req_per_s_c<N>`` metric per
  concurrency level — machine-absolute, so the gate's tolerance for them is
  much looser (see :data:`METRIC_RULES`).

The gate (:func:`check`, driven by ``benchmarks/check_regression.py`` in CI)
fails when a fresh value falls beyond the metric's tolerated slack of the
last recorded value — for *every* bench x metric present in the trajectory,
and also when a tracked report is missing from the fresh run entirely (a
deleted benchmark must be retired from the trajectory deliberately, not
silently).
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Tuple

from repro.utils.validation import ValidationError

__all__ = [
    "METRIC_RULES",
    "MetricRule",
    "TrajectoryError",
    "append_run",
    "check",
    "latest",
    "load_trajectory",
    "metrics_from_report",
]


class TrajectoryError(ValidationError):
    """Raised for malformed trajectory files or rows."""


@dataclass(frozen=True)
class MetricRule:
    """How one metric is gated against its last recorded value.

    ``direction`` — ``"higher"`` (bigger is better) or ``"lower"``.
    ``ratio`` — tolerated slack: a higher-is-better fresh value must reach
    ``ratio * last`` (and ``floor``, when set); a lower-is-better value must
    stay under ``last / ratio``.  The slack absorbs shared-runner noise: CI
    machines are slow and loud, so the gate catches *regressions*, not
    jitter.
    """

    direction: str = "higher"
    ratio: float = 0.6
    floor: float | None = None


#: Gate rules by metric name prefix (first match wins).  Speedup ratios are
#: machine-relative and fairly tight; req/s is machine-absolute, so its band
#: must span the spread between a dev box and a loaded CI runner.
METRIC_RULES: Tuple[Tuple[str, MetricRule], ...] = (
    ("aggregate_speedup", MetricRule(direction="higher", ratio=0.6)),
    ("req_per_s", MetricRule(direction="higher", ratio=0.2)),
)

#: Absolute floors for specific bench/metric pairs: the core claims ("serving
#: a compiled plan beats recompiling", "bind beats compile-per-iteration
#: >= 5x") must hold outright, not merely relative to history.
METRIC_FLOORS: Mapping[Tuple[str, str], float] = {
    ("compile_amortization", "aggregate_speedup"): 1.5,
    ("bind_amortization", "aggregate_speedup"): 5.0,
}


def rule_for(bench: str, metric: str) -> MetricRule:
    """The gate rule applying to one bench x metric pair."""
    for prefix, rule in METRIC_RULES:
        if metric.startswith(prefix):
            floor = METRIC_FLOORS.get((bench, metric))
            if floor is not None:
                return MetricRule(direction=rule.direction, ratio=rule.ratio, floor=floor)
            return rule
    return MetricRule()


def metrics_from_report(report: Mapping[str, Any]) -> Dict[str, float]:
    """Extract the tracked metrics of one ``BENCH_*.json`` report payload."""
    metrics: Dict[str, float] = {}
    data = report.get("data")
    if isinstance(data, list):
        for row in data:
            if isinstance(row, dict) and row.get("method") == "aggregate":
                value = row.get("speedup")
                if value is not None:
                    metrics["aggregate_speedup"] = float(value)
    if isinstance(data, dict):
        for level in data.get("levels") or []:
            if isinstance(level, dict) and level.get("req_per_s") is not None:
                metrics[f"req_per_s_c{level.get('clients')}"] = float(level["req_per_s"])
    return metrics


def _reports_in(directory: Path) -> Dict[str, Dict[str, Any]]:
    reports = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        try:
            reports[name] = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise TrajectoryError(f"{path}: invalid JSON benchmark report: {exc}") from exc
    return reports


def load_trajectory(path: str | Path) -> List[Dict[str, Any]]:
    """Read the trajectory rows (append order preserved)."""
    path = Path(path)
    if not path.exists():
        return []
    rows = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TrajectoryError(f"{path}:{number}: invalid trajectory row: {exc}") from exc
        for key in ("bench", "metric", "value"):
            if key not in row:
                raise TrajectoryError(f"{path}:{number}: trajectory row missing {key!r}")
        rows.append(row)
    return rows


def latest(rows: Iterable[Mapping[str, Any]]) -> Dict[Tuple[str, str], Dict[str, Any]]:
    """Last recorded row per (bench, metric) — what fresh runs gate against."""
    last: Dict[Tuple[str, str], Dict[str, Any]] = {}
    for row in rows:
        last[(row["bench"], row["metric"])] = dict(row)
    return last


def git_commit() -> str:
    """Short commit id of the working tree, or ``"unknown"`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def append_run(
    trajectory_path: str | Path,
    fresh_dir: str | Path,
    commit: str | None = None,
    source: str = "local",
) -> List[Dict[str, Any]]:
    """Fold a fresh benchmark directory into the trajectory (append-only).

    One row per bench x metric found under ``fresh_dir``; rows whose
    (bench, metric, commit) triple is already recorded are skipped, so
    re-recording the same commit is a no-op (idempotent).  Returns the rows
    actually appended.
    """
    trajectory_path = Path(trajectory_path)
    fresh_dir = Path(fresh_dir)
    commit = commit or git_commit()
    existing = {
        (row["bench"], row["metric"], row.get("commit"))
        for row in load_trajectory(trajectory_path)
    }
    appended: List[Dict[str, Any]] = []
    for bench, report in sorted(_reports_in(fresh_dir).items()):
        recorded_at = report.get("recorded_at") or time.strftime("%Y-%m-%dT%H:%M:%S")
        for metric, value in sorted(metrics_from_report(report).items()):
            if (bench, metric, commit) in existing:
                continue
            appended.append(
                {
                    "bench": bench,
                    "metric": metric,
                    "value": value,
                    "direction": rule_for(bench, metric).direction,
                    "commit": commit,
                    "recorded_at": recorded_at,
                    "source": source,
                }
            )
    if appended:
        trajectory_path.parent.mkdir(parents=True, exist_ok=True)
        with trajectory_path.open("a") as handle:
            for row in appended:
                handle.write(json.dumps(row, sort_keys=True) + "\n")
    return appended


@dataclass
class GateOutcome:
    """One gated bench x metric comparison."""

    bench: str
    metric: str
    fresh: float | None
    last: float
    threshold: float
    ok: bool
    detail: str


def check(
    trajectory_path: str | Path,
    fresh_dir: str | Path,
) -> List[GateOutcome]:
    """Gate every recorded bench x metric against the fresh reports.

    A missing fresh report, a report that lost a tracked metric, or a value
    beyond the metric's tolerated slack all produce a failing outcome; the
    caller (``benchmarks/check_regression.py``) turns any failure into a
    nonzero exit.
    """
    rows = load_trajectory(trajectory_path)
    if not rows:
        raise TrajectoryError(
            f"no trajectory recorded at {trajectory_path}; seed it with "
            "benchmarks/check_regression.py --record"
        )
    reports = _reports_in(Path(fresh_dir))
    fresh_metrics = {name: metrics_from_report(report) for name, report in reports.items()}
    outcomes: List[GateOutcome] = []
    for (bench, metric), row in sorted(latest(rows).items()):
        last_value = float(row["value"])
        rule = rule_for(bench, metric)
        if rule.direction == "higher":
            threshold = rule.ratio * last_value
            if rule.floor is not None:
                threshold = max(threshold, rule.floor)
        else:
            threshold = last_value / rule.ratio
        if bench not in fresh_metrics:
            outcomes.append(GateOutcome(
                bench, metric, None, last_value, threshold, False,
                f"missing fresh report BENCH_{bench}.json",
            ))
            continue
        fresh_value = fresh_metrics[bench].get(metric)
        if fresh_value is None:
            outcomes.append(GateOutcome(
                bench, metric, None, last_value, threshold, False,
                "fresh report no longer carries this metric",
            ))
            continue
        if rule.direction == "higher":
            ok = fresh_value >= threshold
            comparison = ">="
        else:
            ok = fresh_value <= threshold
            comparison = "<="
        outcomes.append(GateOutcome(
            bench, metric, fresh_value, last_value, threshold, ok,
            f"fresh {fresh_value:.4g} {comparison} threshold {threshold:.4g} "
            f"(last recorded {last_value:.4g} @ {row.get('commit', '?')})",
        ))
    return outcomes
