"""Merge partial sweep record files into one canonical stream.

``merge_records`` combines any mix of shard files (``--shard K/N`` workers),
plain partial runs and previously-merged files into one sweep JSONL file that
downstream tools (``sweep report``, resume, the benchmarks) read exactly like
the output of a single-process run.  It validates rather than trusts:

* **spec-hash validation** — every input must carry the same spec hash; a
  shard of a *different* grid cannot be folded in silently;
* **shard-membership validation** — a file claiming to be shard ``K/N`` may
  only contain cells the partitioner assigns to ``K/N`` (catches files run
  with mismatched ``--shard`` flags or renamed outputs);
* **duplicate-cell conflict detection** — the same cell recorded by two
  inputs must agree on every deterministic field (value, seed, status, ...);
  records differing only in timing/dispatch provenance deduplicate, anything
  else raises :class:`MergeConflictError` naming the cell and fields;
* **idempotent re-merge** — merge output is a pure function of the input
  records: re-running a merge, or merging a merged file with the parts it
  came from, produces byte-identical output.

Because cells are identity-seeded, the merged deterministic content is
bit-identical to the same spec run unsharded; :func:`records_digest` hashes
exactly that content (volatile fields stripped, cell order normalised) so
"sharded == unsharded" is a one-line string comparison.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.dist.partition import ShardSpec, shard_index
from repro.sweeps.records import RecordError, RecordScan, scan_records
from repro.sweeps.spec import SweepSpec, load_spec

__all__ = [
    "MergeConflictError",
    "MergeError",
    "MergeResult",
    "VOLATILE_KEYS",
    "canonical_cell",
    "combine_scans",
    "merge_records",
    "records_digest",
]

#: Per-record fields that legitimately differ between runs of the same cell:
#: wall-clock timing and which worker produced the record.  Everything else
#: is a deterministic function of the spec, so two records for one cell must
#: agree on it.
VOLATILE_KEYS = ("elapsed_seconds", "shard")


class MergeError(RecordError):
    """Raised when record files cannot be merged (mismatched or misplaced)."""


class MergeConflictError(MergeError):
    """Raised when two inputs recorded *different* results for one cell."""


def canonical_cell(record: Mapping[str, Any]) -> Dict[str, Any]:
    """The deterministic content of a cell record (volatile fields stripped)."""
    return {key: value for key, value in record.items() if key not in VOLATILE_KEYS}


def _conflicting_keys(a: Mapping[str, Any], b: Mapping[str, Any]) -> List[str]:
    keys = set(a) | set(b)
    return sorted(
        key for key in keys if key not in VOLATILE_KEYS and a.get(key) != b.get(key)
    )


@dataclass
class MergeResult:
    """Outcome of :func:`merge_records`."""

    path: Path
    spec: SweepSpec
    #: Last-merged record per cell id, in canonical grid order.
    cells: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Cells recorded by more than one input with identical deterministic
    #: content (deduplicated, first occurrence kept).
    duplicates: List[str] = field(default_factory=list)
    #: Cell ids of the spec grid with no record yet (partial merge).
    missing: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.missing


def combine_scans(
    scans: Sequence[RecordScan],
) -> Tuple[SweepSpec, Dict[str, Dict[str, Any]], List[str]]:
    """Validate and fold record scans into ``(spec, cells, duplicate_ids)``.

    Shared by :func:`merge_records` and the multi-file ``sweep report`` view;
    raises :class:`MergeError` / :class:`MergeConflictError` on mismatched
    specs, misplaced shard files or conflicting duplicates.
    """
    if not scans:
        raise MergeError("nothing to merge: no record files given")
    spec_hash = scans[0].header.get("spec_hash")
    spec = load_spec(scans[0].header["spec"])
    if spec.spec_hash() != spec_hash:
        raise MergeError(
            f"{scans[0].path}: header spec does not hash to its spec_hash "
            f"({spec.spec_hash()} != {spec_hash}); file is corrupt or hand-edited"
        )
    cells: Dict[str, Dict[str, Any]] = {}
    sources: Dict[str, Path] = {}
    duplicates: List[str] = []
    for scan in scans:
        if scan.header.get("spec_hash") != spec_hash:
            raise MergeError(
                f"{scan.path} was produced by a different spec "
                f"(hash {scan.header.get('spec_hash')} != {spec_hash}); "
                "only records of the same grid can merge"
            )
        shard_label = scan.header.get("shard")
        shard = ShardSpec.parse(shard_label) if shard_label else None
        for cell_id, record in scan.cells.items():
            if shard is not None:
                owner = shard_index(cell_id, shard.count, spec_hash)
                if owner != shard.index:
                    raise MergeError(
                        f"{scan.path}: cell {cell_id!r} belongs to shard "
                        f"{owner}/{shard.count}, but the file claims shard "
                        f"{shard} (mismatched --shard flags?)"
                    )
            if cell_id in cells:
                conflicts = _conflicting_keys(cells[cell_id], record)
                if conflicts:
                    raise MergeConflictError(
                        f"cell {cell_id!r} was recorded with different results by "
                        f"{sources[cell_id]} and {scan.path} "
                        f"(conflicting fields: {', '.join(conflicts)}); "
                        "the inputs are not shards of one run"
                    )
                duplicates.append(cell_id)
                continue
            cells[cell_id] = dict(record)
            sources[cell_id] = scan.path
    return spec, cells, duplicates


def merge_records(
    inputs: Sequence[str | Path],
    out_path: str | Path,
) -> MergeResult:
    """Merge sweep record files into one canonical file at ``out_path``.

    The output is a normal sweep JSONL stream: the (unsharded) header first,
    then one record per recorded cell in canonical grid order, each keeping
    its ``shard`` provenance.  It is resumable (``sweep run`` fills in any
    missing cells) and re-mergeable (``out_path`` may itself be an input of a
    later merge).  Writing is atomic — the file appears only when the merge
    validated — so ``out_path`` may also be listed among the inputs.
    """
    scans = [scan_records(path) for path in inputs]
    spec, cells, duplicates = combine_scans(scans)
    header = {
        "kind": "header",
        "name": spec.name,
        "spec_hash": spec.spec_hash(),
        "spec": spec.to_dict(),
    }
    grid_ids = [cell.cell_id for cell in spec.cells()]
    unknown = sorted(set(cells) - set(grid_ids))
    if unknown:
        raise MergeError(
            f"record(s) for cell(s) not in the spec grid: {', '.join(unknown[:5])}"
            + (" ..." if len(unknown) > 5 else "")
        )
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = out_path.with_name(out_path.name + ".tmp")
    with tmp_path.open("w") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for cell_id in grid_ids:
            if cell_id in cells:
                handle.write(json.dumps(cells[cell_id], sort_keys=True) + "\n")
    tmp_path.replace(out_path)
    ordered = {cell_id: cells[cell_id] for cell_id in grid_ids if cell_id in cells}
    return MergeResult(
        path=out_path,
        spec=spec,
        cells=ordered,
        duplicates=sorted(set(duplicates)),
        missing=[cell_id for cell_id in grid_ids if cell_id not in cells],
    )


def records_digest(path: str | Path) -> str:
    """Content digest of a sweep record file's deterministic outcome.

    Hashes the spec hash plus every cell's :func:`canonical_cell` payload in
    cell-id order, so two files containing the same results — regardless of
    execution order, sharding, resumes or timings — digest identically.
    This is the oracle behind the "sharded run merges bit-identical to the
    unsharded run" guarantee (CI's sharded-sweep smoke asserts it).
    """
    scan = scan_records(path)
    payload = {
        "spec_hash": scan.header.get("spec_hash"),
        "cells": [
            canonical_cell(scan.cells[cell_id]) for cell_id in sorted(scan.cells)
        ],
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()
