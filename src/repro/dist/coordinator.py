"""Crash-safe shard dispatch: run a sweep as N independent worker processes.

The coordinator partitions a sweep spec into N shards (deterministically —
see :mod:`repro.dist.partition`), launches one ``repro sweep run SPEC
--shard K/N`` subprocess per shard, and watches their partial record files
rather than trusting their exit status:

* a worker that **dies mid-cell** (OOM kill, machine loss, the injected
  ``--crash-after`` drill) leaves a resumable partial file with at worst one
  torn final line; the next dispatch round truncates the tear and re-runs
  only the missing cells (:mod:`repro.sweeps.records`);
* a worker whose cells **failed** (transient exceptions) is re-dispatched
  too — resume retries non-final statuses;
* every re-dispatched cell keeps its original identity-derived seed, so the
  recovered record is bit-identical to what the crashed worker would have
  written.

After all shards complete (or ``max_rounds`` dispatch rounds), the partial
files merge into one canonical record file (:func:`repro.dist.merge.merge_records`)
indistinguishable — modulo timing/dispatch provenance — from a
single-process run of the same spec.

Workers are real OS processes (``sys.executable -m repro.cli``), so the
coordinator exercises exactly the code path a multi-machine deployment runs
per box; pointing the workers at a shared filesystem is the only difference.
"""

from __future__ import annotations

import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping

from repro.dist.merge import MergeResult, merge_records
from repro.dist.partition import ShardSpec, partition_cells
from repro.sweeps.records import FINAL_STATUSES, RecordError, scan_records
from repro.sweeps.spec import SweepSpec, load_spec
from repro.utils.validation import ValidationError

__all__ = ["DistCoordinator", "DistError", "DistResult", "ShardState", "run_sharded"]


class DistError(ValidationError):
    """Raised when a sharded run cannot be driven to completion."""


@dataclass
class ShardState:
    """Dispatch bookkeeping for one shard."""

    shard: ShardSpec
    path: Path
    #: Cell ids the partitioner assigns to this shard.
    expected: List[str]
    attempts: int = 0
    #: Exit code of the most recent worker process (None before the first).
    returncode: int | None = None

    def pending(self) -> List[str]:
        """Cells still missing a final record in the shard's partial file."""
        if not self.path.exists():
            return list(self.expected)
        try:
            scan = scan_records(self.path)
        except RecordError:
            # No readable header yet (worker died before its first write):
            # everything is pending and the next round starts the file over.
            return list(self.expected)
        done = {
            cell_id
            for cell_id, record in scan.cells.items()
            if record.get("status") in FINAL_STATUSES
        }
        return [cell_id for cell_id in self.expected if cell_id not in done]


@dataclass
class DistResult:
    """Outcome of one :meth:`DistCoordinator.run` call."""

    spec: SweepSpec
    out_path: Path
    merge: MergeResult
    shards: List[ShardState] = field(default_factory=list)
    rounds: int = 0
    elapsed_seconds: float = 0.0

    @property
    def records(self) -> Dict[str, Dict[str, Any]]:
        return self.merge.cells


class DistCoordinator:
    """Partition a sweep spec, dispatch shard workers, re-dispatch, merge.

    Parameters
    ----------
    spec_path:
        The sweep spec *file* (YAML/JSON) — workers are subprocesses, so the
        spec must be addressable by path.
    shards:
        Number of shards N; one worker process per shard per round.
    out_path:
        The merged record file (``sweep_results/<name>.jsonl`` by default).
        Partial files live next to it as ``<stem>.shard-K-of-N.jsonl``.
    workers_per_shard:
        ``--workers`` forwarded to each worker's process pool (default: the
        spec's ``workers`` entry, else 1).
    max_rounds:
        Dispatch rounds before giving up on shards that keep failing.
    inject_crash:
        Fault injection for the drills: ``{shard_index: crash_after_cells}``
        passed as ``--crash-after`` to those shards' *first* attempt only.
    """

    def __init__(
        self,
        spec_path: str | Path,
        shards: int,
        out_path: str | Path | None = None,
        workers_per_shard: int | None = None,
        max_rounds: int = 3,
        inject_crash: Mapping[int, int] | None = None,
        python: str | None = None,
    ):
        if shards < 1:
            raise ValidationError(f"shard count must be >= 1, got {shards}")
        if max_rounds < 1:
            raise ValidationError(f"max_rounds must be >= 1, got {max_rounds}")
        self.spec_path = Path(spec_path)
        self.spec = load_spec(self.spec_path)
        self.shards = shards
        self.out_path = Path(
            out_path
            if out_path is not None
            else Path("sweep_results") / f"{self.spec.name}.jsonl"
        )
        self.workers_per_shard = workers_per_shard
        self.max_rounds = max_rounds
        self.inject_crash = dict(inject_crash or {})
        bad = sorted(k for k in self.inject_crash if not 1 <= k <= shards)
        if bad:
            raise ValidationError(
                f"inject_crash names shard(s) {bad} outside 1..{shards}"
            )
        self.python = python or sys.executable

    # ------------------------------------------------------------------
    def _shard_path(self, shard: ShardSpec) -> Path:
        return self.out_path.with_name(
            f"{self.out_path.stem}.shard-{shard.index}-of-{shard.count}.jsonl"
        )

    def _worker_command(self, state: ShardState) -> List[str]:
        command = [
            self.python,
            "-m",
            "repro.cli",
            "sweep",
            "run",
            str(self.spec_path),
            "--shard",
            str(state.shard),
            "--out",
            str(state.path),
        ]
        if self.workers_per_shard is not None:
            command += ["--workers", str(self.workers_per_shard)]
        if state.attempts == 0 and state.shard.index in self.inject_crash:
            command += ["--crash-after", str(self.inject_crash[state.shard.index])]
        return command

    def _launch(self, state: ShardState) -> subprocess.Popen:
        # Workers must import repro without installation: prepend the parent
        # of the repro package to PYTHONPATH (a no-op for installed trees).
        import os

        import repro

        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not existing else os.pathsep.join((src, existing))
        # Build the command before bumping attempts: crash injection keys off
        # "is this the first attempt" and must see the pre-launch count.
        command = self._worker_command(state)
        state.attempts += 1
        return subprocess.Popen(
            command,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            env=env,
        )

    # ------------------------------------------------------------------
    def run(self, progress: Callable[[str], None] | None = None) -> DistResult:
        """Dispatch, re-dispatch until complete (or ``max_rounds``), merge."""
        start = time.perf_counter()
        note = progress or (lambda message: None)
        partition = partition_cells(self.spec, self.shards)
        states = [
            ShardState(
                shard=ShardSpec(index=index, count=self.shards),
                path=self._shard_path(ShardSpec(index=index, count=self.shards)),
                expected=[cell.cell_id for cell in cells],
            )
            for index, cells in sorted(partition.items())
        ]
        total = sum(len(state.expected) for state in states)
        note(
            f"dispatching {total} cells as {self.shards} shard(s): "
            + ", ".join(f"{state.shard}={len(state.expected)}" for state in states)
        )
        rounds = 0
        for round_number in range(1, self.max_rounds + 1):
            pending = [state for state in states if state.pending()]
            if not pending:
                break
            rounds = round_number
            note(
                f"round {round_number}: {len(pending)} shard(s), "
                f"{sum(len(state.pending()) for state in pending)} cell(s) pending"
            )
            procs = [(state, self._launch(state)) for state in pending]
            for state, proc in procs:
                _, stderr = proc.communicate()
                state.returncode = proc.returncode
                left = len(state.pending())
                status = "ok" if proc.returncode == 0 and not left else (
                    f"exit {proc.returncode}, {left} cell(s) left"
                )
                note(f"  shard {state.shard}: {status}")
                if proc.returncode not in (0, 1) and left and stderr:
                    # Exit 1 is the runner's own "some cells failed" signal
                    # (retried next round); anything else with work left is
                    # worth surfacing — it may be systematic (bad spec path,
                    # import error) rather than a crash.
                    tail = stderr.decode(errors="replace").strip().splitlines()[-3:]
                    for line in tail:
                        note(f"    {line}")
        incomplete = {
            str(state.shard): state.pending() for state in states if state.pending()
        }
        if incomplete:
            detail = "; ".join(
                f"shard {shard}: {len(cells)} cell(s) missing/failed"
                for shard, cells in incomplete.items()
            )
            raise DistError(
                f"sharded sweep did not complete after {self.max_rounds} round(s): "
                f"{detail} (partial files kept for inspection: "
                f"{', '.join(str(state.path) for state in states)})"
            )
        # Shards whose slice of the grid is empty never start a worker, so
        # they have no partial file to merge.
        merge = merge_records(
            [state.path for state in states if state.path.exists()], self.out_path
        )
        note(
            f"merged {len(merge.cells)} record(s) -> {self.out_path}"
            + (f" ({len(merge.duplicates)} duplicate(s) deduplicated)" if merge.duplicates else "")
        )
        return DistResult(
            spec=self.spec,
            out_path=self.out_path,
            merge=merge,
            shards=states,
            rounds=rounds,
            elapsed_seconds=time.perf_counter() - start,
        )


def run_sharded(
    spec_path: str | Path,
    shards: int,
    out_path: str | Path | None = None,
    workers_per_shard: int | None = None,
    max_rounds: int = 3,
    inject_crash: Mapping[int, int] | None = None,
    progress: Callable[[str], None] | None = None,
) -> DistResult:
    """One-call convenience wrapper over :class:`DistCoordinator`."""
    coordinator = DistCoordinator(
        spec_path,
        shards,
        out_path=out_path,
        workers_per_shard=workers_per_shard,
        max_rounds=max_rounds,
        inject_crash=inject_crash,
    )
    return coordinator.run(progress=progress)
