"""Distributed sweep execution: shard dispatch, crash-safe merge, perf trajectory.

``repro.dist`` turns the declarative sweep layer (:mod:`repro.sweeps`) into a
multi-process / multi-machine system without changing a single cell's result:

* :mod:`repro.dist.partition` — a deterministic, spec-hash-stable partitioner
  splitting a sweep grid into K-of-N shards (``repro sweep run SPEC
  --shard K/N``); every cell belongs to exactly one shard, and the assignment
  depends only on the spec hash and the cell's identity, never on ordering or
  which machine asks;
* :mod:`repro.dist.coordinator` — runs all N shards as independent worker
  processes, detects crashed/incomplete shards from their partial record
  files (torn final lines included) and re-dispatches them; because cells are
  identity-seeded, a re-dispatched cell reproduces exactly the record the
  crashed worker would have written;
* :mod:`repro.dist.merge` — combines partial record files into one canonical
  sweep file with spec-hash and shard-membership validation, duplicate-cell
  conflict detection and idempotent re-merge; the merged records are
  bit-identical (module timing/dispatch provenance) to the same spec run
  unsharded, certified by :func:`repro.dist.merge.records_digest`;
* :mod:`repro.dist.trajectory` — folds ``BENCH_*.json`` benchmark reports
  into an append-only perf trajectory (one row per bench x metric x commit)
  and gates fresh runs against the last recorded point
  (``benchmarks/check_regression.py``).

Typical session (one box, four processes)::

    python -m repro.cli sweep run benchmarks/specs/table3_large.yaml --shards 4

or across machines, one shard each, then a merge::

    python -m repro.cli sweep run spec.yaml --shard 1/4 --out part1.jsonl
    ...
    python -m repro.cli sweep merge merged.jsonl part*.jsonl

See ``docs/distributed.md`` for the full workflow.
"""

from repro.dist.coordinator import DistCoordinator, DistError, DistResult, run_sharded
from repro.dist.merge import (
    MergeConflictError,
    MergeError,
    MergeResult,
    canonical_cell,
    merge_records,
    records_digest,
)
from repro.dist.partition import ShardSpec, partition_cells, shard_cells, shard_index

__all__ = [
    "DistCoordinator",
    "DistError",
    "DistResult",
    "MergeConflictError",
    "MergeError",
    "MergeResult",
    "ShardSpec",
    "canonical_cell",
    "merge_records",
    "partition_cells",
    "records_digest",
    "run_sharded",
    "shard_cells",
    "shard_index",
]
