"""Deterministic K-of-N shard partitioning of a sweep grid.

A shard is named ``K/N`` (1-based index K of N shards, e.g. ``2/4``).  Cell
assignment hashes the *spec hash* and the cell's identity label::

    shard_index(cell_id, count, spec_hash) == stable_seed(spec_hash, "shard", cell_id) % count

so the partition is

* **deterministic** — the same spec file yields the same partition on every
  machine, Python version and run (no ``hash()`` randomisation, no ordering
  dependence);
* **spec-hash-stable** — two workers given the same spec agree on who owns
  which cell without any coordination, and a merged result can re-verify that
  every record sits in the shard that claims it;
* **complete and disjoint** — every cell lands in exactly one shard (the
  union of all shards is the full grid; shards never overlap), which the
  merge step and ``tests/dist`` assert.

Doctest::

    >>> from repro.dist.partition import ShardSpec
    >>> ShardSpec.parse("2/4")
    ShardSpec(index=2, count=4)
    >>> str(ShardSpec(index=2, count=4))
    '2/4'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.sweeps.spec import SweepCell, SweepSpec, stable_seed
from repro.utils.validation import ValidationError

__all__ = ["ShardSpec", "partition_cells", "shard_cells", "shard_index"]


@dataclass(frozen=True)
class ShardSpec:
    """One shard of an N-way partition: 1-based ``index`` of ``count``."""

    index: int
    count: int

    def __post_init__(self):
        if self.count < 1:
            raise ValidationError(f"shard count must be >= 1, got {self.count}")
        if not 1 <= self.index <= self.count:
            raise ValidationError(
                f"shard index must be in 1..{self.count}, got {self.index}"
            )

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI form ``K/N`` (e.g. ``--shard 2/4``)."""
        index, sep, count = str(text).partition("/")
        if not sep:
            raise ValidationError(f"--shard expects K/N (e.g. 2/4), got {text!r}")
        try:
            return cls(index=int(index), count=int(count))
        except ValueError as exc:
            raise ValidationError(f"--shard expects integers K/N, got {text!r}") from exc

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


def shard_index(cell_id: str, count: int, spec_hash: str) -> int:
    """The 1-based shard owning ``cell_id`` under an N-way partition."""
    if count < 1:
        raise ValidationError(f"shard count must be >= 1, got {count}")
    return stable_seed(spec_hash, "shard", cell_id) % count + 1


def shard_cells(spec: SweepSpec, shard: ShardSpec) -> List[SweepCell]:
    """The cells of ``spec`` owned by ``shard``, in canonical grid order."""
    spec_hash = spec.spec_hash()
    return [
        cell
        for cell in spec.cells()
        if shard_index(cell.cell_id, shard.count, spec_hash) == shard.index
    ]


def partition_cells(spec: SweepSpec, count: int) -> Dict[int, List[SweepCell]]:
    """The full N-way partition: ``{shard_index: cells}`` covering every shard.

    Every shard index appears (possibly with an empty cell list, when the
    grid is smaller than N), so a coordinator can dispatch exactly ``count``
    workers without special-casing.
    """
    spec_hash = spec.spec_hash()
    partition: Dict[int, List[SweepCell]] = {index: [] for index in range(1, count + 1)}
    for cell in spec.cells():
        partition[shard_index(cell.cell_id, count, spec_hash)].append(cell)
    return partition
