"""Standard quantum noise channels.

Every factory returns a validated :class:`~repro.noise.kraus.KrausChannel`.
The depolarizing channel follows the paper's parameterisation

``E(rho) = (1 − p) rho + p/3 (X rho X + Y rho Y + Z rho Z)``,

whose noise rate (see :mod:`repro.noise.metrics`) is ``2p``.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.noise.kraus import KrausChannel
from repro.utils.validation import ValidationError, check_probability

__all__ = [
    "CHANNEL_FACTORIES",
    "depolarizing_channel",
    "bit_flip_channel",
    "phase_flip_channel",
    "bit_phase_flip_channel",
    "pauli_channel",
    "amplitude_damping_channel",
    "generalized_amplitude_damping_channel",
    "phase_damping_channel",
    "two_qubit_depolarizing_channel",
    "coherent_overrotation_channel",
]

_I = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)
_PAULIS = (_I, _X, _Y, _Z)


def depolarizing_channel(p: float) -> KrausChannel:
    """Single-qubit depolarizing channel with error probability ``p``.

    Kraus form ``{√(1−p) I, √(p/3) X, √(p/3) Y, √(p/3) Z}`` exactly as in the
    paper's preliminary section.
    """
    p = check_probability(p, "p")
    ops = [math.sqrt(1.0 - p) * _I]
    if p > 0:
        ops.extend(math.sqrt(p / 3.0) * pauli for pauli in (_X, _Y, _Z))
    return KrausChannel(ops, name=f"depolarizing(p={p:g})")


def bit_flip_channel(p: float) -> KrausChannel:
    """Bit-flip channel: X applied with probability ``p``."""
    p = check_probability(p, "p")
    ops = [math.sqrt(1.0 - p) * _I]
    if p > 0:
        ops.append(math.sqrt(p) * _X)
    return KrausChannel(ops, name=f"bit_flip(p={p:g})")


def phase_flip_channel(p: float) -> KrausChannel:
    """Phase-flip channel: Z applied with probability ``p``."""
    p = check_probability(p, "p")
    ops = [math.sqrt(1.0 - p) * _I]
    if p > 0:
        ops.append(math.sqrt(p) * _Z)
    return KrausChannel(ops, name=f"phase_flip(p={p:g})")


def bit_phase_flip_channel(p: float) -> KrausChannel:
    """Bit-phase-flip channel: Y applied with probability ``p``."""
    p = check_probability(p, "p")
    ops = [math.sqrt(1.0 - p) * _I]
    if p > 0:
        ops.append(math.sqrt(p) * _Y)
    return KrausChannel(ops, name=f"bit_phase_flip(p={p:g})")


def pauli_channel(px: float, py: float, pz: float) -> KrausChannel:
    """General single-qubit Pauli channel with X/Y/Z error probabilities."""
    px, py, pz = (check_probability(v, n) for v, n in ((px, "px"), (py, "py"), (pz, "pz")))
    total = px + py + pz
    if total > 1.0 + 1e-12:
        raise ValidationError(f"Pauli probabilities sum to {total} > 1")
    ops = [math.sqrt(max(1.0 - total, 0.0)) * _I]
    for prob, pauli in zip((px, py, pz), (_X, _Y, _Z)):
        if prob > 0:
            ops.append(math.sqrt(prob) * pauli)
    return KrausChannel(ops, name=f"pauli(px={px:g},py={py:g},pz={pz:g})")


def amplitude_damping_channel(gamma: float) -> KrausChannel:
    """Amplitude damping (T1 relaxation towards ``|0⟩``) with decay ``gamma``."""
    gamma = check_probability(gamma, "gamma")
    k0 = np.array([[1, 0], [0, math.sqrt(1.0 - gamma)]], dtype=complex)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=complex)
    ops = [k0] + ([k1] if gamma > 0 else [])
    return KrausChannel(ops, name=f"amplitude_damping(γ={gamma:g})")


def generalized_amplitude_damping_channel(gamma: float, excited_population: float) -> KrausChannel:
    """Amplitude damping towards a thermal state with excited population ``n``."""
    gamma = check_probability(gamma, "gamma")
    n = check_probability(excited_population, "excited_population")
    sq = math.sqrt
    k0 = sq(1 - n) * np.array([[1, 0], [0, sq(1 - gamma)]], dtype=complex)
    k1 = sq(1 - n) * np.array([[0, sq(gamma)], [0, 0]], dtype=complex)
    k2 = sq(n) * np.array([[sq(1 - gamma), 0], [0, 1]], dtype=complex)
    k3 = sq(n) * np.array([[0, 0], [sq(gamma), 0]], dtype=complex)
    ops = [op for op in (k0, k1, k2, k3) if np.linalg.norm(op) > 0]
    return KrausChannel(ops, name=f"gad(γ={gamma:g},n={n:g})")


def phase_damping_channel(lam: float) -> KrausChannel:
    """Phase damping (pure dephasing) with parameter ``lam``."""
    lam = check_probability(lam, "lambda")
    k0 = np.array([[1, 0], [0, math.sqrt(1.0 - lam)]], dtype=complex)
    k1 = np.array([[0, 0], [0, math.sqrt(lam)]], dtype=complex)
    ops = [k0] + ([k1] if lam > 0 else [])
    return KrausChannel(ops, name=f"phase_damping(λ={lam:g})")


def two_qubit_depolarizing_channel(p: float) -> KrausChannel:
    """Two-qubit depolarizing channel: a uniform non-identity Pauli pair with probability ``p``."""
    p = check_probability(p, "p")
    ops = [math.sqrt(1.0 - p) * np.eye(4, dtype=complex)]
    if p > 0:
        weight = math.sqrt(p / 15.0)
        for i, a in enumerate(_PAULIS):
            for j, b in enumerate(_PAULIS):
                if i == 0 and j == 0:
                    continue
                ops.append(weight * np.kron(a, b))
    return KrausChannel(ops, name=f"depolarizing2(p={p:g})")


def coherent_overrotation_channel(theta: float, axis: str = "z") -> KrausChannel:
    """Coherent over-rotation error: a small unitary rotation treated as noise.

    Useful in tests and ablations because it is a *unitary* channel whose
    distance from the identity is controlled by ``theta``.
    """
    axis = axis.lower()
    generators = {"x": _X, "y": _Y, "z": _Z}
    if axis not in generators:
        raise ValidationError(f"axis must be one of x, y, z; got {axis!r}")
    gen = generators[axis]
    unitary = math.cos(theta / 2) * _I - 1j * math.sin(theta / 2) * gen
    return KrausChannel([unitary], name=f"overrotation({axis},θ={theta:g})")


#: The single-parameter channels selectable by name in the CLI (``--channel``)
#: and in sweep-spec noise axes — the one place the name→factory mapping lives.
CHANNEL_FACTORIES = {
    "depolarizing": depolarizing_channel,
    "amplitude_damping": amplitude_damping_channel,
    "phase_damping": phase_damping_channel,
}
