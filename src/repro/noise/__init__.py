"""Quantum noise: Kraus channels, standard noise models and metrics."""

from repro.noise.channels import (
    CHANNEL_FACTORIES,
    amplitude_damping_channel,
    bit_flip_channel,
    bit_phase_flip_channel,
    coherent_overrotation_channel,
    depolarizing_channel,
    generalized_amplitude_damping_channel,
    pauli_channel,
    phase_damping_channel,
    phase_flip_channel,
    two_qubit_depolarizing_channel,
)
from repro.noise.kraus import KrausChannel
from repro.noise.metrics import (
    average_gate_fidelity,
    channel_distance,
    diamond_norm_upper_bound,
    noise_rate,
    process_fidelity,
)
from repro.noise.noise_model import NoiseModel, insert_noise_after_gates
from repro.noise.readout import ReadoutErrorModel
from repro.noise.superconducting import (
    SYCAMORE_LIKE_SPEC,
    SuperconductingNoiseSpec,
    thermal_relaxation_channel,
)

__all__ = [
    "CHANNEL_FACTORIES",
    "KrausChannel",
    "NoiseModel",
    "insert_noise_after_gates",
    "depolarizing_channel",
    "bit_flip_channel",
    "phase_flip_channel",
    "bit_phase_flip_channel",
    "pauli_channel",
    "amplitude_damping_channel",
    "generalized_amplitude_damping_channel",
    "phase_damping_channel",
    "two_qubit_depolarizing_channel",
    "coherent_overrotation_channel",
    "noise_rate",
    "channel_distance",
    "process_fidelity",
    "average_gate_fidelity",
    "diamond_norm_upper_bound",
    "thermal_relaxation_channel",
    "SuperconductingNoiseSpec",
    "SYCAMORE_LIKE_SPEC",
    "ReadoutErrorModel",
]
