"""Noise metrics.

The central quantity in the paper is the *noise rate* of a channel ``E``:

``rate(E) = ‖M_E − I‖``

where ``M_E = Σ_k E_k ⊗ E_k*`` is the matrix (superoperator) representation
and ``‖·‖`` the spectral norm.  For the depolarizing channel with parameter
``p`` the rate is ``2p`` (checked in the test suite).

Additional standard channel metrics (process fidelity, average gate fidelity,
diamond-norm upper bound) are provided for the analysis utilities and the
extended experiments.
"""

from __future__ import annotations

import numpy as np

from repro.noise.kraus import KrausChannel
from repro.utils.linalg import operator_norm, trace_norm

__all__ = [
    "noise_rate",
    "process_fidelity",
    "average_gate_fidelity",
    "diamond_norm_upper_bound",
    "channel_distance",
]


def noise_rate(channel: KrausChannel) -> float:
    """Return the paper's noise rate ``‖M_E − I‖`` (spectral norm)."""
    m = channel.matrix_representation()
    return operator_norm(m - np.eye(m.shape[0]))


def channel_distance(channel_a: KrausChannel, channel_b: KrausChannel) -> float:
    """Spectral-norm distance between the matrix representations of two channels."""
    ma = channel_a.matrix_representation()
    mb = channel_b.matrix_representation()
    if ma.shape != mb.shape:
        raise ValueError("channels act on different dimensions")
    return operator_norm(ma - mb)


def process_fidelity(channel: KrausChannel, target_unitary: np.ndarray | None = None) -> float:
    """Process fidelity of ``channel`` with respect to ``target_unitary`` (identity by default).

    ``F_pro = ⟨Φ| (E ⊗ id)(|Φ⟩⟨Φ|) |Φ⟩`` where ``|Φ⟩`` is the maximally
    entangled state; computed as ``Σ_k |tr(U† E_k)|² / d²``.
    """
    dim = channel.dim
    target = np.eye(dim, dtype=complex) if target_unitary is None else np.asarray(target_unitary)
    total = 0.0
    for op in channel.kraus_operators:
        total += abs(np.trace(target.conj().T @ op)) ** 2
    return float(total / dim**2)


def average_gate_fidelity(channel: KrausChannel, target_unitary: np.ndarray | None = None) -> float:
    """Average gate fidelity ``(d·F_pro + 1)/(d + 1)``."""
    dim = channel.dim
    f_pro = process_fidelity(channel, target_unitary)
    return float((dim * f_pro + 1.0) / (dim + 1.0))


def diamond_norm_upper_bound(channel_a: KrausChannel, channel_b: KrausChannel) -> float:
    """A cheap upper bound on the diamond distance between two channels.

    Uses ``‖E_A − E_B‖_◇ ≤ d · ‖J(E_A) − J(E_B)‖_tr`` where ``J`` is the Choi
    matrix normalised to trace ``1`` and ``d`` the input dimension.  This is
    loose but adequate for sanity checks and sorting channels by severity.
    """
    if channel_a.dim != channel_b.dim:
        raise ValueError("channels act on different dimensions")
    dim = channel_a.dim
    choi_a = channel_a.choi_matrix() / dim
    choi_b = channel_b.choi_matrix() / dim
    return float(dim * trace_norm(choi_a - choi_b))
