"""Kraus-operator representation of quantum channels.

A quantum channel (super-operator) ``E`` acts on density matrices as

``E(rho) = Σ_k E_k rho E_k†``  with the completeness condition ``Σ_k E_k† E_k = I``.

:class:`KrausChannel` stores the Kraus matrices, validates the completeness
condition, and provides the operations the rest of the library needs:
applying the channel to density matrices, composing and tensoring channels,
and converting to the superoperator (matrix) representation used by the
paper's doubled tensor-network diagram.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.utils.linalg import dagger, kron_all, operator_norm
from repro.utils.validation import ValidationError, check_power_of_two, check_square

__all__ = ["KrausChannel"]


class KrausChannel:
    """A completely-positive trace-preserving (CPTP) map in Kraus form."""

    def __init__(
        self,
        kraus_operators: Sequence[np.ndarray],
        name: str = "channel",
        atol: float = 1e-7,
        validate: bool = True,
    ) -> None:
        operators = [check_square(op, name=f"Kraus operator of {name}") for op in kraus_operators]
        if not operators:
            raise ValidationError(f"channel {name!r} needs at least one Kraus operator")
        dim = operators[0].shape[0]
        for op in operators:
            if op.shape[0] != dim:
                raise ValidationError(f"channel {name!r} has Kraus operators of mixed dimension")
        num_qubits = check_power_of_two(dim, name=f"dimension of {name}")

        self.name = str(name)
        self.num_qubits = num_qubits
        self._kraus: Tuple[np.ndarray, ...] = tuple(operators)
        if validate:
            total = sum(dagger(op) @ op for op in operators)
            if not np.allclose(total, np.eye(dim), atol=atol):
                raise ValidationError(
                    f"channel {self.name!r} is not trace preserving: "
                    f"Σ E_k† E_k deviates from identity by {operator_norm(total - np.eye(dim)):.3e}"
                )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def kraus_operators(self) -> Tuple[np.ndarray, ...]:
        """The Kraus matrices ``(E_k)``."""
        return self._kraus

    @property
    def num_kraus(self) -> int:
        """Number of Kraus operators."""
        return len(self._kraus)

    @property
    def dim(self) -> int:
        """Hilbert-space dimension the channel acts on."""
        return 2**self.num_qubits

    def __iter__(self):
        return iter(self._kraus)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<KrausChannel {self.name!r} qubits={self.num_qubits} kraus={self.num_kraus}>"

    # ------------------------------------------------------------------
    # Channel actions and representations
    # ------------------------------------------------------------------
    def apply(self, rho: np.ndarray) -> np.ndarray:
        """Apply the channel to a density matrix ``rho`` of matching dimension."""
        rho = check_square(rho, name="rho")
        if rho.shape[0] != self.dim:
            raise ValidationError(
                f"channel acts on dimension {self.dim}, state has dimension {rho.shape[0]}"
            )
        return sum(op @ rho @ dagger(op) for op in self._kraus)

    def __call__(self, rho: np.ndarray) -> np.ndarray:
        return self.apply(rho)

    def matrix_representation(self) -> np.ndarray:
        """Return ``M_E = Σ_k E_k ⊗ E_k*`` (the paper's matrix representation)."""
        return sum(np.kron(op, op.conj()) for op in self._kraus)

    def choi_matrix(self) -> np.ndarray:
        """Return the Choi matrix ``Σ_k vec(E_k) vec(E_k)†`` (row-major vec).

        This equals the *tensor permutation* of the matrix representation used
        in the paper's SVD step, and is Hermitian positive semidefinite for
        any CP map.
        """
        vecs = [op.reshape(-1) for op in self._kraus]
        dim2 = self.dim**2
        choi = np.zeros((dim2, dim2), dtype=complex)
        for vec in vecs:
            choi += np.outer(vec, vec.conj())
        return choi

    def is_unital(self, atol: float = 1e-8) -> bool:
        """True when the channel maps the identity to itself (``Σ E_k E_k† = I``)."""
        total = sum(op @ dagger(op) for op in self._kraus)
        return bool(np.allclose(total, np.eye(self.dim), atol=atol))

    def is_unitary_channel(self, atol: float = 1e-8) -> bool:
        """True when the channel is (equivalent to) conjugation by a single unitary."""
        if self.num_kraus == 1:
            return True
        # More than one Kraus operator may still represent a unitary channel if
        # all but one are numerically zero.
        norms = [operator_norm(op) for op in self._kraus]
        return sum(n > atol for n in norms) <= 1

    # ------------------------------------------------------------------
    # Constructions
    # ------------------------------------------------------------------
    @staticmethod
    def from_unitary(matrix: np.ndarray, name: str = "unitary") -> "KrausChannel":
        """Wrap a unitary matrix as a single-Kraus channel."""
        return KrausChannel([np.asarray(matrix, dtype=complex)], name=name)

    def compose(self, other: "KrausChannel", name: str | None = None) -> "KrausChannel":
        """Return the composition ``other ∘ self`` (``self`` applied first)."""
        if other.dim != self.dim:
            raise ValidationError("cannot compose channels of different dimension")
        operators = [b @ a for a in self._kraus for b in other._kraus]
        return KrausChannel(operators, name=name or f"{other.name}∘{self.name}")

    def tensor(self, other: "KrausChannel", name: str | None = None) -> "KrausChannel":
        """Return the tensor product channel ``self ⊗ other``."""
        operators = [np.kron(a, b) for a in self._kraus for b in other._kraus]
        return KrausChannel(operators, name=name or f"{self.name}⊗{other.name}")

    def conjugate(self) -> "KrausChannel":
        """Return the channel with entry-wise conjugated Kraus operators."""
        return KrausChannel([op.conj() for op in self._kraus], name=f"{self.name}*")

    def canonical_kraus(self, atol: float = 1e-12) -> "KrausChannel":
        """Return an equivalent channel with canonical (orthogonal) Kraus operators.

        The canonical form is obtained from the eigendecomposition of the Choi
        matrix; operators are sorted by decreasing weight and numerically-zero
        operators are dropped.  The dominant canonical Kraus operator is
        exactly the paper's ``U_0`` (up to the √d₀ scale split).
        """
        choi = self.choi_matrix()
        eigenvalues, eigenvectors = np.linalg.eigh(choi)
        operators: List[np.ndarray] = []
        order = np.argsort(eigenvalues)[::-1]
        for idx in order:
            value = eigenvalues[idx]
            if value <= atol:
                continue
            operators.append(np.sqrt(value) * eigenvectors[:, idx].reshape(self.dim, self.dim))
        return KrausChannel(operators, name=f"{self.name}_canonical")

    @staticmethod
    def identity(num_qubits: int = 1) -> "KrausChannel":
        """The identity channel on ``num_qubits`` qubits."""
        return KrausChannel([np.eye(2**num_qubits, dtype=complex)], name="identity")
