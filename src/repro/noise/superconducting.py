"""Realistic superconducting decoherence noise model.

The paper appends, after randomly chosen gates, decoherence noises drawn from
a "realistic decoherence noise model of superconducting quantum circuits"
(their reference [31]: fault models in superconducting quantum circuits).
The dominant physical error mechanisms on superconducting hardware are
amplitude damping (energy relaxation, time constant T1) and dephasing
(time constant T2 ≤ 2·T1) accumulated over the duration of each gate.

This module builds the corresponding *thermal relaxation* Kraus channel for a
given (T1, T2, gate_time) triple, plus a :class:`SuperconductingNoiseSpec`
that mirrors published Sycamore-class device parameters and can be sampled to
produce slightly different per-qubit values, as real calibration data does.

The resulting channels are close to the identity (noise rate well below 1 for
realistic parameters), which is exactly the regime the paper's approximation
algorithm targets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.noise.channels import (
    amplitude_damping_channel,
    phase_damping_channel,
)
from repro.noise.kraus import KrausChannel
from repro.utils.validation import ValidationError

__all__ = [
    "thermal_relaxation_channel",
    "SuperconductingNoiseSpec",
    "SYCAMORE_LIKE_SPEC",
]


def thermal_relaxation_channel(
    t1: float,
    t2: float,
    gate_time: float,
    excited_state_population: float = 0.0,
    name: str | None = None,
) -> KrausChannel:
    """Thermal-relaxation channel for a gate of duration ``gate_time``.

    Parameters
    ----------
    t1:
        Energy-relaxation time constant (same time unit as ``gate_time``).
    t2:
        Dephasing time constant; must satisfy ``t2 <= 2 * t1``.
    gate_time:
        Duration over which the qubit idles/decoheres.
    excited_state_population:
        Equilibrium excited-state population (0 for zero temperature).

    Returns
    -------
    KrausChannel
        The combined amplitude-damping + pure-dephasing channel, i.e. the
        composition of an amplitude-damping channel with
        ``γ = 1 − exp(−t/T1)`` and a phase-damping channel chosen so the total
        off-diagonal decay is ``exp(−t/T2)``.
    """
    if t1 <= 0 or t2 <= 0:
        raise ValidationError(f"T1 and T2 must be positive, got T1={t1}, T2={t2}")
    if gate_time < 0:
        raise ValidationError(f"gate_time must be non-negative, got {gate_time}")
    if t2 > 2 * t1 + 1e-12:
        raise ValidationError(f"T2={t2} exceeds the physical limit 2*T1={2 * t1}")
    if not 0.0 <= excited_state_population <= 1.0:
        raise ValidationError("excited_state_population must lie in [0, 1]")

    gamma = 1.0 - math.exp(-gate_time / t1)
    # Total off-diagonal decay must be exp(-t/T2).  Amplitude damping alone
    # contributes sqrt(1-γ) = exp(-t/(2 T1)); the pure-dephasing channel
    # supplies the remainder exp(-t (1/T2 - 1/(2 T1))).
    pure_dephasing_rate = 1.0 / t2 - 1.0 / (2.0 * t1)
    dephasing_factor = math.exp(-gate_time * max(pure_dephasing_rate, 0.0))
    lam = 1.0 - dephasing_factor**2

    if excited_state_population == 0.0:
        damping = amplitude_damping_channel(gamma)
    else:
        from repro.noise.channels import generalized_amplitude_damping_channel

        damping = generalized_amplitude_damping_channel(gamma, excited_state_population)
    dephasing = phase_damping_channel(lam)
    channel = damping.compose(dephasing)
    label = name or f"thermal_relaxation(T1={t1:g},T2={t2:g},t={gate_time:g})"
    return KrausChannel(channel.kraus_operators, name=label)


@dataclass(frozen=True)
class SuperconductingNoiseSpec:
    """Calibration-style description of a superconducting processor's decoherence.

    Times are in nanoseconds to match how hardware providers report them.
    ``t1_spread``/``t2_spread`` model the qubit-to-qubit variation observed in
    real calibration snapshots.
    """

    t1_ns: float = 15_000.0
    t2_ns: float = 10_000.0
    single_qubit_gate_ns: float = 25.0
    two_qubit_gate_ns: float = 32.0
    readout_ns: float = 500.0
    t1_spread: float = 0.2
    t2_spread: float = 0.2
    excited_state_population: float = 0.0

    def sample_times(self, rng: np.random.Generator | int | None = None) -> tuple[float, float]:
        """Sample a (T1, T2) pair with multiplicative spread, enforcing T2 ≤ 2 T1."""
        rng = np.random.default_rng(rng)
        t1 = self.t1_ns * float(np.clip(rng.normal(1.0, self.t1_spread), 0.5, 1.5))
        t2 = self.t2_ns * float(np.clip(rng.normal(1.0, self.t2_spread), 0.5, 1.5))
        t2 = min(t2, 2.0 * t1)
        return t1, t2

    def gate_noise(
        self,
        num_gate_qubits: int = 1,
        rng: np.random.Generator | int | None = None,
    ) -> KrausChannel:
        """Return a single-qubit decoherence channel for a gate of the given arity.

        The paper appends one single-qubit decoherence noise after a randomly
        chosen gate; the gate arity only determines the idle duration.
        """
        if num_gate_qubits not in (1, 2):
            raise ValidationError("gate arity must be 1 or 2")
        duration = self.single_qubit_gate_ns if num_gate_qubits == 1 else self.two_qubit_gate_ns
        t1, t2 = self.sample_times(rng)
        return thermal_relaxation_channel(
            t1, t2, duration, self.excited_state_population,
            name=f"decoherence(t={duration:g}ns)",
        )

    def readout_noise(self, rng: np.random.Generator | int | None = None) -> KrausChannel:
        """Return the (stronger) decoherence channel accumulated during readout."""
        t1, t2 = self.sample_times(rng)
        return thermal_relaxation_channel(
            t1, t2, self.readout_ns, self.excited_state_population, name="readout_decoherence"
        )

    def scaled(self, factor: float) -> "SuperconductingNoiseSpec":
        """Return a spec with T1/T2 divided by ``factor`` (i.e. ``factor``× noisier).

        Used by the Fig. 6 experiment to sweep the noise rate of the realistic
        fault model.
        """
        if factor <= 0:
            raise ValidationError("factor must be positive")
        return SuperconductingNoiseSpec(
            t1_ns=self.t1_ns / factor,
            t2_ns=self.t2_ns / factor,
            single_qubit_gate_ns=self.single_qubit_gate_ns,
            two_qubit_gate_ns=self.two_qubit_gate_ns,
            readout_ns=self.readout_ns,
            t1_spread=self.t1_spread,
            t2_spread=self.t2_spread,
            excited_state_population=self.excited_state_population,
        )


#: Default spec with Sycamore-class T1/T2 and gate durations.
SYCAMORE_LIKE_SPEC = SuperconductingNoiseSpec()
