"""Classical readout (measurement) error model.

Superconducting devices mis-assign measurement outcomes with per-qubit
probabilities ``P(read 1 | state 0)`` and ``P(read 0 | state 1)`` of a few
percent — often a larger effect than a single gate's decoherence.  The model
here is the standard tensor-product confusion matrix: it post-processes ideal
measurement probabilities or sampled counts, and can also be *applied in
reverse* (readout mitigation by inverting the confusion matrix), which the
examples use to show how much of the noisy-simulation signal measurement
errors would additionally eat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.utils.validation import ValidationError, check_probability

__all__ = ["ReadoutErrorModel"]


@dataclass(frozen=True)
class ReadoutErrorModel:
    """Tensor-product readout confusion model.

    ``p01`` is the probability of reading ``1`` when the qubit is in ``|0⟩``,
    ``p10`` of reading ``0`` when it is in ``|1⟩``; either a scalar (same for
    every qubit) or one value per qubit.
    """

    num_qubits: int
    p01: Sequence[float] | float = 0.01
    p10: Sequence[float] | float = 0.03

    def __post_init__(self) -> None:
        if self.num_qubits <= 0:
            raise ValidationError("num_qubits must be positive")
        object.__setattr__(self, "p01", self._normalise(self.p01, "p01"))
        object.__setattr__(self, "p10", self._normalise(self.p10, "p10"))

    def _normalise(self, values, name: str):
        if np.isscalar(values):
            values = [float(values)] * self.num_qubits
        values = [check_probability(v, name) for v in values]
        if len(values) != self.num_qubits:
            raise ValidationError(f"{name} must have one entry per qubit")
        return tuple(values)

    # ------------------------------------------------------------------
    def confusion_matrix(self, qubit: int) -> np.ndarray:
        """The 2x2 column-stochastic confusion matrix of one qubit."""
        if not 0 <= qubit < self.num_qubits:
            raise ValidationError(f"qubit {qubit} out of range")
        p01, p10 = self.p01[qubit], self.p10[qubit]
        return np.array([[1.0 - p01, p10], [p01, 1.0 - p10]])

    def full_confusion_matrix(self) -> np.ndarray:
        """The ``2**n x 2**n`` confusion matrix (small registers only)."""
        if self.num_qubits > 12:
            raise ValidationError("dense confusion matrix limited to 12 qubits")
        matrix = np.array([[1.0]])
        for qubit in range(self.num_qubits):
            matrix = np.kron(matrix, self.confusion_matrix(qubit))
        return matrix

    # ------------------------------------------------------------------
    def apply_to_probabilities(self, probabilities: np.ndarray) -> np.ndarray:
        """Return the distribution actually observed after readout errors."""
        probabilities = np.asarray(probabilities, dtype=float).ravel()
        if probabilities.size != 2**self.num_qubits:
            raise ValidationError("probability vector size does not match the register")
        return self.full_confusion_matrix() @ probabilities

    def mitigate_probabilities(self, observed: np.ndarray, clip: bool = True) -> np.ndarray:
        """Invert the confusion matrix (simple readout-error mitigation)."""
        observed = np.asarray(observed, dtype=float).ravel()
        if observed.size != 2**self.num_qubits:
            raise ValidationError("probability vector size does not match the register")
        mitigated = np.linalg.solve(self.full_confusion_matrix(), observed)
        if clip:
            mitigated = np.clip(mitigated, 0.0, None)
            total = mitigated.sum()
            if total > 0:
                mitigated = mitigated / total
        return mitigated

    def apply_to_counts(
        self, counts: Dict[str, int], rng: np.random.Generator | int | None = None
    ) -> Dict[str, int]:
        """Flip sampled outcome bits according to the per-qubit error rates."""
        rng = np.random.default_rng(rng)
        noisy_counts: Dict[str, int] = {}
        for bitstring, count in counts.items():
            if len(bitstring) != self.num_qubits:
                raise ValidationError("bitstring width does not match the register")
            for _ in range(int(count)):
                flipped = []
                for qubit, bit in enumerate(bitstring):
                    if bit == "0":
                        flipped.append("1" if rng.random() < self.p01[qubit] else "0")
                    else:
                        flipped.append("0" if rng.random() < self.p10[qubit] else "1")
                key = "".join(flipped)
                noisy_counts[key] = noisy_counts.get(key, 0) + 1
        return noisy_counts

    def assignment_fidelity(self) -> float:
        """Average probability of reading out the prepared basis state correctly."""
        total = 0.0
        for qubit in range(self.num_qubits):
            total += 1.0 - 0.5 * (self.p01[qubit] + self.p10[qubit])
        return total / self.num_qubits
