"""Noise models: attaching Kraus channels to ideal circuits.

The paper's fault-injection methodology is: *"Each decoherence noise is
appended after a randomly chosen gate in the circuit."*  :class:`NoiseModel`
implements exactly that (``insert_random``), plus two standard alternatives
used by the extended experiments: noise after every gate, and noise at
explicitly chosen positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

import numpy as np

from repro.circuits.circuit import Circuit
from repro.noise.kraus import KrausChannel
from repro.utils.validation import ValidationError

__all__ = ["NoiseModel", "insert_noise_after_gates"]

#: A factory mapping (gate arity, rng) -> channel.  Allows calibration-style
#: models where every injected noise is slightly different.
ChannelFactory = Callable[[int, np.random.Generator], KrausChannel]


def _constant_factory(channel: KrausChannel) -> ChannelFactory:
    def factory(_arity: int, _rng: np.random.Generator) -> KrausChannel:
        return channel

    return factory


@dataclass
class NoiseModel:
    """Describes how noise channels are injected into an ideal circuit.

    Parameters
    ----------
    channel:
        Either a fixed :class:`KrausChannel` applied at every injection point,
        or a callable ``(gate_arity, rng) -> KrausChannel``.
    seed:
        Seed for the injection-point selection (and channel sampling).
    """

    channel: KrausChannel | ChannelFactory
    seed: int | None = None

    def _factory(self) -> ChannelFactory:
        if isinstance(self.channel, KrausChannel):
            return _constant_factory(self.channel)
        if callable(self.channel):
            return self.channel
        raise ValidationError("channel must be a KrausChannel or a callable factory")

    # ------------------------------------------------------------------
    # Injection strategies
    # ------------------------------------------------------------------
    def insert_random(
        self,
        circuit: Circuit,
        num_noises: int,
        rng: np.random.Generator | int | None = None,
    ) -> Circuit:
        """Append ``num_noises`` noise channels after randomly chosen gates.

        Each selected gate gets one single-qubit noise channel on one of its
        qubits (chosen uniformly), reproducing the paper's fault model.  Gates
        are chosen without replacement while possible; if ``num_noises``
        exceeds the gate count, selection continues with replacement.
        """
        if num_noises < 0:
            raise ValidationError("num_noises must be non-negative")
        if circuit.gate_count() == 0 and num_noises > 0:
            raise ValidationError("cannot inject noise into a circuit with no gates")
        rng = np.random.default_rng(self.seed if rng is None else rng)
        factory = self._factory()

        gate_indices = [i for i, inst in enumerate(circuit) if inst.is_gate]
        if num_noises <= len(gate_indices):
            chosen = rng.choice(len(gate_indices), size=num_noises, replace=False)
        else:
            chosen = rng.choice(len(gate_indices), size=num_noises, replace=True)
        chosen_positions = sorted(gate_indices[int(c)] for c in chosen)

        noisy = Circuit(circuit.num_qubits, name=f"{circuit.name}_noisy{num_noises}")
        insertion_map: dict[int, List[int]] = {}
        for pos in chosen_positions:
            insertion_map.setdefault(pos, []).append(pos)

        for index, inst in enumerate(circuit):
            noisy.append(inst.operation, inst.qubits)
            for _ in insertion_map.get(index, []):
                channel = factory(len(inst.qubits), rng)
                if channel.num_qubits == 1:
                    qubit = int(rng.choice(inst.qubits))
                    noisy.append(channel, (qubit,))
                elif channel.num_qubits == len(inst.qubits):
                    noisy.append(channel, inst.qubits)
                else:
                    raise ValidationError(
                        f"channel acts on {channel.num_qubits} qubits but the gate has "
                        f"{len(inst.qubits)}"
                    )
        return noisy

    def insert_after_every_gate(
        self,
        circuit: Circuit,
        rng: np.random.Generator | int | None = None,
        only_two_qubit_gates: bool = False,
    ) -> Circuit:
        """Append one noise channel after every gate (or every 2-qubit gate)."""
        rng = np.random.default_rng(self.seed if rng is None else rng)
        factory = self._factory()
        noisy = Circuit(circuit.num_qubits, name=f"{circuit.name}_full_noise")
        for inst in circuit:
            noisy.append(inst.operation, inst.qubits)
            if not inst.is_gate:
                continue
            if only_two_qubit_gates and len(inst.qubits) < 2:
                continue
            channel = factory(len(inst.qubits), rng)
            if channel.num_qubits == 1:
                for qubit in inst.qubits:
                    noisy.append(channel, (qubit,))
            else:
                noisy.append(channel, inst.qubits)
        return noisy

    def insert_at(
        self,
        circuit: Circuit,
        positions: Sequence[int],
        qubits: Sequence[int] | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> Circuit:
        """Insert noise immediately after the instructions at the given positions.

        ``positions`` index instructions of the *input* circuit; ``qubits``
        optionally pins the target qubit of each injected single-qubit noise
        (defaults to the first qubit of the preceding instruction).
        """
        rng = np.random.default_rng(self.seed if rng is None else rng)
        factory = self._factory()
        positions = [int(p) for p in positions]
        for pos in positions:
            if not 0 <= pos < len(circuit):
                raise ValidationError(f"position {pos} out of range for circuit of length {len(circuit)}")
        if qubits is not None and len(qubits) != len(positions):
            raise ValidationError("qubits must have the same length as positions")

        insertion_map: dict[int, List[int | None]] = {}
        for i, pos in enumerate(positions):
            insertion_map.setdefault(pos, []).append(None if qubits is None else int(qubits[i]))

        noisy = Circuit(circuit.num_qubits, name=f"{circuit.name}_noisy")
        for index, inst in enumerate(circuit):
            noisy.append(inst.operation, inst.qubits)
            for target in insertion_map.get(index, []):
                channel = factory(len(inst.qubits), rng)
                if channel.num_qubits == 1:
                    qubit = inst.qubits[0] if target is None else target
                    noisy.append(channel, (qubit,))
                else:
                    noisy.append(channel, inst.qubits)
        return noisy


def insert_noise_after_gates(
    circuit: Circuit,
    channel: KrausChannel,
    num_noises: int,
    seed: int | None = None,
) -> Circuit:
    """Convenience wrapper for the paper's fault model with a fixed channel."""
    model = NoiseModel(channel=channel, seed=seed)
    return model.insert_random(circuit, num_noises)
