"""repro — reproduction of "Approximation Algorithm for Noisy Quantum Circuit Simulation".

The package is organised around the paper's structure:

* :mod:`repro.circuits` — gate library, circuit IR and benchmark generators
  (QAOA, Hartree-Fock VQE, random supremacy circuits).
* :mod:`repro.noise` — Kraus channels, the noise-rate metric and the
  realistic superconducting decoherence model.
* :mod:`repro.tensornetwork` — the from-scratch tensor-network engine and the
  doubled-diagram builders of Section III.
* :mod:`repro.simulators` — accurate baselines (statevector, density matrix,
  tensor network, decision diagram) and approximate baselines (quantum
  trajectories, MPS).
* :mod:`repro.core` — the paper's contribution: the SVD decomposition of
  noise tensors and the level-``l`` approximation algorithm (Algorithm 1)
  with its Theorem-1 guarantees.
* :mod:`repro.analysis` — error metrics, sample-count formulas and report
  formatting used by the benchmark harness.

Quickstart::

    from repro.circuits.library import qaoa_circuit
    from repro.noise import depolarizing_channel, NoiseModel
    from repro.core import ApproximateNoisySimulator
    from repro.simulators import TNSimulator

    ideal = qaoa_circuit(9)
    noisy = NoiseModel(depolarizing_channel(0.001), seed=1).insert_random(ideal, 10)

    exact = TNSimulator().fidelity(noisy)
    approx = ApproximateNoisySimulator(level=1).fidelity(noisy)
    print(exact, approx.value, approx.error_bound)
"""

from repro.circuits import Circuit, Gate
from repro.core import ApproximateNoisySimulator, ApproximationResult
from repro.noise import KrausChannel, NoiseModel, depolarizing_channel, noise_rate
from repro.simulators import (
    DensityMatrixSimulator,
    MPSSimulator,
    StatevectorSimulator,
    TDDSimulator,
    TNSimulator,
    TrajectorySimulator,
)

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "Gate",
    "KrausChannel",
    "NoiseModel",
    "depolarizing_channel",
    "noise_rate",
    "ApproximateNoisySimulator",
    "ApproximationResult",
    "StatevectorSimulator",
    "DensityMatrixSimulator",
    "TNSimulator",
    "TDDSimulator",
    "TrajectorySimulator",
    "MPSSimulator",
    "__version__",
]
