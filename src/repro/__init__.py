"""repro — reproduction of "Approximation Algorithm for Noisy Quantum Circuit Simulation".

The package is organised around the paper's structure:

* :mod:`repro.circuits` — gate library, circuit IR and benchmark generators
  (QAOA, Hartree-Fock VQE, random supremacy circuits).
* :mod:`repro.noise` — Kraus channels, the noise-rate metric and the
  realistic superconducting decoherence model.
* :mod:`repro.tensornetwork` — the from-scratch tensor-network engine and the
  doubled-diagram builders of Section III.
* :mod:`repro.simulators` — accurate baselines (statevector, density matrix,
  tensor network, decision diagram) and approximate baselines (quantum
  trajectories, MPS).
* :mod:`repro.core` — the paper's contribution: the SVD decomposition of
  noise tensors and the level-``l`` approximation algorithm (Algorithm 1)
  with its Theorem-1 guarantees.
* :mod:`repro.analysis` — error metrics, sample-count formulas and report
  formatting used by the benchmark harness.

* :mod:`repro.backends` — the unified backend registry dispatching every
  simulator behind one contract, plus the batched trajectory engine.
* :mod:`repro.api` — the session layer: :func:`~repro.api.simulate` and
  :class:`~repro.api.Session` (blocking ``run`` / async ``submit`` over one
  shared process pool, and ``compile()`` returning a cached
  :class:`~repro.api.Executable` for repeated hot-path execution), the
  single typed entry point every higher layer (CLI, sweeps, benchmarks)
  shares.
* :mod:`repro.verify` — the differential conformance harness: seeded random
  workload families, cross-backend metamorphic oracles, failure shrinking
  and replayable artifacts (``repro verify`` on the command line).

Quickstart::

    from repro import simulate
    from repro.circuits.library import qaoa_circuit

    result = simulate(
        qaoa_circuit(9),
        noise={"channel": "depolarizing", "parameter": 0.001,
               "count": 10, "seed": 1},
        backend="approximation", level=1,
    )
    print(result.value, result.error_bound, result.config_hash)
"""

from repro.api import Executable, Session, SimulationResult, simulate
from repro.backends import (
    BackendResult,
    SimulationTask,
    available_backends,
    get_backend,
)
from repro.circuits import Circuit, Gate
from repro.core import ApproximateNoisySimulator, ApproximationResult
from repro.noise import KrausChannel, NoiseModel, depolarizing_channel, noise_rate
from repro.simulators import (
    DensityMatrixSimulator,
    MPSSimulator,
    StatevectorSimulator,
    TDDSimulator,
    TNSimulator,
    TrajectorySimulator,
)
from repro.verify import run_conformance

__version__ = "1.1.0"

__all__ = [
    # circuit/noise IR
    "Circuit",
    "Gate",
    "KrausChannel",
    "NoiseModel",
    "depolarizing_channel",
    "noise_rate",
    # session layer (the front door)
    "Executable",
    "Session",
    "SimulationResult",
    "simulate",
    # conformance harness
    "run_conformance",
    # backend layer
    "BackendResult",
    "SimulationTask",
    "available_backends",
    "get_backend",
    # the paper's algorithm and the seed-era simulator classes
    "ApproximateNoisySimulator",
    "ApproximationResult",
    "StatevectorSimulator",
    "DensityMatrixSimulator",
    "TNSimulator",
    "TDDSimulator",
    "TrajectorySimulator",
    "MPSSimulator",
    "__version__",
]
