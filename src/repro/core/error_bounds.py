"""Analytical guarantees of the approximation algorithm (Theorem 1, Lemmas 1–2).

These functions implement the paper's formulas verbatim so that the test
suite can check the *implementation* against the *theory*: the measured
approximation error of Algorithm 1 must never exceed
:func:`theorem1_error_bound`, and the number of tensor-network contractions
it performs must equal :func:`contraction_count`.
"""

from __future__ import annotations

import math

from repro.utils.validation import ValidationError

__all__ = [
    "lemma1_bound",
    "lemma2_bound",
    "theorem1_error_bound",
    "level1_error_bound_simplified",
    "contraction_count",
    "terms_per_level",
]


def lemma1_bound(delta: float) -> float:
    """Lemma 1: ``‖A − B‖ < δ`` implies ``‖~A − ~B‖ < 2δ`` (4x4 matrices)."""
    if delta < 0:
        raise ValidationError("delta must be non-negative")
    return 2.0 * delta


def lemma2_bound(noise_rate: float) -> float:
    """Lemma 2: ``‖M_E − I‖ < δ`` implies ``‖M_E − U_0 ⊗ V_0‖ < 4δ``."""
    if noise_rate < 0:
        raise ValidationError("noise_rate must be non-negative")
    return 4.0 * noise_rate


def terms_per_level(num_noises: int, level: int) -> int:
    """Number of substituted tensor-network terms summed at exactly level ``level``.

    Level ``k`` replaces ``k`` of the ``N`` noises by one of their three
    sub-dominant Kronecker terms, so there are ``C(N, k) · 3**k`` terms.
    """
    if num_noises < 0 or level < 0:
        raise ValidationError("num_noises and level must be non-negative")
    if level > num_noises:
        return 0
    return math.comb(num_noises, level) * 3**level


def contraction_count(num_noises: int, level: int) -> int:
    """Total tensor-network contractions of Algorithm 1 (Theorem 1).

    Every term splits into two independent networks (upper and lower), hence
    the count is ``2 · Σ_{i=0}^{l} C(N, i) · 3**i``.
    """
    level = min(level, num_noises)
    return 2 * sum(terms_per_level(num_noises, k) for k in range(level + 1))


def theorem1_error_bound(num_noises: int, noise_rate: float, level: int) -> float:
    """Theorem 1 error bound for the level-``l`` approximation.

    ``|F − A(l)| ≤ (1 + 8p)^N − Σ_{i=0}^{l} C(N, i) (4p)^i (1 + 4p)^{N−i}``
    where ``p`` is a common upper bound on the noise rates of the ``N`` noises.
    """
    if num_noises < 0:
        raise ValidationError("num_noises must be non-negative")
    if noise_rate < 0:
        raise ValidationError("noise_rate must be non-negative")
    if level < 0:
        raise ValidationError("level must be non-negative")
    n, p = num_noises, noise_rate
    level = min(level, n)
    total = (1.0 + 8.0 * p) ** n
    partial = sum(
        math.comb(n, i) * (4.0 * p) ** i * (1.0 + 4.0 * p) ** (n - i) for i in range(level + 1)
    )
    return max(total - partial, 0.0)


def level1_error_bound_simplified(num_noises: int, noise_rate: float) -> float:
    """The paper's simplified level-1 bound ``32 √e N² p²`` (valid for ``p ≤ 1/(8N)``).

    Falls back to the exact Theorem 1 expression when the small-``p``
    assumption does not hold, so the returned value is always a valid bound.
    """
    n, p = num_noises, noise_rate
    if n <= 0:
        return 0.0
    if p <= 1.0 / (8.0 * n):
        return 32.0 * math.sqrt(math.e) * (n**2) * (p**2)
    return theorem1_error_bound(n, p, level=1)
