"""The paper's approximation algorithm for noisy circuit simulation (Algorithm 1).

Given a noisy circuit ``E_N`` with ``N`` noise channels, an input state
``|ψ⟩``, an output state ``|v⟩`` and an approximation level ``l``, the
algorithm

1. SVD-decomposes every noise's matrix representation into
   ``M_E = Σ_{i=0..3} U_i ⊗ V_i`` (:mod:`repro.core.svd_decomposition`);
2. enumerates every way of replacing at most ``l`` noises by one of their
   sub-dominant terms (``i ∈ {1,2,3}``) while all remaining noises use the
   dominant term ``U_0 ⊗ V_0``;
3. evaluates each substituted diagram as the product of two independent
   single-size tensor-network contractions (upper and lower half) and sums
   the contributions.

The result ``A(l)`` approximates the fidelity ``⟨v| E_N(|ψ⟩⟨ψ|) |v⟩`` with
the Theorem-1 error bound; ``l = N`` recovers the exact value.

Both the bound and the cost are indexed by the noise count ``N``, which is
why the session-layer compiler passes (:mod:`repro.circuits.passes`) only
shrink it in ways that cannot change the remaining channels' sampling
structure for this backend: folding a *unitary* channel into a gate removes
a channel whose SVD has a single term (its level budget was free), and
pruning removes channels provably acting as the identity on the boundary —
while channel *merging*, which rewrites ``N`` arbitrarily, stays reserved
for the exact superoperator backends.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import Circuit
from repro.core.error_bounds import contraction_count, theorem1_error_bound
from repro.core.svd_decomposition import NoiseTermDecomposition, decompose_noise
from repro.simulators.statevector import apply_matrix
from repro.tensornetwork.circuit_to_tn import (
    StateLike,
    dense_product_state,
    resolve_product_state,
    substituted_split_networks,
)
from repro.tensornetwork.plan import ContractionPlan
from repro.utils.validation import ValidationError

__all__ = ["ApproximationResult", "ApproximateNoisySimulator", "PreparedApproximation"]


@dataclass(frozen=True)
class PreparedApproximation:
    """One-time work of Algorithm 1, reusable across levels and repeat runs.

    Every substituted term of the algorithm produces the *same* pair of
    network topologies (only the inserted ``U_i``/``V_i`` tensor values
    change), so the noise decompositions, the upper/lower template networks
    and their recorded contraction schedules can be computed once — by
    :meth:`ApproximateNoisySimulator.prepare` — and replayed per term with the
    noise tensors swapped in.  The plans are level-independent: one prepared
    object serves ``fidelity(..., level=l)`` for every ``l``.
    """

    decompositions: Tuple[NoiseTermDecomposition, ...]
    upper_plan: ContractionPlan
    lower_plan: ContractionPlan
    upper_tensors: Tuple[np.ndarray, ...]
    lower_tensors: Tuple[np.ndarray, ...]
    #: Node positions of the noise operations in both template networks.
    noise_positions: Tuple[int, ...]
    #: Partially evaluated plans: contractions not downstream of any noise
    #: tensor are baked in, so each term replays only the residual steps.
    upper_specialized: Any = None
    lower_specialized: Any = None

    def describe(self) -> dict:
        """Plan-cost summary (what :meth:`repro.api.Executable.describe` reports)."""
        info = {
            "num_noises": len(self.decompositions),
            "upper": self.upper_plan.describe(),
            "lower": self.lower_plan.describe(),
        }
        if self.upper_specialized is not None:
            info["upper"]["residual_steps"] = self.upper_specialized.num_residual_steps
            info["lower"]["residual_steps"] = self.lower_specialized.num_residual_steps
        return info


@dataclass(frozen=True)
class ApproximationResult:
    """Outcome of one run of the approximation algorithm."""

    value: float
    level: int
    num_noises: int
    num_terms: int
    num_contractions: int
    level_contributions: Tuple[float, ...]
    max_noise_rate: float
    elapsed_seconds: float

    @property
    def error_bound(self) -> float:
        """Theorem-1 a-priori bound on ``|F − A(l)|`` for this run."""
        return theorem1_error_bound(self.num_noises, self.max_noise_rate, self.level)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"A({self.level}) = {self.value:.8f} "
            f"(noises={self.num_noises}, terms={self.num_terms}, "
            f"contractions={self.num_contractions}, bound={self.error_bound:.2e})"
        )


class ApproximateNoisySimulator:
    """Implementation of Algorithm 1 (ApproximationNoisySimulation).

    This is the algorithm-level class; at the service level the same
    computation is dispatched through the registry as backend
    ``"approximation"`` (alias ``"ours"``) — e.g.
    ``repro.api.simulate(circuit, backend="approximation", level=1)`` — whose
    unified result carries ``error_bound`` and provenance.

    Example — a level-1 run on a noisy GHZ circuit, checked against the exact
    value (level ``N``) and the Theorem-1 a-priori bound::

        >>> from repro.circuits.library import ghz_circuit
        >>> from repro.core import ApproximateNoisySimulator
        >>> from repro.noise import NoiseModel, depolarizing_channel
        >>> model = NoiseModel(depolarizing_channel(0.01), seed=1)
        >>> noisy = model.insert_random(ghz_circuit(2), 2)
        >>> simulator = ApproximateNoisySimulator(level=1)
        >>> result = simulator.fidelity(noisy)
        >>> result.level, result.num_noises
        (1, 2)
        >>> exact = simulator.exact_fidelity(noisy)
        >>> abs(result.value - exact.value) <= result.error_bound
        True
    """

    def __init__(
        self,
        level: int = 1,
        backend: str = "tn",
        max_intermediate_size: int | None = 2**26,
        strategy: str = "greedy",
        drop_tolerance: float = 1e-14,
    ) -> None:
        if level < 0:
            raise ValidationError("level must be non-negative")
        if backend not in ("tn", "statevector"):
            raise ValidationError(f"unknown backend {backend!r}")
        #: Default approximation level ``l`` (the paper recommends 1).
        self.level = int(level)
        #: "tn" contracts each half diagram as a tensor network; "statevector"
        #: evaluates it by dense matrix application (useful for small circuits
        #: and for cross-checking the TN path).
        self.backend = backend
        self.max_intermediate_size = max_intermediate_size
        self.strategy = strategy
        self.drop_tolerance = drop_tolerance

    # ------------------------------------------------------------------
    # Decomposition of the circuit's noises
    # ------------------------------------------------------------------
    def decompose_noises(self, circuit: Circuit) -> List[NoiseTermDecomposition]:
        """SVD-decompose every noise channel of ``circuit`` (in occurrence order)."""
        decompositions = []
        for inst in circuit.noise_instructions:
            decompositions.append(
                decompose_noise(inst.operation, drop_tolerance=self.drop_tolerance)
            )
        return decompositions

    # ------------------------------------------------------------------
    # One-time preparation (compile step of the service layer)
    # ------------------------------------------------------------------
    def prepare(
        self,
        circuit: Circuit,
        input_state: StateLike = None,
        output_state: StateLike = None,
    ) -> PreparedApproximation:
        """Precompute the term-independent work of Algorithm 1 for ``circuit``.

        SVD-decomposes every noise channel and records the contraction
        schedules of the dominant-term split networks; since every substituted
        term shares those topologies, :meth:`fidelity` with ``prepared=...``
        replays the schedules with swapped noise tensors instead of building
        and greedy-ordering two fresh networks per term.  Values are
        bit-identical to the unprepared path (the greedy heuristic decides
        from tensor *shapes* only, which are the same for every term).
        """
        if self.backend != "tn":
            raise ValidationError(
                "prepare() applies to the tn term backend only "
                f"(this simulator evaluates terms via {self.backend!r})"
            )
        n = circuit.num_qubits
        input_state = "0" * n if input_state is None else input_state
        output_state = "0" * n if output_state is None else output_state
        decompositions = self.decompose_noises(circuit)
        dominant = {
            index: decomposition.terms[0]
            for index, decomposition in enumerate(decompositions)
        }
        upper, lower = substituted_split_networks(
            circuit,
            dominant,
            input_state,
            output_state,
            max_intermediate_size=self.max_intermediate_size,
        )
        # Recording consumes the networks, so snapshot the tensors first.
        upper_tensors = tuple(node.tensor for node in upper.nodes)
        lower_tensors = tuple(node.tensor for node in lower.nodes)
        upper_plan, _ = ContractionPlan.record(upper, strategy=self.strategy)
        lower_plan, _ = ContractionPlan.record(lower, strategy=self.strategy)
        # Boundary input nodes precede the op nodes in insertion order (one
        # node per qubit for product states, one for a dense state); operation
        # i of the instruction list is therefore node input_nodes + i.
        resolved_in = resolve_product_state(input_state, n)
        input_nodes = n if isinstance(resolved_in, list) else 1
        noise_positions = tuple(
            input_nodes + index
            for index, inst in enumerate(circuit)
            if inst.is_noise
        )
        return PreparedApproximation(
            decompositions=tuple(decompositions),
            upper_plan=upper_plan,
            lower_plan=lower_plan,
            upper_tensors=upper_tensors,
            lower_tensors=lower_tensors,
            noise_positions=noise_positions,
            upper_specialized=upper_plan.specialize(list(upper_tensors), noise_positions),
            lower_specialized=lower_plan.specialize(list(lower_tensors), noise_positions),
        )

    def _evaluate_term_prepared(
        self,
        prepared: PreparedApproximation,
        substitution: Dict[int, Tuple[np.ndarray, np.ndarray]],
    ) -> complex:
        upper: Dict[int, np.ndarray] = {}
        lower: Dict[int, np.ndarray] = {}
        for noise_index, position in enumerate(prepared.noise_positions):
            u_matrix, v_matrix = substitution[noise_index]
            upper[position] = np.asarray(u_matrix, dtype=complex).reshape(
                prepared.upper_tensors[position].shape
            )
            lower[position] = np.asarray(v_matrix, dtype=complex).reshape(
                prepared.lower_tensors[position].shape
            )
        return prepared.upper_specialized.execute(upper) * prepared.lower_specialized.execute(lower)

    # ------------------------------------------------------------------
    # Evaluation of a single substituted term
    # ------------------------------------------------------------------
    def _evaluate_term(
        self,
        circuit: Circuit,
        substitution: Dict[int, Tuple[np.ndarray, np.ndarray]],
        input_state: StateLike,
        output_state: StateLike,
    ) -> complex:
        if self.backend == "tn":
            upper, lower = substituted_split_networks(
                circuit,
                substitution,
                input_state,
                output_state,
                max_intermediate_size=self.max_intermediate_size,
            )
            upper_value = upper.contract_to_scalar(strategy=self.strategy)
            lower_value = lower.contract_to_scalar(strategy=self.strategy)
            return upper_value * lower_value
        return self._evaluate_term_statevector(circuit, substitution, input_state, output_state)

    def _evaluate_term_statevector(
        self,
        circuit: Circuit,
        substitution: Dict[int, Tuple[np.ndarray, np.ndarray]],
        input_state: StateLike,
        output_state: StateLike,
    ) -> complex:
        n = circuit.num_qubits
        if n > 20:
            raise MemoryError("statevector backend limited to 20 qubits")
        psi = self._densify(input_state, n)
        v = self._densify(output_state, n)
        upper = psi.copy()
        lower = psi.conj().copy()
        noise_index = 0
        for inst in circuit:
            if inst.is_gate:
                upper = apply_matrix(upper, inst.operation.matrix, inst.qubits, n)
                lower = apply_matrix(lower, inst.operation.matrix.conj(), inst.qubits, n)
            else:
                u_matrix, v_matrix = substitution[noise_index]
                upper = apply_matrix(upper, u_matrix, inst.qubits, n)
                lower = apply_matrix(lower, v_matrix, inst.qubits, n)
                noise_index += 1
        upper_value = complex(np.vdot(v, upper))
        lower_value = complex(np.vdot(v.conj(), lower))
        return upper_value * lower_value

    @staticmethod
    def _densify(state: StateLike, num_qubits: int) -> np.ndarray:
        return dense_product_state(state, num_qubits)

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def fidelity(
        self,
        circuit: Circuit,
        input_state: StateLike = None,
        output_state: StateLike = None,
        level: int | None = None,
        prepared: PreparedApproximation | None = None,
    ) -> ApproximationResult:
        """Return the level-``l`` approximation ``A(l)`` of ``⟨v| E_N(|ψ⟩⟨ψ|) |v⟩``.

        ``input_state`` and ``output_state`` default to ``|0…0⟩`` as in the
        paper's Table II experiments.  ``prepared`` optionally supplies the
        one-time work recorded by :meth:`prepare` (for the same circuit and
        boundary states); terms are then evaluated by plan replay instead of
        per-term network construction, with bit-identical values.
        """
        start = time.perf_counter()
        level = self.level if level is None else int(level)
        if level < 0:
            raise ValidationError("level must be non-negative")
        n = circuit.num_qubits
        input_state = "0" * n if input_state is None else input_state
        output_state = "0" * n if output_state is None else output_state

        if prepared is not None:
            if len(prepared.decompositions) != circuit.noise_count():
                raise ValidationError(
                    "prepared plan covers "
                    f"{len(prepared.decompositions)} noises but the circuit "
                    f"has {circuit.noise_count()}"
                )
            decompositions = list(prepared.decompositions)
        else:
            decompositions = self.decompose_noises(circuit)
        num_noises = len(decompositions)
        level = min(level, num_noises)

        total = 0.0 + 0.0j
        level_contributions: List[float] = []
        num_terms = 0

        for k in range(level + 1):
            contribution = 0.0 + 0.0j
            for positions in itertools.combinations(range(num_noises), k):
                # Each selected position can use any of its sub-dominant terms.
                choices_per_position = []
                for position in positions:
                    available = range(1, decompositions[position].num_terms)
                    choices_per_position.append(list(available))
                if positions and any(not c for c in choices_per_position):
                    continue
                for assignment in itertools.product(*choices_per_position):
                    substitution: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
                    for noise_index in range(num_noises):
                        substitution[noise_index] = decompositions[noise_index].terms[0]
                    for position, term_index in zip(positions, assignment):
                        substitution[position] = decompositions[position].terms[term_index]
                    if prepared is not None:
                        contribution += self._evaluate_term_prepared(prepared, substitution)
                    else:
                        contribution += self._evaluate_term(
                            circuit, substitution, input_state, output_state
                        )
                    num_terms += 1
            level_contributions.append(float(np.real(contribution)))
            total += contribution

        max_rate = max((d.noise_rate for d in decompositions), default=0.0)
        elapsed = time.perf_counter() - start
        return ApproximationResult(
            value=float(np.real(total)),
            level=level,
            num_noises=num_noises,
            num_terms=num_terms,
            num_contractions=2 * num_terms,
            level_contributions=tuple(level_contributions),
            max_noise_rate=max_rate,
            elapsed_seconds=elapsed,
        )

    # ------------------------------------------------------------------
    def level_for_error(
        self,
        circuit: Circuit,
        target_error: float,
        max_level: int | None = None,
    ) -> int:
        """Smallest level whose Theorem-1 bound meets ``target_error`` for this circuit.

        Uses only the a-priori bound (no simulation), so it can be called
        before committing to an expensive run; combine with
        :func:`repro.core.error_bounds.contraction_count` to budget the cost.
        """
        if target_error <= 0:
            raise ValidationError("target_error must be positive")
        decompositions = self.decompose_noises(circuit)
        num_noises = len(decompositions)
        max_rate = max((d.noise_rate for d in decompositions), default=0.0)
        ceiling = num_noises if max_level is None else min(int(max_level), num_noises)
        for level in range(ceiling + 1):
            if theorem1_error_bound(num_noises, max_rate, level) <= target_error:
                return level
        return ceiling

    def fidelity_to_error(
        self,
        circuit: Circuit,
        target_error: float,
        input_state: StateLike = None,
        output_state: StateLike = None,
        max_level: int | None = None,
    ) -> ApproximationResult:
        """Run Algorithm 1 at the cheapest level whose a-priori bound meets ``target_error``."""
        level = self.level_for_error(circuit, target_error, max_level=max_level)
        return self.fidelity(circuit, input_state, output_state, level=level)

    # ------------------------------------------------------------------
    def exact_fidelity(
        self,
        circuit: Circuit,
        input_state: StateLike = None,
        output_state: StateLike = None,
    ) -> ApproximationResult:
        """Run the algorithm at level ``N`` (all noises), which is exact."""
        return self.fidelity(
            circuit, input_state, output_state, level=circuit.noise_count()
        )

    def planned_contractions(self, circuit: Circuit, level: int | None = None) -> int:
        """Number of contractions Algorithm 1 will perform (Theorem 1 count)."""
        level = self.level if level is None else int(level)
        return contraction_count(circuit.noise_count(), level)
