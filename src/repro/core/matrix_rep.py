"""Matrix (superoperator) representation of channels and the tensor permutation.

These are the two primitives of the paper's Section III/IV:

* ``matrix_representation(E) = M_E = Σ_k E_k ⊗ E_k*`` satisfies
  ``M_E · vec_row(rho) = vec_row(E(rho))`` and, applied to doubled boundary
  states, ``(⟨v| ⊗ ⟨v*|) M_E (|ψ⟩ ⊗ |ψ*⟩) = ⟨v| E(|ψ⟩⟨ψ|) |v⟩``.
* ``tensor_permutation(M)`` is the reshuffle that turns the 4-index tensor
  ``M[(i1 i2), (j1 j2)]`` into ``~M[(i1 j1), (i2 j2)]`` (the paper's Fig. 3a).
  For the matrix representation of a CP map this equals the Choi matrix built
  with row-major vectorisation, which is why its SVD recovers a canonical
  Kraus-like decomposition.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.noise.kraus import KrausChannel
from repro.utils.linalg import operator_norm
from repro.utils.validation import ValidationError, check_power_of_two, check_square

__all__ = [
    "matrix_representation",
    "unitary_matrix_representation",
    "tensor_permutation",
    "noise_rate_from_matrix",
]


def matrix_representation(channel: KrausChannel | Sequence[np.ndarray]) -> np.ndarray:
    """Return ``M_E = Σ_k E_k ⊗ E_k*`` for a channel or a list of Kraus matrices."""
    if isinstance(channel, KrausChannel):
        operators = channel.kraus_operators
    else:
        operators = [check_square(op, name="Kraus operator") for op in channel]
        if not operators:
            raise ValidationError("need at least one Kraus operator")
    dim = operators[0].shape[0]
    result = np.zeros((dim * dim, dim * dim), dtype=complex)
    for op in operators:
        result += np.kron(op, op.conj())
    return result


def unitary_matrix_representation(unitary: np.ndarray) -> np.ndarray:
    """Return ``M_U = U ⊗ U*`` for a unitary gate."""
    unitary = check_square(unitary, name="unitary")
    return np.kron(unitary, unitary.conj())


def tensor_permutation(matrix: np.ndarray) -> np.ndarray:
    """Return the tensor permutation ``~M`` of a ``d² x d²`` matrix ``M``.

    Treating ``M`` as a rank-4 tensor ``M[i1, i2, j1, j2]`` with row index
    ``(i1, i2)`` and column index ``(j1, j2)``, the permutation returns the
    matrix with row ``(i1, j1)`` and column ``(i2, j2)``.  It is an involution
    (``tensor_permutation(tensor_permutation(M)) == M``), which Lemma 2 uses.
    """
    matrix = check_square(matrix, name="matrix")
    total = matrix.shape[0]
    dim = int(round(np.sqrt(total)))
    if dim * dim != total:
        raise ValidationError(
            f"matrix of dimension {total} is not of the form d² x d² required by the permutation"
        )
    tensor = matrix.reshape(dim, dim, dim, dim)
    return tensor.transpose(0, 2, 1, 3).reshape(total, total)


def noise_rate_from_matrix(matrix_rep: np.ndarray) -> float:
    """Return ``‖M_E − I‖`` given the matrix representation of a channel."""
    matrix_rep = check_square(matrix_rep, name="matrix representation")
    return operator_norm(matrix_rep - np.eye(matrix_rep.shape[0]))
