"""The paper's core contribution: SVD-based approximate noisy simulation.

* :mod:`repro.core.matrix_rep` — matrix representation ``M_E`` and the tensor
  permutation (Section III / Fig. 3a).
* :mod:`repro.core.svd_decomposition` — ``M_E = Σ_i U_i ⊗ V_i`` (Fig. 3b-c).
* :mod:`repro.core.approximation` — Algorithm 1 (level-``l`` approximation).
* :mod:`repro.core.error_bounds` — Lemmas 1-2 and Theorem 1.
* :mod:`repro.core.elements` — arbitrary density-matrix elements via the
  polarisation identity.
"""

from repro.core.approximation import ApproximateNoisySimulator, ApproximationResult
from repro.core.elements import estimate_density_matrix, estimate_matrix_element
from repro.core.error_bounds import (
    contraction_count,
    lemma1_bound,
    lemma2_bound,
    level1_error_bound_simplified,
    terms_per_level,
    theorem1_error_bound,
)
from repro.core.path_truncation import (
    PathTruncatedSimulator,
    PathTruncationResult,
    enumerate_paths_by_weight,
)
from repro.core.matrix_rep import (
    matrix_representation,
    noise_rate_from_matrix,
    tensor_permutation,
    unitary_matrix_representation,
)
from repro.core.svd_decomposition import (
    NoiseTermDecomposition,
    decompose_matrix_representation,
    decompose_noise,
)

__all__ = [
    "ApproximateNoisySimulator",
    "ApproximationResult",
    "PathTruncatedSimulator",
    "PathTruncationResult",
    "enumerate_paths_by_weight",
    "estimate_matrix_element",
    "estimate_density_matrix",
    "matrix_representation",
    "unitary_matrix_representation",
    "tensor_permutation",
    "noise_rate_from_matrix",
    "NoiseTermDecomposition",
    "decompose_noise",
    "decompose_matrix_representation",
    "theorem1_error_bound",
    "level1_error_bound_simplified",
    "lemma1_bound",
    "lemma2_bound",
    "contraction_count",
    "terms_per_level",
]
