"""Estimating arbitrary density-matrix elements (Section III's polarisation identity).

The simulators and the approximation algorithm natively compute diagonal
quantities of the form ``⟨v| E_N(|ψ⟩⟨ψ|) |v⟩``.  The paper points out that any
matrix element ``⟨x| E_N(rho) |y⟩`` follows from four such evaluations:

``⟨x|E(ρ)|y⟩ = ¼[ ⟨w₊|E(ρ)|w₊⟩ − ⟨w₋|E(ρ)|w₋⟩ − i⟨w_{+i}|E(ρ)|w_{+i}⟩ + i⟨w_{−i}|E(ρ)|w_{−i}⟩ ]``

with ``w₊ = x + y``, ``w₋ = x − y``, ``w_{±i} = x ± i y``.  This module applies
that identity on top of *any* estimator exposing
``fidelity(circuit, input_state, output_state)`` — the exact TN simulator, the
approximation algorithm, or the trajectories baseline — and can reconstruct a
full output density matrix element by element for small registers.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.circuits.circuit import Circuit
from repro.tensornetwork.circuit_to_tn import StateLike, resolve_product_state
from repro.utils.validation import ValidationError, check_statevector

__all__ = ["FidelityEstimator", "estimate_matrix_element", "estimate_density_matrix"]


class FidelityEstimator(Protocol):
    """Anything that can estimate ``⟨v| E_N(|ψ⟩⟨ψ|) |v⟩``."""

    def fidelity(self, circuit: Circuit, input_state=None, output_state=None):  # pragma: no cover
        ...


def _as_float(value) -> float:
    """Unwrap estimator results that carry metadata (ApproximationResult etc.)."""
    if hasattr(value, "value"):
        return float(value.value)
    if hasattr(value, "estimate"):
        return float(value.estimate)
    return float(value)


def _densify(state: StateLike, num_qubits: int) -> np.ndarray:
    resolved = resolve_product_state(state, num_qubits)
    if isinstance(resolved, list):
        dense = np.array([1.0 + 0.0j])
        for factor in resolved:
            dense = np.kron(dense, factor)
        return dense
    return resolved


def estimate_matrix_element(
    estimator: FidelityEstimator,
    circuit: Circuit,
    bra_state: StateLike,
    ket_state: StateLike,
    input_state: StateLike = None,
) -> complex:
    """Estimate ``⟨x| E_N(|ψ⟩⟨ψ|) |y⟩`` with four fidelity evaluations."""
    n = circuit.num_qubits
    input_state = "0" * n if input_state is None else input_state
    x = check_statevector(_densify(bra_state, n), name="bra_state")
    y = check_statevector(_densify(ket_state, n), name="ket_state")
    if x.size != 2**n or y.size != 2**n:
        raise ValidationError("bra/ket dimensions do not match the circuit")

    terms = [
        (0.25, x + y),
        (-0.25, x - y),
        (-0.25j, x + 1j * y),
        (0.25j, x - 1j * y),
    ]
    total = 0.0 + 0.0j
    for coefficient, vector in terms:
        norm = np.linalg.norm(vector)
        if norm < 1e-15:
            continue
        value = _as_float(estimator.fidelity(circuit, input_state, vector / norm))
        total += coefficient * (norm**2) * value
    return complex(total)


def estimate_density_matrix(
    estimator: FidelityEstimator,
    circuit: Circuit,
    input_state: StateLike = None,
    max_qubits: int = 6,
) -> np.ndarray:
    """Reconstruct the full output density matrix element by element.

    This needs ``O(4**n)`` fidelity evaluations and is intended for small
    registers (validation, visualisation, and the extended experiments).
    """
    n = circuit.num_qubits
    if n > max_qubits:
        raise ValidationError(
            f"density-matrix reconstruction limited to {max_qubits} qubits (got {n})"
        )
    dim = 2**n
    rho = np.zeros((dim, dim), dtype=complex)
    basis = np.eye(dim, dtype=complex)
    for row in range(dim):
        # Diagonal elements are plain fidelities.
        rho[row, row] = _as_float(
            estimator.fidelity(circuit, input_state, basis[:, row])
        )
        for col in range(row + 1, dim):
            element = estimate_matrix_element(
                estimator, circuit, basis[:, row], basis[:, col], input_state
            )
            rho[row, col] = element
            rho[col, row] = np.conj(element)
    return rho
