"""SVD decomposition of noise tensors (the paper's Fig. 3 / Lemma 2).

For a noise channel ``E`` with matrix representation ``M_E`` the decomposition
proceeds exactly as in the paper:

1. tensor-permute ``M_E`` into ``~M_E``;
2. compute the SVD ``~M_E = S D T†`` with singular values ``d_0 ≥ d_1 ≥ …``;
3. define ``Ũ_i = d_i S|i⟩`` and ``Ṽ_i = T|i⟩`` so ``~M_E = Σ_i Ũ_i Ṽ_i†``;
4. un-permute each rank-1 term, which turns it into a Kronecker product
   ``U_i ⊗ V_i`` so that ``M_E = Σ_i U_i ⊗ V_i``.

``U_0 ⊗ V_0`` (the dominant term) approximates ``M_E`` with error at most
``4 ‖M_E − I‖`` (Lemma 2); the sub-dominant terms are what Algorithm 1 sums
over at higher approximation levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.matrix_rep import matrix_representation, tensor_permutation
from repro.noise.kraus import KrausChannel
from repro.utils.linalg import operator_norm
from repro.utils.validation import ValidationError

__all__ = ["NoiseTermDecomposition", "decompose_noise", "decompose_matrix_representation"]


@dataclass(frozen=True)
class NoiseTermDecomposition:
    """The Kronecker-term decomposition ``M_E = Σ_i U_i ⊗ V_i`` of one noise.

    Attributes
    ----------
    terms:
        List of ``(U_i, V_i)`` pairs ordered by decreasing singular value.
    singular_values:
        The singular values ``d_i`` of the permuted matrix ``~M_E``.
    matrix_rep:
        The original matrix representation ``M_E``.
    noise_rate:
        ``‖M_E − I‖`` (the paper's noise-rate metric).
    """

    terms: Tuple[Tuple[np.ndarray, np.ndarray], ...]
    singular_values: Tuple[float, ...]
    matrix_rep: np.ndarray
    noise_rate: float

    @property
    def num_terms(self) -> int:
        """Number of retained Kronecker terms (at most ``d²`` for a ``d``-dim channel)."""
        return len(self.terms)

    @property
    def dominant(self) -> Tuple[np.ndarray, np.ndarray]:
        """The dominant term ``(U_0, V_0)``."""
        return self.terms[0]

    @property
    def subdominant(self) -> Tuple[Tuple[np.ndarray, np.ndarray], ...]:
        """The non-dominant terms ``(U_i, V_i)`` for ``i ≥ 1``."""
        return self.terms[1:]

    def term_matrix(self, index: int) -> np.ndarray:
        """Return the Kronecker product ``U_i ⊗ V_i`` of term ``index``."""
        u, v = self.terms[index]
        return np.kron(u, v)

    def reconstruct(self) -> np.ndarray:
        """Return ``Σ_i U_i ⊗ V_i`` (equals ``M_E`` up to numerical error)."""
        return sum(self.term_matrix(i) for i in range(self.num_terms))

    def dominant_error(self) -> float:
        """Return ``‖M_E − U_0 ⊗ V_0‖`` (Lemma 2 bounds this by ``4·noise_rate``)."""
        return operator_norm(self.matrix_rep - self.term_matrix(0))

    def residual_norm(self) -> float:
        """Return ``‖Σ_{i≥1} U_i ⊗ V_i‖`` (what the paper calls ``‖M̄_E‖``)."""
        if self.num_terms <= 1:
            return 0.0
        residual = sum(self.term_matrix(i) for i in range(1, self.num_terms))
        return operator_norm(residual)


def decompose_matrix_representation(
    matrix_rep: np.ndarray,
    drop_tolerance: float = 1e-14,
    split_singular_values: bool = False,
) -> NoiseTermDecomposition:
    """Decompose a matrix representation ``M_E`` into ``Σ_i U_i ⊗ V_i``.

    Parameters
    ----------
    matrix_rep:
        The ``d² x d²`` matrix representation of the channel.
    drop_tolerance:
        Kronecker terms whose singular value is below this threshold are
        dropped (they contribute nothing within numerical precision).
    split_singular_values:
        When True, assign ``√d_i`` to both factors instead of putting ``d_i``
        entirely on ``U_i`` (the paper's convention).  The product
        ``U_i ⊗ V_i`` is identical either way.
    """
    matrix_rep = np.asarray(matrix_rep, dtype=complex)
    total = matrix_rep.shape[0]
    dim = int(round(np.sqrt(total)))
    if dim * dim != total:
        raise ValidationError("matrix representation must have dimension d² x d²")

    permuted = tensor_permutation(matrix_rep)
    left, singular, right_h = np.linalg.svd(permuted)

    terms: List[Tuple[np.ndarray, np.ndarray]] = []
    kept: List[float] = []
    for i, value in enumerate(singular):
        if value <= drop_tolerance and i > 0:
            continue
        if split_singular_values:
            u = np.sqrt(value) * left[:, i].reshape(dim, dim)
            v = np.sqrt(value) * right_h[i, :].reshape(dim, dim)
        else:
            u = value * left[:, i].reshape(dim, dim)
            v = right_h[i, :].reshape(dim, dim)
        terms.append((u, v))
        kept.append(float(value))

    rate = operator_norm(matrix_rep - np.eye(total))
    return NoiseTermDecomposition(
        terms=tuple(terms),
        singular_values=tuple(kept),
        matrix_rep=matrix_rep,
        noise_rate=rate,
    )


def decompose_noise(
    channel: KrausChannel,
    drop_tolerance: float = 1e-14,
    split_singular_values: bool = False,
) -> NoiseTermDecomposition:
    """Decompose a Kraus channel's matrix representation into Kronecker terms."""
    return decompose_matrix_representation(
        matrix_representation(channel),
        drop_tolerance=drop_tolerance,
        split_singular_values=split_singular_values,
    )
