"""Weight-ordered path truncation: an anytime variant of Algorithm 1.

Algorithm 1 organises the expansion of ``M_{E_N} … M_{E_1}`` by *how many*
noises deviate from their dominant Kronecker term (the approximation level).
An alternative — natural once every noise has been SVD-decomposed — is to
expand the same product over *paths* ``(i_1, …, i_N)`` (one term index per
noise), order the paths by their weight ``Π_s d_{i_s}`` (the product of the
singular values selected at every noise), and evaluate the heaviest ``K``
paths.  This gives an *anytime* algorithm: the budget is a path count rather
than a level, and the partial sums improve monotonically in expectation as
paths are added.

The variant reuses the split-network evaluation of
:class:`~repro.core.approximation.ApproximateNoisySimulator`; each path is
again a product of two independent single-size contractions.  The level-``l``
approximation corresponds to the set of paths with at most ``l`` non-dominant
indices, so the two truncation schemes coincide when the singular-value gaps
are uniform, and differ when some noises are much stronger than others —
which is what the ablation benchmark explores.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import Circuit
from repro.core.approximation import ApproximateNoisySimulator
from repro.core.svd_decomposition import NoiseTermDecomposition
from repro.tensornetwork.circuit_to_tn import StateLike
from repro.utils.validation import ValidationError

__all__ = ["PathTruncationResult", "PathTruncatedSimulator", "enumerate_paths_by_weight"]


def enumerate_paths_by_weight(
    decompositions: Sequence[NoiseTermDecomposition],
    max_paths: int | None = None,
) -> Iterator[Tuple[float, Tuple[int, ...]]]:
    """Yield ``(weight, path)`` pairs in non-increasing weight order.

    The weight of a path ``(i_1, …, i_N)`` is ``Π_s d_{i_s}`` with ``d`` the
    singular values of each noise's permuted matrix representation.  The
    enumeration is the classic best-first search over a product lattice: start
    from the all-dominant path and push single-index successors, deduplicating
    visited paths.
    """
    if not decompositions:
        yield 1.0, ()
        return
    values = [list(d.singular_values) for d in decompositions]

    def weight(path: Tuple[int, ...]) -> float:
        result = 1.0
        for noise_index, term_index in enumerate(path):
            result *= values[noise_index][term_index]
        return result

    start = tuple(0 for _ in decompositions)
    heap: List[Tuple[float, Tuple[int, ...]]] = [(-weight(start), start)]
    seen = {start}
    emitted = 0
    while heap:
        negative_weight, path = heapq.heappop(heap)
        yield -negative_weight, path
        emitted += 1
        if max_paths is not None and emitted >= max_paths:
            return
        for noise_index in range(len(path)):
            if path[noise_index] + 1 < len(values[noise_index]):
                successor = list(path)
                successor[noise_index] += 1
                successor = tuple(successor)
                if successor not in seen:
                    seen.add(successor)
                    heapq.heappush(heap, (-weight(successor), successor))


@dataclass(frozen=True)
class PathTruncationResult:
    """Outcome of a weight-ordered path-truncated run."""

    value: float
    num_paths: int
    num_contractions: int
    total_weight_evaluated: float
    total_weight_available: float
    elapsed_seconds: float

    @property
    def weight_coverage(self) -> float:
        """Fraction of the total path weight covered by the evaluated paths."""
        if self.total_weight_available == 0:
            return 1.0
        return self.total_weight_evaluated / self.total_weight_available


class PathTruncatedSimulator:
    """Evaluate the heaviest ``K`` expansion paths of the noisy simulation."""

    def __init__(
        self,
        max_paths: int = 64,
        backend: str = "statevector",
        max_intermediate_size: int | None = 2**26,
        strategy: str = "greedy",
    ) -> None:
        if max_paths < 1:
            raise ValidationError("max_paths must be at least 1")
        self.max_paths = int(max_paths)
        #: Term evaluation is delegated to the level-based simulator's machinery.
        self._delegate = ApproximateNoisySimulator(
            level=0,
            backend=backend,
            max_intermediate_size=max_intermediate_size,
            strategy=strategy,
        )

    def fidelity(
        self,
        circuit: Circuit,
        input_state: StateLike = None,
        output_state: StateLike = None,
        max_paths: int | None = None,
    ) -> PathTruncationResult:
        """Approximate ``⟨v| E_N(|ψ⟩⟨ψ|) |v⟩`` with the heaviest expansion paths."""
        start = time.perf_counter()
        max_paths = self.max_paths if max_paths is None else int(max_paths)
        if max_paths < 1:
            raise ValidationError("max_paths must be at least 1")
        n = circuit.num_qubits
        input_state = "0" * n if input_state is None else input_state
        output_state = "0" * n if output_state is None else output_state

        decompositions = self._delegate.decompose_noises(circuit)
        total_weight_available = float(
            np.prod([sum(d.singular_values) for d in decompositions])
        ) if decompositions else 1.0

        total = 0.0 + 0.0j
        evaluated_weight = 0.0
        num_paths = 0
        for weight, path in enumerate_paths_by_weight(decompositions, max_paths=max_paths):
            substitution: Dict[int, Tuple[np.ndarray, np.ndarray]] = {
                noise_index: decompositions[noise_index].terms[term_index]
                for noise_index, term_index in enumerate(path)
            }
            total += self._delegate._evaluate_term(
                circuit, substitution, input_state, output_state
            )
            evaluated_weight += weight
            num_paths += 1

        elapsed = time.perf_counter() - start
        return PathTruncationResult(
            value=float(np.real(total)),
            num_paths=num_paths,
            num_contractions=2 * num_paths,
            total_weight_evaluated=evaluated_weight,
            total_weight_available=total_weight_available,
            elapsed_seconds=elapsed,
        )
