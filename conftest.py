"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(useful on offline machines where ``pip install -e .`` needs extra flags),
and registers the ``--json`` option used by the benchmark harness to record
perf trajectories as ``BENCH_*.json`` files.
"""

import os
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_addoption(parser):
    parser.addoption(
        "--json",
        metavar="OUT",
        default=None,
        help="directory in which benchmark reports are additionally written as "
             "BENCH_<name>.json (created if missing)",
    )


def pytest_configure(config):
    # The benchmark modules import ``benchmarks.conftest`` as a plain module,
    # which is a different instance from the conftest plugin pytest registers;
    # the environment is the channel both share (and subprocesses inherit).
    out = config.getoption("--json", default=None)
    if out:
        os.environ["REPRO_BENCH_JSON_DIR"] = str(out)
