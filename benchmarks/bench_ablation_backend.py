"""Ablation — term-evaluation backend of Algorithm 1 (tensor network vs statevector).

Each substituted term of the approximation algorithm can be evaluated either
by contracting the two split tensor networks (scales to large qubit counts)
or by dense statevector propagation (cheaper for small registers).  Both must
agree exactly; this ablation quantifies the crossover at reproduction scale
and doubles as an MPS-vs-truncation comparison for the noiseless part.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import run_once, write_report
from repro.analysis import format_table
from repro.circuits.library import qaoa_circuit, supremacy_circuit
from repro.core import ApproximateNoisySimulator
from repro.noise import NoiseModel, depolarizing_channel
from repro.simulators import MPSSimulator, StatevectorSimulator

_rows: dict = {}


def _noisy(num_qubits):
    ideal = qaoa_circuit(num_qubits, seed=29, native_gates=False)
    return NoiseModel(depolarizing_channel(0.001), seed=29).insert_random(ideal, 4)


@pytest.mark.parametrize("backend", ["tn", "statevector"])
@pytest.mark.parametrize("num_qubits", [4, 9])
def test_ablation_backend(benchmark, num_qubits, backend):
    circuit = _noisy(num_qubits)
    simulator = ApproximateNoisySimulator(level=1, backend=backend)

    def run():
        start = time.perf_counter()
        result = simulator.fidelity(circuit)
        return result.value, time.perf_counter() - start

    value, elapsed = run_once(benchmark, run)
    _rows.setdefault(num_qubits, {})[backend] = (value, elapsed)


def test_ablation_mps_bond_dimension(benchmark):
    """Bond-truncation (MPS) as the alternative SVD-based approximation axis."""
    circuit = supremacy_circuit(2, 3, 8, seed=3)
    exact = StatevectorSimulator().run(circuit)

    def run():
        rows = []
        for bond in (2, 4, 8, None):
            start = time.perf_counter()
            mps = MPSSimulator(max_bond_dim=bond).run(circuit)
            elapsed = time.perf_counter() - start
            psi = mps.to_statevector()
            psi = psi / np.linalg.norm(psi)
            infidelity = 1.0 - abs(np.vdot(exact, psi)) ** 2
            rows.append([bond if bond else "exact", elapsed, infidelity])
        return rows

    rows = run_once(benchmark, run)
    table = format_table(
        ["Max bond dim", "Time (s)", "Infidelity"],
        rows,
        title="Ablation: MPS bond-dimension truncation on inst_2x3_8 (noiseless)",
    )
    write_report("ablation_mps_truncation", table)
    # Infidelity decreases as the bond dimension grows.
    infidelities = [row[2] for row in rows]
    assert infidelities[-1] <= infidelities[0] + 1e-12


def test_ablation_backend_report(benchmark):
    if not _rows:
        pytest.skip("run with --benchmark-only to populate the table")
    headers = ["Qubits", "TN backend (s)", "Statevector backend (s)", "Values agree"]
    rows = []
    for num_qubits, data in sorted(_rows.items()):
        tn_value, tn_time = data["tn"]
        sv_value, sv_time = data["statevector"]
        rows.append([num_qubits, tn_time, sv_time, abs(tn_value - sv_value) < 1e-9])
    table = format_table(headers, rows, title="Ablation: Algorithm 1 term-evaluation backend")
    run_once(benchmark, write_report, "ablation_backend", table)
    for data in _rows.values():
        assert abs(data["tn"][0] - data["statevector"][0]) < 1e-9
