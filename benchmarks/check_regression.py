"""Gate fresh ``BENCH_*.json`` reports against the recorded perf trajectory.

Usage (what the CI perf step runs after the benchmark smoke)::

    python benchmarks/check_regression.py BENCH_DIR                 # gate
    python benchmarks/check_regression.py BENCH_DIR --record        # append
    python benchmarks/check_regression.py BENCH_DIR --record --source ci

The trajectory (``benchmarks/trajectory.jsonl``, append-only, checked in)
holds one row per bench x metric x commit — see
:mod:`repro.dist.trajectory` for the row schema, the metric extraction and
the per-metric tolerance rules.  The gate compares the fresh reports under
``BENCH_DIR`` (produced by ``pytest benchmarks/ --json BENCH_DIR``) against
the *last recorded* value of **every** tracked bench x metric: compile
amortization, bind amortization and serving throughput alike.  A tracked
report missing from the fresh directory fails too — benchmarks are retired
from the trajectory deliberately, never by silently not running them.

``--record`` appends the fresh values as new trajectory rows (idempotent per
commit) — run it after landing a perf change so the gate protects the new
level; it does not weaken the gate by itself, because recording and gating
are separate invocations.

Exit status: 0 when every gated metric clears its threshold, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Make repro importable when run as a plain script (CI sets PYTHONPATH=src,
# local invocations may not).
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.dist import trajectory as _trajectory  # noqa: E402

DEFAULT_TRAJECTORY = Path(__file__).resolve().parent / "trajectory.jsonl"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh_dir", type=Path,
                        help="directory holding the freshly produced BENCH_*.json reports")
    parser.add_argument("--trajectory", type=Path, default=DEFAULT_TRAJECTORY,
                        help="perf trajectory file (default: benchmarks/trajectory.jsonl)")
    parser.add_argument("--record", action="store_true",
                        help="append the fresh values to the trajectory instead of gating")
    parser.add_argument("--commit", default=None,
                        help="commit id recorded with --record (default: git rev-parse)")
    parser.add_argument("--source", default="local",
                        help="provenance tag recorded with --record (e.g. ci, baseline)")
    args = parser.parse_args(argv)

    if args.record:
        rows = _trajectory.append_run(
            args.trajectory, args.fresh_dir, commit=args.commit, source=args.source
        )
        for row in rows:
            print(f"recorded {row['bench']}:{row['metric']} = {row['value']:.4g} "
                  f"@ {row['commit']}")
        if not rows:
            print("nothing new to record (all bench x metric x commit rows present)")
        return 0

    outcomes = _trajectory.check(args.trajectory, args.fresh_dir)
    failures = 0
    for outcome in outcomes:
        status = "ok" if outcome.ok else "FAIL"
        line = f"{status} {outcome.bench}:{outcome.metric}: {outcome.detail}"
        if outcome.ok:
            print(line)
        else:
            print(line, file=sys.stderr)
            failures += 1
    print(f"{len(outcomes) - failures}/{len(outcomes)} gated metrics ok")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
