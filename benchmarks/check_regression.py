"""Gate a fresh ``BENCH_*.json`` report against its checked-in baseline.

Usage (what the CI perf step runs after the benchmark smoke)::

    python benchmarks/check_regression.py BENCH_DIR [--baselines DIR]

For every ``BENCH_<name>.json`` under ``benchmarks/baselines/`` the same
report must exist in ``BENCH_DIR`` (produced by ``pytest benchmarks/ --json
BENCH_DIR``), and its aggregate speedup must not regress: the fresh value has
to clear ``max(RATIO x baseline, FLOOR)``.  The ratio (0.6) absorbs shared-
runner noise — CI machines are slow and loud — while the absolute floor
(1.5x) keeps the compile/execute split's core claim ("serving a compiled plan
beats recompiling") from eroding one noisy run at a time.

Speedup-style reports store rows under ``data`` with a ``method`` field and a
``speedup`` value; the row named ``aggregate`` is the gated headline.  Reports
without such a row are skipped (nothing to gate yet).

Exit status: 0 when every gated report clears its threshold, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Fresh aggregate must reach this fraction of the recorded baseline.
RATIO = 0.6
#: ... and never drop below this absolute speedup.
FLOOR = 1.5


def aggregate_speedup(report: dict) -> float | None:
    """The ``aggregate`` row's speedup, or None when the report has none."""
    rows = report.get("data") or []
    for row in rows:
        if isinstance(row, dict) and row.get("method") == "aggregate":
            value = row.get("speedup")
            return None if value is None else float(value)
    return None


def check(fresh_dir: Path, baseline_dir: Path) -> int:
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no baselines under {baseline_dir}", file=sys.stderr)
        return 1
    failures = 0
    for baseline_path in baselines:
        baseline = json.loads(baseline_path.read_text())
        recorded = aggregate_speedup(baseline)
        if recorded is None:
            print(f"skip {baseline_path.name}: baseline has no aggregate speedup")
            continue
        fresh_path = fresh_dir / baseline_path.name
        if not fresh_path.exists():
            print(f"FAIL {baseline_path.name}: missing from {fresh_dir}", file=sys.stderr)
            failures += 1
            continue
        fresh = aggregate_speedup(json.loads(fresh_path.read_text()))
        if fresh is None:
            print(f"FAIL {baseline_path.name}: fresh report has no aggregate speedup",
                  file=sys.stderr)
            failures += 1
            continue
        threshold = max(RATIO * recorded, FLOOR)
        status = "ok" if fresh >= threshold else "FAIL"
        line = (f"{status} {baseline_path.name}: aggregate {fresh:.2f}x "
                f"(baseline {recorded:.2f}x, threshold {threshold:.2f}x)")
        if fresh >= threshold:
            print(line)
        else:
            print(line, file=sys.stderr)
            failures += 1
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh_dir", type=Path,
                        help="directory holding the freshly produced BENCH_*.json reports")
    parser.add_argument("--baselines", type=Path,
                        default=Path(__file__).resolve().parent / "baselines",
                        help="directory of recorded baselines (default: benchmarks/baselines)")
    args = parser.parse_args(argv)
    return check(args.fresh_dir, args.baselines)


if __name__ == "__main__":
    raise SystemExit(main())
