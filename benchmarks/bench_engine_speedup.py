"""Batched trajectory engine vs the historical per-sample loop.

Records the speedup of :class:`repro.backends.BatchedTrajectoryEngine` over
the pre-engine per-sample Python loop on the Table III workload (1000
statevector trajectories of QAOA_9 with 8 depolarizing noises at p = 0.001),
plus the cached-plan TN trajectory path at a reduced sample count.  Both
paths draw identical Kraus choices for the same seed, so the estimates are
compared as well as the runtimes.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import run_once, write_report
from benchmarks.reference_loops import reference_statevector_loop, reference_tn_loop
from repro.backends import BatchedTrajectoryEngine
from repro.circuits.library import qaoa_circuit
from repro.noise import NoiseModel, depolarizing_channel

NOISE_PROBABILITY = 0.001
NUM_NOISES = 8
NUM_QUBITS = 9
SV_SAMPLES = 1000
TN_SAMPLES = 100

_results: dict = {}


def _workload():
    ideal = qaoa_circuit(NUM_QUBITS, seed=3, native_gates=False)
    return NoiseModel(depolarizing_channel(NOISE_PROBABILITY), seed=5).insert_random(
        ideal, NUM_NOISES
    )


@pytest.mark.parametrize(
    "label,engine_backend,loop,samples",
    [
        ("statevector", "statevector", reference_statevector_loop, SV_SAMPLES),
        ("tn", "tn", reference_tn_loop, TN_SAMPLES),
    ],
)
def test_engine_speedup(benchmark, label, engine_backend, loop, samples):
    circuit = _workload()
    engine = BatchedTrajectoryEngine(engine_backend)
    engine.estimate_fidelity(circuit, 8, rng=0)  # warm the caches

    def run():
        start = time.perf_counter()
        loop_estimate = float(np.mean(loop(circuit, samples, np.random.default_rng(2))))
        loop_seconds = time.perf_counter() - start
        start = time.perf_counter()
        engine_estimate = engine.estimate_fidelity(circuit, samples, rng=2).estimate
        engine_seconds = time.perf_counter() - start
        return loop_estimate, loop_seconds, engine_estimate, engine_seconds

    loop_estimate, loop_seconds, engine_estimate, engine_seconds = run_once(benchmark, run)
    _results[label] = {
        "samples": samples,
        "loop_seconds": loop_seconds,
        "engine_seconds": engine_seconds,
        "speedup": loop_seconds / engine_seconds,
        "loop_estimate": loop_estimate,
        "engine_estimate": engine_estimate,
    }
    # Identical Kraus draws for the same seed: estimates agree to fp noise.
    assert engine_estimate == pytest.approx(loop_estimate, rel=1e-9, abs=1e-12)
    # The acceptance target is >=5x for the statevector path on this machine
    # class; assert a conservative floor so CI noise cannot flake the suite.
    assert _results[label]["speedup"] >= 3.0


def test_engine_speedup_report(benchmark):
    if not _results:
        pytest.skip("run with --benchmark-only to populate the table")
    lines = [
        "Batched trajectory engine vs per-sample loop "
        f"(QAOA_{NUM_QUBITS}, {NUM_NOISES} noises, p={NOISE_PROBABILITY}):",
    ]
    for label, data in _results.items():
        lines.append(
            f"  {label:<12} {data['samples']:>5} samples: loop {data['loop_seconds']:.3f} s, "
            f"engine {data['engine_seconds']:.3f} s  ->  {data['speedup']:.1f}x"
        )
    run_once(benchmark, write_report, "engine_speedup", "\n".join(lines), data=_results)
