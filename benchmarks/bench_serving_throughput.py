"""Serving-layer throughput: latency percentiles, req/s, and coalescing.

The multi-tenant serving claim behind :mod:`repro.serve`: one shared
``Session`` (one plan cache, one dispatch layer) behind the asyncio HTTP
front end sustains concurrent load with bounded tail latency, and K
identical concurrent requests cost exactly **one** plan compile — the
request-coalescing path observable through ``/stats``.

The load generator drives the real socket front end (keep-alive HTTP/1.1,
one connection per simulated client) at two concurrency levels and records
client-side p50/p99 latency plus ok-req/s for each.  A separate phase fires
K identical requests *concurrently* at a configuration the server has never
compiled and asserts, via the plan-cache delta in ``/stats``, that they
produced exactly one cache miss (the other K-1 were coalesced onto the
in-flight compile or served from the fresh cache entry).

Hard gates (the run fails, not just regresses): every load-phase response is
``ok`` (zero errors, zero sheds at these levels), throughput is nonzero at
every level, and the coalescing delta is exactly one miss.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from benchmarks.conftest import run_once, write_report
from repro.analysis import format_table
from repro.serve import BackgroundServer, HttpServeClient

#: Simulated clients per load phase (each owns one keep-alive connection).
CONCURRENCY_LEVELS = (4, 16)

#: Wall-clock seconds of load per concurrency level.
DURATION_SECONDS = 2.5

#: Identical concurrent requests of the coalescing phase.
COALESCE_K = 12

#: The load-phase workload: small, deterministic, compiled once then cached.
LOAD_PAYLOAD = {"circuit": "ghz_10", "backend": "statevector"}

#: The coalescing-phase workload — a plan key the load phase never compiles.
COALESCE_PAYLOAD = {"circuit": "qft_8", "backend": "tn"}

_results: dict = {}


async def _load_phase(host: str, port: int, clients: int) -> dict:
    """Drive ``clients`` keep-alive connections for DURATION_SECONDS."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + DURATION_SECONDS
    statuses: dict = {}
    latencies: list = []

    async def drive(index: int) -> None:
        client = HttpServeClient(host, port)
        payload = dict(LOAD_PAYLOAD, tenant=f"bench-{index}")
        try:
            while loop.time() < deadline:
                start = time.perf_counter()
                _, response = await client.request(payload)
                latencies.append(time.perf_counter() - start)
                status = response.get("status", "error")
                statuses[status] = statuses.get(status, 0) + 1
        finally:
            await client.aclose()

    start = time.perf_counter()
    await asyncio.gather(*(drive(index) for index in range(clients)))
    elapsed = time.perf_counter() - start
    lat_ms = np.asarray(latencies) * 1000.0
    return {
        "clients": clients,
        "requests": int(lat_ms.size),
        "ok": statuses.get("ok", 0),
        "statuses": statuses,
        "req_per_s": statuses.get("ok", 0) / elapsed,
        "p50_ms": float(np.percentile(lat_ms, 50)) if lat_ms.size else 0.0,
        "p99_ms": float(np.percentile(lat_ms, 99)) if lat_ms.size else 0.0,
    }


async def _coalesce_phase(host: str, port: int) -> dict:
    """K identical concurrent requests -> exactly one plan-cache miss."""
    stats_client = HttpServeClient(host, port)
    _, before = await stats_client.get("/stats")

    async def one(index: int) -> str:
        client = HttpServeClient(host, port)
        try:
            _, response = await client.request(
                dict(COALESCE_PAYLOAD, tenant=f"burst-{index}")
            )
            return response["status"]
        finally:
            await client.aclose()

    results = await asyncio.gather(*(one(index) for index in range(COALESCE_K)))
    _, after = await stats_client.get("/stats")
    await stats_client.aclose()
    cache_before, cache_after = before["plan_cache"], after["plan_cache"]
    return {
        "k": COALESCE_K,
        "statuses": list(results),
        "miss_delta": cache_after["misses"] - cache_before["misses"],
        "hit_delta": cache_after["hits"] - cache_before["hits"],
        "coalesced_delta": cache_after["coalesced"] - cache_before["coalesced"],
        "coalesced_requests": after["server"]["coalesced_requests"],
    }


def _run_bench() -> dict:
    with BackgroundServer(
        seed=0, max_inflight=8, queue_limit=64, plan_cache_size=64
    ) as bg:

        async def scenario() -> dict:
            levels = []
            for clients in CONCURRENCY_LEVELS:
                levels.append(await _load_phase(bg.host, bg.port, clients))
            burst = await _coalesce_phase(bg.host, bg.port)
            return {"levels": levels, "coalescing": burst}

        outcome = asyncio.run(scenario())
        outcome["stats"] = bg.stats()
    return outcome


@pytest.mark.benchmark(group="serving")
def test_serving_throughput(benchmark):
    outcome = run_once(benchmark, _run_bench)
    _results.update(outcome)

    for level in outcome["levels"]:
        assert level["statuses"] == {"ok": level["ok"]}, (
            f"non-ok responses at c={level['clients']}: {level['statuses']}"
        )
        assert level["ok"] > 0 and level["req_per_s"] > 0.0
    burst = outcome["coalescing"]
    assert all(status == "ok" for status in burst["statuses"])
    # The headline coalescing gate: K identical concurrent requests cost
    # exactly one plan compile; the rest were coalesced or cache hits.
    assert burst["miss_delta"] == 1, burst
    assert burst["hit_delta"] + burst["coalesced_delta"] == COALESCE_K - 1, burst


def teardown_module(module) -> None:
    if not _results:
        return
    rows = [
        [
            level["clients"],
            level["requests"],
            f"{level['req_per_s']:.1f}",
            f"{level['p50_ms']:.2f}",
            f"{level['p99_ms']:.2f}",
        ]
        for level in _results["levels"]
    ]
    burst = _results["coalescing"]
    cache = _results["stats"]["plan_cache"]
    text = format_table(
        ["Clients", "Requests", "ok req/s", "p50 (ms)", "p99 (ms)"],
        rows,
        title=f"Serving throughput over HTTP ({DURATION_SECONDS:g}s per level)",
    )
    text += (
        f"\n\ncoalescing: {burst['k']} identical concurrent requests -> "
        f"{burst['miss_delta']} compile (plan-cache miss), "
        f"{burst['coalesced_delta']} coalesced onto it, "
        f"{burst['hit_delta']} served from the fresh cache entry"
        f"\nfinal plan cache: {cache['hits']} hits, {cache['misses']} misses, "
        f"{cache['coalesced']} coalesced, size {cache['size']}"
    )
    write_report(
        "serving_throughput",
        text,
        data={
            "levels": _results["levels"],
            "coalescing": burst,
            "plan_cache": cache,
            "admission": _results["stats"]["admission"],
        },
    )
