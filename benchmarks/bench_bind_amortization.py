"""Bind-without-recompile vs compile-per-iteration on a noisy parametric QAOA.

The optimizer-loop claim behind ``Executable.bind``: a variational iteration
should pay for *execution only*.  All structure-dependent work — optimizing
passes, noise binding and SVD decompositions, the contraction-plan search,
trajectory-context preparation — depends on the circuit's structural
fingerprint, not on the bound angles, so ``Session.compile()`` does it once
and every ``bind(params).run()`` merely swaps tensor values into the
recorded plan.

This microbench takes a 12-qubit noisy QAOA ansatz (16 depolarizing noises
at p=0.001, symbolic ``gamma0``/``beta0`` angles) and walks REPEAT distinct
bindings — the shape of an optimizer trace — both ways:

* **compile-per-iteration** — a ``Session(plan_cache_size=0)`` running the
  substituted circuit, so each iteration redoes the full compile;
* **bind** — one ``Session.compile()`` on the parametric circuit, then
  ``bind(params_i).run()`` per iteration.

Values must be bit-identical between the two paths (same binding, same
seeds; binding moves work, never results).  The recorded headline is the
aggregate speedup across methods, which the parametric-serving claim
requires to be >= 5x — also enforced against the checked-in baseline by
``benchmarks/check_regression.py`` in CI.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import run_once, write_report
from repro.analysis import format_table
from repro.api import Session, apply_noise
from repro.circuits.library import qaoa_circuit
from repro.circuits.parameters import circuit_parameters, substitute
from repro.xp import default_device, get_namespace

#: The device this benchmark actually ran on (REPRO_DEVICE-aware), recorded
#: in every BENCH record so perf baselines never mix cpu and device runs.
DEVICE = get_namespace(default_device()).device

#: Noisy parametric workload: large enough that the plan search dominates a
#: recompile, small enough for the CI smoke budget.
_CIRCUIT = apply_noise(
    qaoa_circuit(12, seed=7, native_gates=False, parametric=True),
    {"channel": "depolarizing", "parameter": 0.001, "count": 16, "seed": 3},
)
_NAMES = sorted(circuit_parameters(_CIRCUIT))

#: Optimizer iterations per timing loop (each with a distinct binding).
REPEAT = 5

#: (label, backend, run kwargs) — the deterministic TN contraction that an
#: exact-objective optimizer drives, and the TN trajectory method at a
#: pilot-scale sample count (a per-iteration gradient-evaluation budget).
METHODS = (
    ("tn_exact", "tn", {}),
    ("traj_tn", "trajectories_tn", {"samples": 8, "seed": 9, "workers": 1}),
)

_results: dict = {}


def _binding(iteration: int) -> dict:
    """A deterministic optimizer-like trace: every iteration a fresh point."""
    return {
        name: 0.3 + 0.07 * iteration + 0.05 * index
        for index, name in enumerate(_NAMES)
    }


def _measure(backend: str, kwargs: dict) -> dict:
    with Session(plan_cache_size=0, device=DEVICE) as cold:
        start = time.perf_counter()
        recompiled_values = [
            cold.run(
                substitute(_CIRCUIT, _binding(i)), backend=backend, **kwargs
            ).value
            for i in range(REPEAT)
        ]
        recompiled = (time.perf_counter() - start) / REPEAT
    with Session(device=DEVICE) as warm:
        compile_start = time.perf_counter()
        executable = warm.compile(_CIRCUIT, backend=backend, **kwargs)
        compile_seconds = time.perf_counter() - compile_start
        start = time.perf_counter()
        bound_values = [
            executable.bind(_binding(i)).run().value for i in range(REPEAT)
        ]
        bound = (time.perf_counter() - start) / REPEAT
        stats = warm.cache_stats()
    return {
        "recompile_per_iteration": recompiled,
        "bound_per_iteration": bound,
        "compile_seconds": compile_seconds,
        "speedup": recompiled / bound,
        "identical": recompiled_values == bound_values,
        "plan_searches": stats["misses"],
        "value": bound_values[0],
        "device": DEVICE,
    }


@pytest.mark.parametrize("method", METHODS, ids=[m[0] for m in METHODS])
def test_bind_amortization_method(benchmark, method):
    """Time one method both ways; bound and recompiled values must be bit-equal."""
    label, backend, kwargs = method
    outcome = run_once(benchmark, _measure, backend, kwargs)
    _results[label] = outcome
    assert outcome["identical"], f"{label}: binding changed the value"
    assert outcome["plan_searches"] == 1, (
        f"{label}: expected one plan search for the whole loop, "
        f"got {outcome['plan_searches']}"
    )


def test_bind_amortization_report(benchmark):
    """Aggregate report + the optimizer-iteration gate (>= 5x aggregate)."""
    if len(_results) < len(METHODS):
        pytest.skip("run the method cells first to populate the table")
    headers = ["Method", "Recompile/iter (s)", "Bound/iter (s)", "Compile once (s)",
               "Speedup", "Bit-identical"]
    rows = []
    records = []
    for label, _, _ in METHODS:
        data = _results[label]
        rows.append([
            label,
            data["recompile_per_iteration"],
            data["bound_per_iteration"],
            data["compile_seconds"],
            f"{data['speedup']:.1f}x",
            data["identical"],
        ])
        records.append({"method": label, **{k: v for k, v in data.items()}})
    total_recompiled = sum(r["recompile_per_iteration"] for r in _results.values())
    total_bound = sum(r["bound_per_iteration"] for r in _results.values())
    aggregate = total_recompiled / total_bound
    rows.append(["aggregate", total_recompiled, total_bound, None, f"{aggregate:.1f}x", True])
    records.append({
        "method": "aggregate",
        "recompile_per_iteration": total_recompiled,
        "bound_per_iteration": total_bound,
        "speedup": aggregate,
        "repeat": REPEAT,
        "workload": _CIRCUIT.name,
        "device": DEVICE,
    })
    table = format_table(
        headers,
        rows,
        title=(
            f"Bind amortization (noisy parametric {_CIRCUIT.name}, 16 noises): "
            f"per-iteration cost over {REPEAT} distinct bindings"
        ),
    )
    run_once(benchmark, write_report, "bind_amortization", table, data=records)

    # CI gate: an optimizer iteration served via bind() must beat
    # compile-per-iteration by >= 5x in aggregate (the parametric-executable
    # headline; asserted with headroom for noisy shared runners, and also
    # enforced against the checked-in baseline by check_regression.py).
    assert total_bound < total_recompiled, "bound path is not faster than recompiling"
    assert aggregate >= 5.0, f"aggregate bind speedup collapsed to {aggregate:.2f}x"
