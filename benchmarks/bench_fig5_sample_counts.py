"""Figure 5 — sample number required by ours vs quantum trajectories.

Paper setup: for noise rates p = 1e-3 and p = 1e-4 and noise counts 10-40,
compare the number of "samples" (tensor-network contractions for our level-1
algorithm, trajectories for the Monte-Carlo method at 99% success) required
for the same error bound.  Ours wins for N ≤ 26 at p = 1e-3 and everywhere in
the plotted range at p = 1e-4.

The analytic series uses the paper's formulas (level-1 contraction count
2(1+3N) vs r = C²/(N⁴p⁴)); an additional empirical benchmark cross-checks the
comparison on a small circuit by actually running both methods.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once, write_report
from repro.analysis import (
    approximation_sample_count,
    compare_sample_counts,
    crossover_noise_count,
    format_series,
)
from repro.circuits.library import qaoa_circuit
from repro.core import ApproximateNoisySimulator
from repro.noise import NoiseModel, depolarizing_channel
from repro.simulators import DensityMatrixSimulator, TrajectorySimulator
from repro.utils import zero_state

NOISE_COUNTS = list(range(10, 41, 2))
NOISE_RATES = [1e-3, 1e-4]


@pytest.mark.parametrize("noise_rate", NOISE_RATES)
def test_fig5_analytic_series(benchmark, noise_rate):
    """Regenerate one panel of Fig. 5 from the analytical sample-count formulas."""
    rows = run_once(benchmark, compare_sample_counts, NOISE_COUNTS, noise_rate)
    text = format_series(
        "#Noises",
        NOISE_COUNTS,
        {
            "Quantum trajectories": [row.trajectories for row in rows],
            "Our algorithm": [row.ours for row in rows],
        },
        title=f"Figure 5 (reproduction): sample number for the same error bound, p = {noise_rate:g}",
    )
    write_report(f"fig5_sample_counts_p{noise_rate:g}", text)

    if noise_rate == 1e-3:
        crossover = crossover_noise_count(noise_rate)
        assert 20 <= crossover <= 32  # paper reports ~26
        assert rows[0].ours_wins and not rows[-1].ours_wins
    else:
        assert all(row.ours_wins for row in rows)


def test_fig5_empirical_check(benchmark):
    """Empirically verify the comparison's premise on a small circuit.

    For a matched target error, the number of trajectories needed (estimated
    from the measured variance) exceeds the level-1 contraction count when the
    noise rate is small — the regime where the paper claims a win.
    """
    p = 1e-3
    num_noises = 10
    ideal = qaoa_circuit(4, seed=9, native_gates=False)
    noisy = NoiseModel(depolarizing_channel(p), seed=31).insert_random(ideal, num_noises)
    exact = DensityMatrixSimulator().fidelity(noisy, zero_state(4))

    def run():
        ours = ApproximateNoisySimulator(level=1, backend="statevector").fidelity(noisy)
        target = max(abs(ours.value - exact), 1e-7)
        trajectories = TrajectorySimulator("statevector")
        needed = trajectories.samples_for_precision(
            noisy, target, pilot_samples=256, rng=3, max_samples=10**7
        )
        return ours, target, needed

    ours, target, needed = run_once(benchmark, run)
    text = (
        "Figure 5 empirical cross-check (qaoa_4, 10 depolarizing noises, p=1e-3):\n"
        f"  level-1 contractions      : {ours.num_contractions}\n"
        f"  level-1 measured error    : {target:.3e}\n"
        f"  trajectories needed for the same std. error: {needed}\n"
    )
    write_report("fig5_empirical_check", text)
    assert needed > ours.num_contractions
